//! Offline subset of `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over `std::sync`. parking_lot's locks don't poison on panic;
//! we reproduce that by recovering the inner value from a `PoisonError`.

#![deny(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
