//! Offline, API-compatible subset of `serde`.
//!
//! Real serde decouples data structures from formats via a visitor-based
//! `Serializer`/`Deserializer` pair. This workspace only ever serializes
//! to and from JSON (`serde_json`), so the vendored subset collapses the
//! design to a concrete value tree:
//!
//! - [`Serialize`] converts `&self` into a [`Value`];
//! - [`Deserialize`] reconstructs `Self` from a [`&Value`](Value);
//! - `serde_json` renders/parses `Value` to/from text.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`, re-exported
//! from the vendored `serde_derive`) generate impls of these traits with
//! the same JSON data model real serde uses: structs as objects, unit
//! enum variants as strings, newtype variants as `{"Variant": value}`,
//! and struct variants as `{"Variant": {..}}` — so archived artifacts
//! look exactly as they would under real serde.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

use std::fmt;

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted to a serializable [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde (`for<'de> Deserialize<'de>` bounds in downstream code); the
/// vendored implementation always copies out of the tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch `key` from an object value, yielding `Null` when absent (the
/// derive macros rely on this so `Option` fields tolerate omission).
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
    static NULL: Value = Value::Null;
    match v {
        Value::Object(pairs) => Ok(pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, val)| val)
            .unwrap_or(&NULL)),
        other => Err(DeError::msg(format!(
            "expected object with field `{key}`, got {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Number(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::msg(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I(*self as i64)) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Number(Number::U(n)) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::msg(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json renders non-finite floats as null; accept the
            // round-trip back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::msg(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected char, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = 0 $( + { let _ = $idx; 1 } )+;
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected {}-tuple array, got {}", ARITY, other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let x = f64::from_value(&1.5f64.to_value()).unwrap();
        assert_eq!(x, 1.5);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(3);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn out_of_range_errors() {
        let v = Value::Number(Number::U(300));
        assert!(u8::from_value(&v).is_err());
    }

    #[test]
    fn field_lookup_defaults_to_null() {
        let obj = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(field(&obj, "a").unwrap(), &Value::Bool(true));
        assert_eq!(field(&obj, "missing").unwrap(), &Value::Null);
        assert!(field(&Value::Null, "a").is_err());
    }
}
