//! The JSON-shaped value tree shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON number. Integers keep their exact 64-bit representation so that
/// `u64` seeds and slot counts round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Lossy conversion to f64.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::U(n) => *n as f64,
            Number::I(n) => *n as f64,
            Number::F(x) => *x,
        }
    }

    /// Exact u64 value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::U(n) => Some(*n),
            Number::I(n) => u64::try_from(*n).ok(),
            Number::F(_) => None,
        }
    }
}

/// A JSON value tree. Object keys keep insertion order, so rendering a
/// derive-generated value produces fields in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as u64, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True if `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON (delegating the escaping rules used by
    /// `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_json(self, f)
    }
}

fn write_json(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(Number::U(n)) => write!(f, "{n}"),
        Value::Number(Number::I(n)) => write!(f, "{n}"),
        Value::Number(Number::F(x)) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            } else {
                // serde_json renders non-finite floats as null.
                f.write_str("null")
            }
        }
        Value::String(s) => write_escaped(s, f),
        Value::Array(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_json(item, f)?;
            }
            f.write_str("]")
        }
        Value::Object(pairs) => {
            f.write_str("{")?;
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(k, f)?;
                f.write_str(":")?;
                write_json(val, f)?;
            }
            f.write_str("}")
        }
    }
}

/// Write a JSON string literal with standard escaping.
pub(crate) fn write_escaped(s: &str, f: &mut impl fmt::Write) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_compact_json() {
        let v = Value::Object(vec![
            ("id".into(), Value::Number(Number::U(3))),
            ("name".into(), Value::String("a\"b".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"id":3,"name":"a\"b","xs":[null,true]}"#);
    }

    #[test]
    fn float_rendering() {
        assert_eq!(Value::Number(Number::F(1.5)).to_string(), "1.5");
        assert_eq!(Value::Number(Number::F(2.0)).to_string(), "2.0");
        assert_eq!(Value::Number(Number::F(f64::NAN)).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Value::Object(vec![("k".into(), Value::Number(Number::U(9)))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(9));
        assert!(v.get("nope").is_none());
        assert_eq!(v.kind(), "object");
    }
}
