//! Offline JSON front-end for the vendored `serde` subset: a recursive
//! descent parser and a compact/pretty renderer over [`serde::Value`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

pub use serde::value::{Number, Value};

/// Parse or render failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize `value` to an indented JSON string (2-space indent, matching
/// real serde_json's pretty printer).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a value from a [`Value`] tree.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parse a JSON string into any deserializable value.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let v = parse_value_str(s)?;
    Ok(T::from_value(&v)?)
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth + 1);
    let close_pad = "  ".repeat(depth);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                let _ = write!(out, "{}: ", Value::String(k.clone()));
                write_pretty(val, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push('}');
        }
        leaf => {
            let _ = write!(out, "{leaf}");
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => return Err(Error::new(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for src in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str::<Value>(src).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(back, src, "roundtrip of {src}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-3.25}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn integer_precision_preserved() {
        let big = u64::MAX;
        let v: Value = from_str(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let src = r#"{"a":[1,2],"b":{"c":true},"empty":[]}"#;
        let v: Value = from_str(src).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_with_exponent() {
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }
}
