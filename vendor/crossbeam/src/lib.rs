//! Offline subset of `crossbeam`: scoped threads.
//!
//! Backed by `std::thread::scope` (stable since Rust 1.63), wrapped to
//! match crossbeam's signature: the closure receives a [`Scope`] handle
//! whose `spawn` passes the scope to the child (crossbeam's nested-spawn
//! convention), and the top-level call returns `Err` instead of
//! propagating a child panic.

#![deny(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of a scoped computation: `Err` carries a child thread's panic
/// payload.
pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// Handle for spawning threads inside a scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope so
    /// it can spawn further threads, mirroring crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(handle))
    }
}

/// Create a scope in which spawned threads may borrow from the enclosing
/// stack frame. All threads are joined before `scope` returns; if any
/// child panicked, the first payload is returned as `Err`.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias, matching the upstream layout.
pub mod thread {
    pub use crate::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn threads_share_borrowed_state() {
        let counter = AtomicU64::new(0);
        let r = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8000);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_returns_value() {
        let r = scope(|_| 17u32);
        assert_eq!(r.unwrap(), 17);
    }
}
