//! Offline mini benchmark harness, API-compatible with the `criterion`
//! subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Throughput`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! adaptive batches until ~200 ms of samples (capped by `sample_size`)
//! have been collected; mean and min per-iteration times are printed,
//! plus derived throughput when declared. No statistical analysis, plots,
//! or baseline persistence — this is a smoke-measure harness, not a
//! statistics engine; the workspace's structured perf trajectory comes
//! from the experiment harness's JSON artifacts instead.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per benchmark iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark id (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    target_samples: usize,
}

impl Bencher<'_> {
    /// Time `f`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocator).
        black_box(f());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    let n = samples.len().max(1) as u32;
    let total: Duration = samples.iter().sum();
    let mean = total / n;
    let min = samples.iter().min().copied().unwrap_or_default();
    let mut line = format!(
        "{id:<40} mean {:>10}  min {:>10}  ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(e) => {
                    line.push_str(&format!("  {:.3} Melem/s", e as f64 / secs / 1e6));
                }
                Throughput::Bytes(b) => {
                    line.push_str(&format!(
                        "  {:.3} MiB/s",
                        b as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Cap the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            target_samples: self.sample_size,
        });
        report(&full, &samples, self.throughput);
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                target_samples: self.sample_size,
            },
            input,
        );
        report(&full, &samples, self.throughput);
    }

    /// Finish the group (upstream computes summaries here; we do nothing).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size,
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            target_samples: 20,
        });
        report(&id.into_id(), &samples, None);
    }

    /// Parse CLI options (accepted and ignored for compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 3, "warmup + samples should run the closure");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).contains("ms"));
    }
}
