//! Offline mini property-testing harness.
//!
//! API-compatible with the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`, [`Just`], range and
//! tuple strategies, `.prop_map(..)`, and `prop::collection::vec`.
//!
//! Differences from real proptest, chosen for a hermetic offline build:
//!
//! - **Deterministic**: every test derives its RNG seed from the test's
//!   name, so a failure reproduces on every run (no `proptest-regressions`
//!   persistence needed; checked-in regression files are kept as
//!   documentation of historical failures and their shrunk inputs).
//! - **No shrinking**: a failing case reports the generated inputs
//!   verbatim via `Debug`. Cases here are already small by construction.
//! - Default case count is 64 (configurable with
//!   `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Mark the case as rejected (treated as a failure in the mini
    /// harness, which has no rejection budget).
    pub fn reject(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type each generated test body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for a named test: seeded from an FNV-1a hash of the name, so
    /// every run of the same test explores the same cases.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(ChaCha8Rng::seed_from_u64(h))
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// The inner `rand`-compatible generator.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Run one named property test: generate `cases` inputs and evaluate.
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// reporting the case number and the generated inputs.
pub fn run_property_test<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let mut rng = TestRng::for_test(name);
    for i in 0..config.cases {
        if let Err((e, inputs)) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {i}/{}:\n  {e}\n  inputs: {inputs}",
                config.cases
            );
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    /// `prop::` path alias (e.g. `prop::collection::vec`).
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests. Mirrors the real `proptest!` surface used in
/// this workspace: an optional `#![proptest_config(..)]` header followed
/// by `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property_test(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::Strategy::gen_value(&$strat, __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: $crate::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __result.map_err(|e| (e, __inputs))
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        let s = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = crate::TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32), (10u32..12).prop_map(|x| x)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.gen_value(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_test("vec");
        let s = prop::collection::vec((0u64..4, 1u64..3), 1..6);
        for _ in 0..50 {
            let v = s.gen_value(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_per_name() {
        let gen = || {
            let mut rng = crate::TestRng::for_test("fixed");
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }

    // The macro itself, exercised end-to-end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn early_return_ok_works(x in 0u32..10) {
            if x > 100 {
                // Unreachable; exercises the `return Ok(())` path shape.
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing_prop` failed")]
    fn failures_panic_with_inputs() {
        crate::run_property_test("failing_prop", &ProptestConfig::with_cases(10), |rng| {
            let x = (0u32..5).gen_value(rng);
            Err((TestCaseError::fail("always fails"), format!("x = {x:?}")))
        });
    }
}
