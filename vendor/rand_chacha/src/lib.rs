//! Offline ChaCha-based RNGs implementing the vendored `rand` traits.
//!
//! A genuine ChaCha implementation (D. J. Bernstein's stream cipher run as
//! a CSPRNG): 16-word state of constants / 256-bit key / 64-bit block
//! counter / 64-bit nonce, with the standard quarter-round permutation.
//! [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`] differ only in the
//! number of rounds. Output need not match upstream `rand_chacha`
//! bit-for-bit (nothing in this workspace depends on upstream streams);
//! what matters is that it is a high-quality, deterministic, seedable
//! generator.

#![forbid(unsafe_code)]

pub use rand as rand_core_crate;

/// Re-export of the core traits under the path `rand_chacha::rand_core`,
/// which upstream exposes for no-`rand` users.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: permute `input` for `rounds` rounds and add back.
fn chacha_block(input: &[u32; 16], rounds: u32, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            state: [u32; 16],
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 means "refill".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                chacha_block(&self.state, $rounds, &mut self.buffer);
                // 64-bit block counter in words 12..14.
                let counter =
                    (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
                self.state[12] = counter as u32;
                self.state[13] = (counter >> 32) as u32;
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONST);
                for i in 0..8 {
                    state[4 + i] = u32::from_le_bytes([
                        seed[4 * i],
                        seed[4 * i + 1],
                        seed[4 * i + 2],
                        seed[4 * i + 3],
                    ]);
                }
                // counter = 0 (words 12-13), nonce = 0 (words 14-15).
                Self {
                    state,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.next_u32());
                let hi = u64::from(self.next_u32());
                hi << 32 | lo
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let word = self.next_u32().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&word[..n]);
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the workspace's workhorse RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn rfc7539_chacha20_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONST);
        for (i, w) in input[4..12].iter_mut().enumerate() {
            let b = (4 * i) as u32;
            *w = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        input[12] = 1;
        input[13] = 0x09000000;
        input[14] = 0x4a000000;
        input[15] = 0;
        let mut out = [0u32; 16];
        chacha_block(&input, 20, &mut out);
        assert_eq!(out[0], 0xe4e7f110);
        assert_eq!(out[15], 0x4e3c50a2);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
