//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in an environment with no access to crates.io, so
//! the external dependencies are vendored as minimal re-implementations
//! that cover exactly the API surface the workspace uses:
//!
//! - [`RngCore`] (`next_u32` / `next_u64` / `fill_bytes`), object-safe so
//!   protocols can take `&mut dyn RngCore`;
//! - [`SeedableRng`] with the SplitMix64-based `seed_from_u64` fill that
//!   upstream `rand` uses;
//! - the [`Rng`] extension trait with `gen_bool` and `gen_range` over
//!   integer and float ranges (half-open and inclusive).
//!
//! Distributions are sampled with a 53-bit mantissa for floats and 64-bit
//! modular reduction for integers; the modulo bias (< 2⁻⁴⁰ for every range
//! used in this workspace) is far below Monte-Carlo noise.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step, used to expand a `u64` into seed material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// An RNG that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it via SplitMix64 (matches upstream
    /// `rand`'s default implementation).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

/// Uniform `f64` in `[0, 1)` with a full 53-bit mantissa.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli sample: `true` with probability `p`. Panics unless
    /// `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic mock generators for tests.
    pub mod mock {
        use crate::RngCore;

        /// A mock RNG advancing by a fixed step — yields `v`, `v+a`,
        /// `v+2a`, … from `next_u64`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            a: u64,
        }

        impl StepRng {
            /// Start at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    v: initial,
                    a: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.a);
                out
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let x = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&x[..n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&x[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: u32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let z: usize = rng.gen_range(0..9);
            assert!(z < 9);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let s: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Counter(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = Counter(9);
        let dynref: &mut dyn RngCore = &mut rng;
        let v: u64 = dynref.gen_range(0..100);
        assert!(v < 100);
        let _ = dynref.gen_bool(0.5);
    }
}
