//! Derive macros for the vendored `serde` subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser extracts just what codegen
//! needs — type name, field names, variant shapes — and the generators
//! emit Rust source as strings, reparsed into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields, tuple structs (newtype and n-ary), unit
//!   structs;
//! - enums with unit, newtype/tuple, and struct variants.
//!
//! Unsupported (fails with a compile error rather than silently
//! miscompiling): generic type parameters.
//!
//! JSON data model matches real serde: structs → objects, unit variants →
//! strings, newtype variants → `{"Variant": value}`, tuple variants →
//! `{"Variant": [..]}`, struct variants → `{"Variant": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a type definition.
enum Shape {
    /// `struct S { a: A, b: B }`
    Struct(Vec<String>),
    /// `struct S(A, B);` — arity only.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a field-list token stream on top-level commas (angle-bracket
/// depth tracked manually; (), [], {} arrive as atomic groups).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parse `name: Type` pieces from a braced field list, returning names.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    for piece in split_top_level_commas(&tokens) {
        let i = skip_attrs_and_vis(&piece, 0);
        match piece.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue, // trailing comma
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
        }
    }
    Ok(names)
}

/// Count the fields of a parenthesized tuple field list.
fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens)
        .into_iter()
        .filter(|p| !p.is_empty())
        .count()
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics (type {name})"
            ));
        }
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
                name,
                shape: Shape::Struct(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Parsed {
                name,
                shape: Shape::TupleStruct(parse_tuple_arity(g)),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Parsed {
                name,
                shape: Shape::UnitStruct,
            }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body_tokens.len() {
                j = skip_attrs_and_vis(&body_tokens, j);
                let vname = match body_tokens.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    Some(other) => return Err(format!("unexpected token in enum: {other}")),
                };
                j += 1;
                let kind = match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        VariantKind::Tuple(parse_tuple_arity(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        VariantKind::Struct(parse_named_fields(g)?)
                    }
                    _ => VariantKind::Unit,
                };
                if let Some(TokenTree::Punct(p)) = body_tokens.get(j) {
                    if p.as_char() == '=' {
                        return Err(format!(
                            "explicit discriminants not supported (variant {vname})"
                        ));
                    }
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push(Variant { name: vname, kind });
            }
            Ok(Parsed {
                name,
                shape: Shape::Enum(variants),
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let bs = binders(*n);
                            let items: Vec<String> = bs
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{}]))])",
                                bs.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let pats = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {pats} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(::std::vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__v, {f:?})?)?")
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => gen_tuple_from_array(name, *n, "__v", name),
        Shape::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"expected null for unit struct {name}, got {{}}\", __other.kind()))),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__val)?)),"
                        )),
                        VariantKind::Tuple(n) => Some(format!(
                            "{vname:?} => {},",
                            gen_tuple_from_array(&format!("{name}::{vname}"), *n, "__val", name)
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::field(__val, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown unit variant `{{}}` for {name}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __val) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                         }}\n\
                     }},\n\
                     __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Construct `ctor(items[0], items[1], ...)` from an array value expr.
fn gen_tuple_from_array(ctor: &str, arity: usize, value_expr: &str, type_name: &str) -> String {
    let items: Vec<String> = (0..arity)
        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
        .collect();
    format!(
        "match {value_expr} {{\n\
             ::serde::Value::Array(__items) if __items.len() == {arity} => ::std::result::Result::Ok({ctor}({})),\n\
             __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"expected {arity}-element array for {type_name}, got {{}}\", __other.kind()))),\n\
         }}",
        items.join(", ")
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derive `serde::Serialize` (vendored value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (vendored value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
