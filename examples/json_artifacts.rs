//! Structured experiment artifacts: run one experiment programmatically,
//! inspect its machine-readable report, and archive it as JSON — the same
//! artifact `experiments --json DIR` writes to `DIR/<id>.json`.
//!
//! ```sh
//! cargo run --release --example json_artifacts
//! ```

use dcr_bench::{run_experiment_report, ExpConfig};

fn main() {
    // Quick mode keeps this example fast; the seed makes it replayable.
    let cfg = ExpConfig::quick();
    let out = run_experiment_report("e1", &cfg).expect("e1 is a known experiment id");

    // The human-readable table the harness always produced...
    println!("{}", out.text);

    // ...and the structured artifact carrying the same numbers.
    let report = &out.report;
    println!("experiment      : {} — {}", report.experiment, report.title);
    println!(
        "seed            : {:#x} (quick={})",
        report.seed, report.quick
    );
    for p in &report.params {
        println!("param           : {} = {}", p.name, p.value);
    }
    for c in &report.checks {
        println!(
            "check           : {} -> {} ({})",
            c.name,
            if c.passed { "pass" } else { "FAIL" },
            c.detail
        );
    }
    println!(
        "timing          : {:.2}s wall, {} slots simulated, {:.0} slots/sec",
        report.timing.wall_secs, report.timing.slots_simulated, report.timing.slots_per_sec
    );
    println!(
        "provenance      : git {} rustc {} ({} threads)",
        report.provenance.git_rev.as_deref().unwrap_or("?"),
        report.provenance.rustc_version.as_deref().unwrap_or("?"),
        report.provenance.threads
    );

    // Individual cells are addressable: the measured success probability
    // at contention C=1 with its Wilson 95% interval.
    if let Some(row) = report.row("C=1", "p_success") {
        println!(
            "p_success @ C=1 : {:.4} [{:.4}, {:.4}] over {} slots",
            row.value,
            row.ci_lo.unwrap_or(f64::NAN),
            row.ci_hi.unwrap_or(f64::NAN),
            row.n.unwrap_or(0)
        );
    }

    // Archive: the full artifact (with timing + provenance) for records,
    // the deterministic view (volatile fields stripped) for diffing runs.
    let full = serde_json::to_string_pretty(report).expect("serialize");
    let stable = serde_json::to_string_pretty(&report.deterministic_view()).expect("serialize");
    println!(
        "\nJSON sizes      : {} bytes full, {} bytes deterministic view",
        full.len(),
        stable.len()
    );
    assert!(
        report.all_checks_passed(),
        "e1's Lemma 2 sandwich must hold"
    );
    println!("all checks passed ✓");
}
