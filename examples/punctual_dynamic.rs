//! PUNCTUAL on dynamic, unaligned traffic: Poisson arrivals with mixed
//! window sizes, no global clock — the paper's general setting (Section 4).
//! Compares deadline-miss rates against sawtooth backoff and the offline
//! EDF genie, and shows the round/leadership machinery working from a
//! channel trace.
//!
//! ```sh
//! cargo run --release --example punctual_dynamic
//! ```

use contention_deadlines::baselines::scheduled::scheduled_protocols;
use contention_deadlines::baselines::Sawtooth;
use contention_deadlines::protocols::{PunctualParams, PunctualProtocol};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::generators::{poisson, thin_to_feasible};
use contention_deadlines::workloads::Instance;

fn make_traffic(seed: u64) -> Instance {
    let mut rng = SeedSeq::new(seed).rng(contention_deadlines::sim::rng::StreamLabel::Workload, 0);
    let raw = poisson(0.02, 1 << 16, &[1 << 12, 1 << 14], &mut rng);
    thin_to_feasible(raw, 1.0 / 16.0)
}

fn main() {
    let instance = make_traffic(7);
    println!(
        "traffic: {} jobs over {} slots (Poisson, windows 4096/16384, 1/16-slack)\n",
        instance.n(),
        instance.horizon()
    );

    // PUNCTUAL, with a trace so we can inspect the round machinery.
    let mut engine = Engine::new(EngineConfig::default().with_trace(), 1);
    engine.add_jobs(
        &instance.jobs,
        PunctualProtocol::factory(PunctualParams::laptop()),
    );
    let punctual = engine.run();

    // Sawtooth backoff (deadline-oblivious comparator).
    let mut engine = Engine::new(EngineConfig::default(), 1);
    engine.add_jobs(&instance.jobs, Sawtooth::factory());
    let sawtooth = engine.run();

    // Offline EDF genie (upper bound).
    let protos = scheduled_protocols(&instance.jobs).expect("feasible");
    let mut it = protos.into_iter();
    let mut engine = Engine::new(EngineConfig::default(), 1);
    engine.add_jobs(&instance.jobs, move |_| Box::new(it.next().unwrap()));
    let genie = engine.run();

    println!("protocol  delivered  missed");
    for (name, r) in [
        ("punctual", &punctual),
        ("sawtooth", &sawtooth),
        ("edf-genie", &genie),
    ] {
        println!("{name:<9} {:>9} {:>7}", r.successes(), r.misses());
    }

    // Peek at the round machinery: the trace shows the start-pair cadence.
    let trace = punctual.trace.as_ref().unwrap();
    let busy_pairs = trace
        .windows(2)
        .filter(|w| !w[0].is_silent() && !w[1].is_silent() && w[1].slot == w[0].slot + 1)
        .count();
    println!(
        "\nround machinery: {} busy start-pairs observed across {} slots \
         (one per 10-slot round while any job is live)",
        busy_pairs, punctual.slots_run
    );
    println!(
        "channel breakdown: {} successes / {} collisions / {} silent",
        punctual.counts.success, punctual.counts.collision, punctual.counts.silent
    );
}
