//! Quickstart: five jobs share one power-of-2-aligned window and all meet
//! their deadline with the ALIGNED protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use contention_deadlines::protocols::{AlignedParams, AlignedProtocol};
use contention_deadlines::sim::prelude::*;

fn main() {
    // Protocol constants: λ=1, τ=2, smallest class 9 (windows ≥ 512 slots).
    let params = AlignedParams::new(1, 2, 9);

    // Five jobs, all released at slot 0 with deadline 512 — one aligned
    // class-9 window.
    let jobs: Vec<JobSpec> = (0..5).map(|i| JobSpec::new(i, 0, 512)).collect();

    // The engine exposes the shared clock (legitimate for aligned windows).
    let mut engine = Engine::new(EngineConfig::aligned(), /* seed */ 42);
    engine.add_jobs(&jobs, AlignedProtocol::factory(params));

    let report = engine.run();

    println!("slots simulated : {}", report.slots_run);
    println!(
        "channel         : {} successes, {} collisions, {} silent",
        report.counts.success, report.counts.collision, report.counts.silent
    );
    for (spec, outcome) in report.per_job() {
        match outcome {
            JobOutcome::Success { slot } => println!(
                "job {} delivered at slot {slot} (deadline {})",
                spec.id, spec.deadline
            ),
            JobOutcome::Missed => println!("job {} MISSED its deadline", spec.id),
        }
    }
    assert_eq!(report.successes(), 5, "all five jobs should deliver");
    println!("\nall deadlines met ✓");
}
