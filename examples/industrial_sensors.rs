//! Industrial sensor network (the paper's WirelessHART / RT-Link
//! motivation): periodic sensors whose readings are useless after a
//! deadline, plus sporadic alarm bursts, sharing one radio channel.
//!
//! Sensors have no global clock and arbitrary phase offsets — exactly the
//! PUNCTUAL setting. We run the same traffic under PUNCTUAL and under
//! 802.11-style binary exponential backoff and compare deadline misses.
//!
//! ```sh
//! cargo run --release --example industrial_sensors
//! ```

use contention_deadlines::baselines::BinaryExponentialBackoff;
use contention_deadlines::protocols::{PunctualParams, PunctualProtocol};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::{is_gamma_slack_feasible, Instance};

/// Build the plant's traffic: `sensors` periodic nodes reporting every
/// `period` slots with delivery window `window`, plus one alarm burst of
/// `alarm_size` messages with a tight window.
fn plant_traffic(sensors: u32, period: u64, window: u64, cycles: u64) -> Instance {
    let mut jobs = Vec::new();
    for cycle in 0..cycles {
        for s in 0..sensors {
            // Each sensor has a fixed phase offset within the period.
            let phase = u64::from(s) * (period / u64::from(sensors).max(1));
            let release = cycle * period + phase;
            jobs.push(JobSpec::new(0, release, release + window));
        }
    }
    // An alarm burst mid-run: 4 urgent messages sharing a tight window.
    let alarm_at = cycles / 2 * period + 17; // deliberately unaligned
    for _ in 0..4 {
        jobs.push(JobSpec::new(0, alarm_at, alarm_at + window / 2));
    }
    Instance::new("plant", jobs)
}

fn misses(instance: &Instance, seed: u64, punctual: bool) -> (usize, u64) {
    let mut engine = Engine::new(EngineConfig::default(), seed);
    if punctual {
        engine.add_jobs(
            &instance.jobs,
            PunctualProtocol::factory(PunctualParams::laptop()),
        );
    } else {
        engine.add_jobs(&instance.jobs, BinaryExponentialBackoff::factory(1024));
    }
    let report = engine.run();
    let worst_latency = report.latencies().into_iter().max().unwrap_or(0);
    (report.misses(), worst_latency)
}

fn main() {
    // 8 sensors, 2^14-slot reporting period, 2^13-slot delivery windows,
    // 4 cycles — a γ-slack-feasible plant.
    let instance = plant_traffic(8, 1 << 14, 1 << 13, 4);
    println!(
        "plant traffic: {} messages over {} slots",
        instance.n(),
        instance.horizon()
    );
    assert!(
        is_gamma_slack_feasible(&instance.jobs, 1.0 / 16.0),
        "the plant must be schedulable with 16x slack"
    );

    let mut punctual_misses = 0;
    let mut beb_misses = 0;
    let trials = 10;
    for seed in 0..trials {
        let (pm, plat) = misses(&instance, seed, true);
        let (bm, blat) = misses(&instance, seed, false);
        punctual_misses += pm;
        beb_misses += bm;
        if seed == 0 {
            println!(
                "seed 0: PUNCTUAL {pm} misses (worst latency {plat}); \
                 BEB {bm} misses (worst latency {blat})"
            );
        }
    }
    let total = instance.n() * trials as usize;
    println!(
        "\nover {trials} runs: PUNCTUAL missed {punctual_misses}/{total}, \
         BEB missed {beb_misses}/{total}"
    );
    println!(
        "PUNCTUAL miss rate {:.3}%, BEB miss rate {:.3}%",
        100.0 * punctual_misses as f64 / total as f64,
        100.0 * beb_misses as f64 / total as f64
    );
}
