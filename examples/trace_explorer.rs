//! Trace explorer: step inside one PUNCTUAL execution two ways — the ASCII
//! Gantt renderer for a quick terminal look, and the streaming probe layer
//! for a Perfetto/Chrome trace you can scrub interactively.
//!
//! ```sh
//! cargo run --release --example trace_explorer [seed]
//! ```
//!
//! The run writes `trace_explorer_perfetto.json`; open it at
//! <https://ui.perfetto.dev> (or `chrome://tracing`) to see one track per
//! job carrying its protocol-phase spans (sync-listen → slingshot →
//! follow/leader/anarchist) and instant markers for leader elections,
//! anarchist conversions, and size estimates.

use contention_deadlines::protocols::{PunctualParams, PunctualProtocol};
use contention_deadlines::sim::gantt::{render_gantt, GanttOptions};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::generators::staggered;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);

    // Four jobs with staggered, unaligned arrivals sharing a 2^13 window.
    let instance = staggered(4, 23, 1 << 13);

    let probe = ProbeSpec::new()
        .with(SinkSpec::ChromeTrace)
        .with(SinkSpec::Events);
    let mut engine = Engine::new(EngineConfig::default().with_trace().with_probe(probe), seed);
    engine.add_jobs(
        &instance.jobs,
        PunctualProtocol::factory(PunctualParams::laptop()),
    );
    let report = engine.run();

    println!(
        "PUNCTUAL, 4 staggered jobs, w = 8192, seed {seed}: {}/{} delivered\n",
        report.successes(),
        report.jobs.len()
    );

    // Phase 1: synchronization. The first ~40 slots show the listen
    // period and the first start pairs of the round train.
    println!("--- slots 0..120: synchronization and the first rounds ---");
    println!("    (x = collision — the start pairs; S = success — beacons/claims)");
    match render_gantt(
        &report,
        GanttOptions {
            from: 0,
            to: 120,
            max_jobs: 4,
        },
    ) {
        Ok(g) => println!("{g}"),
        Err(e) => println!("({e})"),
    }

    // Phase 2: around the first data delivery.
    if let Some(first) = report.per_job().filter_map(|(_, o)| o.slot()).min() {
        let from = first.saturating_sub(40);
        println!(
            "--- slots {from}..{}: around the first delivery (D) ---",
            from + 120
        );
        match render_gantt(
            &report,
            GanttOptions {
                from,
                to: from + 120,
                max_jobs: 4,
            },
        ) {
            Ok(g) => println!("{g}"),
            Err(e) => println!("({e})"),
        }
    }

    // Probe-event walkthrough: the protocol's own narration of the run.
    let probes = report.probes.as_ref().expect("probe configured");
    println!("--- probe events (what each job said it was doing) ---");
    for rec in probes.events().expect("events sink configured") {
        let job = rec.job.map_or("engine".to_string(), |j| format!("job {j}"));
        match &rec.event {
            ProbeEvent::PhaseEnter { phase } => {
                println!("slot {:>5}  {job:>7}  → phase {phase}", rec.slot);
            }
            ProbeEvent::LeaderElected => {
                println!("slot {:>5}  {job:>7}  * elected leader", rec.slot);
            }
            ProbeEvent::AnarchistConversion { from } => {
                println!(
                    "slot {:>5}  {job:>7}  ! went anarchist (from {from})",
                    rec.slot
                );
            }
            ProbeEvent::SizeEstimate {
                class,
                n_est,
                n_true,
            } => {
                println!(
                    "slot {:>5}  {job:>7}  estimate: class {class} has ≈{n_est} (truth {n_true})",
                    rec.slot
                );
            }
            ProbeEvent::Preemption { class, by_class } => {
                println!(
                    "slot {:>5}  {job:>7}  class {class} preempted by class {by_class}",
                    rec.slot
                );
            }
            ProbeEvent::JobRetired {
                success, latency, ..
            } => {
                let verdict = if *success { "delivered" } else { "missed" };
                println!(
                    "slot {:>5}  {job:>7}  {verdict} after {latency} slots",
                    rec.slot
                );
            }
            // Engine scheduling events — noisy here; SchedStats summarizes.
            ProbeEvent::GapSkip { .. } | ProbeEvent::WakeQueueStats { .. } => {}
        }
    }

    // The same run as a Perfetto file, for interactive scrubbing.
    let path = "trace_explorer_perfetto.json";
    let json = probes.chrome_trace().expect("chrome trace configured");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path} — open it at https://ui.perfetto.dev"),
        Err(e) => println!("\nfailed to write {path}: {e}"),
    }

    // Channel totals.
    println!(
        "\nchannel totals: {} successes / {} collisions / {} silent over {} slots",
        report.counts.success, report.counts.collision, report.counts.silent, report.slots_run
    );
    println!(
        "per-job radio cost: mean {:.1} transmissions, {:.0} radio-on slots",
        report.mean_transmissions(),
        report.mean_accesses()
    );
    println!("\nTry different seeds to watch leader elections land in different rounds.");
}
