//! Trace explorer: step inside one PUNCTUAL execution with the ASCII Gantt
//! renderer — watch synchronization, the round train, leader beacons, and
//! the embedded ALIGNED protocol working on a real channel.
//!
//! ```sh
//! cargo run --release --example trace_explorer [seed]
//! ```

use contention_deadlines::protocols::{PunctualParams, PunctualProtocol};
use contention_deadlines::sim::gantt::{render_gantt, GanttOptions};
use contention_deadlines::sim::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);

    // Four jobs with staggered, unaligned arrivals sharing a 2^13 window.
    let jobs: Vec<JobSpec> = (0..4)
        .map(|i| {
            let r = u64::from(i) * 23;
            JobSpec::new(i, r, r + (1 << 13))
        })
        .collect();

    let mut engine = Engine::new(EngineConfig::default().with_trace(), seed);
    engine.add_jobs(&jobs, PunctualProtocol::factory(PunctualParams::laptop()));
    let report = engine.run();

    println!(
        "PUNCTUAL, 4 staggered jobs, w = 8192, seed {seed}: {}/{} delivered\n",
        report.successes(),
        report.jobs.len()
    );

    // Phase 1: synchronization. The first ~40 slots show the listen
    // period and the first start pairs of the round train.
    println!("--- slots 0..120: synchronization and the first rounds ---");
    println!("    (x = collision — the start pairs; S = success — beacons/claims)");
    match render_gantt(
        &report,
        GanttOptions {
            from: 0,
            to: 120,
            max_jobs: 4,
        },
    ) {
        Ok(g) => println!("{g}"),
        Err(e) => println!("({e})"),
    }

    // Phase 2: around the first data delivery.
    if let Some(first) = report.per_job().filter_map(|(_, o)| o.slot()).min() {
        let from = first.saturating_sub(40);
        println!(
            "--- slots {from}..{}: around the first delivery (D) ---",
            from + 120
        );
        match render_gantt(
            &report,
            GanttOptions {
                from,
                to: from + 120,
                max_jobs: 4,
            },
        ) {
            Ok(g) => println!("{g}"),
            Err(e) => println!("({e})"),
        }
    }

    // Channel totals.
    println!(
        "channel totals: {} successes / {} collisions / {} silent over {} slots",
        report.counts.success, report.counts.collision, report.counts.silent, report.slots_run
    );
    println!(
        "per-job radio cost: mean {:.1} transmissions, {:.0} radio-on slots",
        report.mean_transmissions(),
        report.mean_accesses()
    );
    println!("\nTry different seeds to watch leader elections land in different rounds.");
}
