//! Jamming resilience (Section 3, "Jamming"): ALIGNED keeps delivering
//! while a content-aware adversary jams up to half of all would-be
//! successes — and degrades gracefully beyond the analyzed regime.
//!
//! ```sh
//! cargo run --release --example jamming_resilience
//! ```

use contention_deadlines::protocols::{AlignedParams, AlignedProtocol};
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::generators::batch;

fn delivery_rate(p_jam: f64, policy: JamPolicy, trials: u64) -> f64 {
    let params = AlignedParams::new(2, 2, 11); // λ=2 buys the jamming margin
    let instance = batch(8, 1 << 11);
    let mut delivered = 0usize;
    for seed in 0..trials {
        let mut engine = Engine::new(EngineConfig::aligned(), seed);
        engine.set_jammer(Jammer::new(policy, p_jam));
        engine.add_jobs(&instance.jobs, AlignedProtocol::factory(params));
        delivered += engine.run().successes();
    }
    delivered as f64 / (trials as f64 * instance.n() as f64)
}

fn main() {
    let trials = 60;
    println!("ALIGNED, 8 jobs in a 2048-slot window, λ=2 — delivery vs jamming:\n");
    println!("p_jam  all-successes  control-only  data-only");
    for p_jam in [0.0, 0.25, 0.5, 0.75] {
        let all = delivery_rate(p_jam, JamPolicy::AllSuccesses, trials);
        let ctrl = delivery_rate(p_jam, JamPolicy::ControlOnly, trials);
        let data = delivery_rate(p_jam, JamPolicy::DataOnly, trials);
        println!("{p_jam:<5.2}  {all:<13.3}  {ctrl:<12.3}  {data:.3}");
    }
    println!(
        "\nThe paper analyzes p_jam <= 0.5: estimation phases and broadcast \
         subphases both repeat enough to absorb a coin-flip adversary, even one \
         that reads message contents and targets only estimation pings."
    );
}
