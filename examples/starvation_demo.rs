//! Starvation demo (Lemma 5): on the harmonic instance, the natural
//! UNIFORM algorithm systematically sacrifices the most urgent messages,
//! while the deadline-aware PUNCTUAL protocol protects them.
//!
//! ```sh
//! cargo run --release --example starvation_demo
//! ```

use contention_deadlines::protocols::Uniform;
use contention_deadlines::sim::prelude::*;
use contention_deadlines::workloads::generators::harmonic;

fn main() {
    // All n jobs arrive at slot 0; job j has window 2j — the γ = 1/2
    // instance from Lemma 5. The urgent (small-j) jobs see contention
    // ≈ ln(n)/2 in every slot of their short windows.
    let n = 512;
    let instance = harmonic(n, 2);
    let trials = 200u64;

    let mut urgent_ok = [0u32; 10]; // per-decile success counts
    for seed in 0..trials {
        let mut engine = Engine::new(EngineConfig::default(), seed);
        engine.add_jobs(&instance.jobs, |_| Box::new(Uniform::single()));
        let report = engine.run();
        for (d, count) in urgent_ok.iter_mut().enumerate() {
            let lo = d * n / 10;
            let hi = (d + 1) * n / 10;
            let ok = (lo..hi)
                .filter(|&i| report.outcome(i as u32).is_success())
                .count();
            if ok * 2 >= hi - lo {
                *count += 1;
            }
        }
    }

    println!("UNIFORM on the harmonic instance (n = {n}, {trials} trials):");
    println!("fraction of trials in which each urgency decile got >= 50% delivery:\n");
    for (d, &count) in urgent_ok.iter().enumerate() {
        let frac = f64::from(count) / trials as f64;
        let bar: String = std::iter::repeat_n('#', (frac * 40.0) as usize).collect();
        println!(
            "decile {d} ({}most urgent) {frac:>5.2} |{bar}",
            if d == 0 { "" } else { "less " }
        );
    }
    println!(
        "\nThe most urgent decile starves while the patient deciles cruise — \
         Lemma 5's 'ironically, the high-priority messages are most at risk'."
    );
    println!(
        "Run `cargo run --release -p dcr-bench --bin experiments -- e3` for the \
         full sweep with confidence intervals and the fitted decay exponent."
    );
}
