//! System-level invariants of PUNCTUAL's round structure, checked on real
//! engine traces. The synchronization scheme rests on these:
//!
//! 1. once the round train is established, busy runs never exceed 3 slots
//!    (anarchy + the two start slots);
//! 2. every busy run of length ≥ 2 ends at round position 1 — which is
//!    exactly what lets a newcomer recover the phase from "busy, busy,
//!    silent";
//! 3. position-2 guard slots are silent while any synchronized job lives.

use dcr_core::punctual::{PunctualParams, ROUND_LEN};
use dcr_core::PunctualProtocol;
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::job::JobSpec;
use dcr_sim::trace::SlotRecord;
use proptest::prelude::*;

fn run_traced(n: u32, w: u64, stagger: u64, seed: u64) -> Vec<SlotRecord> {
    let mut e = Engine::new(EngineConfig::default().with_trace(), seed);
    for i in 0..n {
        let r = u64::from(i) * stagger;
        e.add_job(
            JobSpec::new(i, r, r + w),
            Box::new(PunctualProtocol::new(PunctualParams::laptop())),
        );
    }
    e.run().trace.expect("trace enabled")
}

fn busy(rec: &SlotRecord) -> bool {
    // A run-length-encoded silent gap is silence, not traffic.
    !rec.is_silent()
}

/// The anchor (round-start slot) per the trace: first busy-busy-silent.
fn anchor_of(trace: &[SlotRecord]) -> Option<u64> {
    trace
        .windows(3)
        .find_map(|w| (busy(&w[0]) && busy(&w[1]) && !busy(&w[2])).then_some(w[0].slot))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn busy_runs_bounded_and_phase_aligned(
        n in 1u32..12,
        w_exp in 12u32..14,
        stagger in 0u64..64,
        seed in 0u64..10_000,
    ) {
        let w = 1u64 << w_exp;
        let trace = run_traced(n, w, stagger, seed);
        let Some(anchor) = anchor_of(&trace) else {
            // Tiny population can die before ever forming a round train;
            // nothing to check.
            return Ok(());
        };

        // Scan busy runs after the anchor. Ignore the tail after the last
        // job retires (the train stops there).
        let last_busy = trace.iter().rev().find(|r| busy(r)).map(|r| r.slot).unwrap_or(0);
        let mut run_len = 0u64;
        for rec in trace.iter().filter(|r| r.slot >= anchor && r.slot <= last_busy) {
            if busy(rec) {
                run_len += 1;
                prop_assert!(
                    run_len <= 3,
                    "busy run of length {} at slot {}",
                    run_len,
                    rec.slot
                );
            } else {
                if run_len >= 2 {
                    // The run must have ended at round position 1.
                    let end_pos = (rec.slot - 1 - anchor) % ROUND_LEN;
                    prop_assert_eq!(
                        end_pos,
                        1,
                        "busy run ending at slot {} (pos {})",
                        rec.slot - 1,
                        end_pos
                    );
                }
                run_len = 0;
            }
        }
    }

    #[test]
    fn guard_slot_two_always_silent(
        n in 1u32..10,
        seed in 0u64..10_000,
    ) {
        let w = 1u64 << 13;
        let trace = run_traced(n, w, 17, seed);
        let Some(anchor) = anchor_of(&trace) else { return Ok(()); };
        for rec in trace.iter().filter(|r| r.slot > anchor) {
            if (rec.slot - anchor) % ROUND_LEN == 2 {
                prop_assert!(
                    !busy(rec),
                    "guard slot {} busy: {:?}",
                    rec.slot,
                    rec.outcome
                );
            }
        }
    }
}

/// Pinned replay of the shrunk case in `round_structure.proptest-regressions`
/// (`n = 3, w_exp = 12, stagger = 1, seed = 0`): three jobs arriving one
/// slot apart is the tightest stagger that still races the two start slots
/// against a newly released job. Replayed across a seed sweep so the
/// invariants are exercised deterministically regardless of the proptest
/// implementation in use, which may not read the regression file.
#[test]
fn regression_tight_stagger_round_train() {
    let (n, w, stagger) = (3u32, 1u64 << 12, 1u64);
    for seed in 0..64u64 {
        let trace = run_traced(n, w, stagger, seed);
        let Some(anchor) = anchor_of(&trace) else {
            continue;
        };
        let last_busy = trace
            .iter()
            .rev()
            .find(|r| busy(r))
            .map(|r| r.slot)
            .unwrap_or(0);
        let mut run_len = 0u64;
        for rec in trace
            .iter()
            .filter(|r| r.slot >= anchor && r.slot <= last_busy)
        {
            if busy(rec) {
                run_len += 1;
                assert!(
                    run_len <= 3,
                    "seed {seed}: busy run of length {run_len} at slot {}",
                    rec.slot
                );
            } else {
                if run_len >= 2 {
                    let end_pos = (rec.slot - 1 - anchor) % ROUND_LEN;
                    assert_eq!(
                        end_pos,
                        1,
                        "seed {seed}: busy run ending at slot {} (pos {end_pos})",
                        rec.slot - 1
                    );
                }
                run_len = 0;
            }
        }
    }
}
