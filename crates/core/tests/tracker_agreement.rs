//! Property tests for the pecking-order tracker's Lemma 7 invariant:
//! any two trackers started at a common critical time and fed the same
//! public channel history agree on every slot's owner and on every class's
//! schedule — regardless of what the (arbitrary, even nonsensical)
//! feedback stream contains.

use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::tracker::Tracker;
use dcr_sim::job::JobId;
use dcr_sim::message::Payload;
use dcr_sim::slot::Feedback;
use proptest::prelude::*;

/// Arbitrary feedback: silent, noise, or a success from some job id.
fn arb_feedback() -> impl Strategy<Value = Feedback> {
    prop_oneof![
        Just(Feedback::Silent),
        Just(Feedback::Noise),
        (0u32..8).prop_map(|id| Feedback::Success {
            src: id as JobId,
            payload: Payload::Data(id as JobId),
        }),
    ]
}

proptest! {
    /// Lemma 7: a class-`small` tracker and a class-`big` tracker replay
    /// identically on all slots the smaller one can see.
    #[test]
    fn trackers_agree_on_shared_classes(
        feedback in prop::collection::vec(arb_feedback(), 1..256),
        lambda in 1u64..3,
        min_class in 1u32..4,
        extra_small in 0u32..3,
        extra_big in 0u32..3,
        start_block in 0u64..4,
    ) {
        let small_top = min_class + extra_small;
        let big_top = small_top + extra_big;
        let params = AlignedParams::new(lambda, 2, min_class);
        // A critical time for the bigger class is critical for both.
        let start = start_block << big_top;
        let mut small = Tracker::new(params, small_top, start);
        let mut big = Tracker::new(params, big_top, start);

        for (i, fb) in feedback.iter().enumerate() {
            let t = start + i as u64;
            let a = small.begin_slot(t);
            let b = big.begin_slot(t);
            match (a, b) {
                (Some(sa), Some(sb)) => {
                    // If the big tracker assigns the slot to a class the
                    // small tracker can see, they must agree exactly.
                    if sb.class <= small_top {
                        prop_assert_eq!(sa, sb, "slot {}", t);
                    } else {
                        // Big gave the slot to a larger class: every class
                        // the small tracker sees must be complete.
                        prop_assert!(sa.class <= small_top);
                        // ...which contradicts `small` finding work, so
                        // this case must not happen:
                        prop_assert!(false, "small active while big defers at {}", t);
                    }
                }
                (Some(sa), None) => {
                    prop_assert!(
                        false,
                        "big idle while small runs class {} at {}",
                        sa.class,
                        t
                    );
                }
                (None, Some(sb)) => {
                    // Fine: the slot belongs to a class only big tracks.
                    prop_assert!(sb.class > small_top, "slot {}", t);
                }
                (None, None) => {}
            }
            small.end_slot(t, fb);
            big.end_slot(t, fb);
        }

        // Shared classes end with identical schedules and estimates.
        for class in min_class..=small_top {
            prop_assert_eq!(small.steps_of(class), big.steps_of(class));
            prop_assert_eq!(small.estimate_of(class), big.estimate_of(class));
            prop_assert_eq!(small.is_complete(class), big.is_complete(class));
            prop_assert_eq!(small.window_start_of(class), big.window_start_of(class));
        }
    }

    /// Replay determinism: the same history always yields the same tracker
    /// state (no hidden randomness or iteration-order dependence).
    #[test]
    fn tracker_replay_is_deterministic(
        feedback in prop::collection::vec(arb_feedback(), 1..128),
        lambda in 1u64..3,
    ) {
        let params = AlignedParams::new(lambda, 2, 2);
        let run = || {
            let mut tr = Tracker::new(params, 5, 0);
            let mut owners = Vec::new();
            for (i, fb) in feedback.iter().enumerate() {
                owners.push(tr.begin_slot(i as u64).map(|s| (s.class, s.kind)));
                tr.end_slot(i as u64, fb);
            }
            (owners, tr.estimate_of(5), tr.steps_of(5))
        };
        prop_assert_eq!(run(), run());
    }

    /// The active-step count of any class never exceeds Lemma 6's total
    /// for its (public) estimate, and completion happens exactly at it.
    #[test]
    fn steps_never_exceed_lemma6_total(
        feedback in prop::collection::vec(arb_feedback(), 1..512),
        lambda in 1u64..3,
    ) {
        let params = AlignedParams::new(lambda, 2, 2);
        let top = 6u32;
        let mut tr = Tracker::new(params, top, 0);
        for (i, fb) in feedback.iter().enumerate() {
            let t = i as u64;
            let _ = tr.begin_slot(t);
            tr.end_slot(t, fb);
            for class in 2..=top {
                let steps = tr.steps_of(class);
                if let Some(est) = tr.estimate_of(class) {
                    let total = params.total_active(class, est);
                    prop_assert!(steps <= total, "class {} steps {} > {}", class, steps, total);
                    if steps == total {
                        prop_assert!(tr.is_complete(class));
                    }
                } else {
                    prop_assert!(steps <= params.est_len(class));
                }
            }
        }
    }
}
