//! Direct statistical tests of the size-estimation lemmas (Lemmas 9–10):
//! drive the estimation *phases* exactly as specified — `n̂` jobs each
//! transmitting with probability `1/2^i` in phase `i` — and check the
//! success-count separations the argmax rule relies on.

use dcr_core::aligned::estimator::Estimation;
use dcr_sim::rng::{SeedSeq, StreamLabel};
use rand::Rng;

/// Simulate one estimation phase: `n_hat` jobs, transmit probability
/// `1/2^phase`, `steps` slots, optional all-successes jamming at `p_jam`.
/// Returns the number of successful (singleton, unjammed) slots.
fn run_phase(n_hat: usize, phase: u32, steps: u64, p_jam: f64, seed: u64) -> u64 {
    let seeds = SeedSeq::new(seed);
    let mut rngs: Vec<_> = (0..n_hat)
        .map(|i| seeds.rng(StreamLabel::Job, i as u64))
        .collect();
    let mut jam = seeds.rng(StreamLabel::Jammer, 0);
    let p = Estimation::tx_probability(phase);
    let mut successes = 0;
    for _ in 0..steps {
        let tx = rngs
            .iter_mut()
            .map(|r| u32::from(r.gen_bool(p)))
            .sum::<u32>();
        if tx == 1 && !(p_jam > 0.0 && jam.gen_bool(p_jam)) {
            successes += 1;
        }
    }
    successes
}

/// Lemma 9: in the matched phase (`2^{i-1} ≤ n̂ ≤ 2^i`) the per-slot
/// success probability is at least `1/(2e)` (halved under jamming), so a
/// `λℓ`-slot phase accumulates at least `λℓ/16` successes w.h.p.
#[test]
fn lemma9_matched_phase_produces_many_successes() {
    let ell = 12u32;
    let lambda = 4u64;
    let steps = lambda * u64::from(ell); // λℓ slots
    let threshold = (lambda * u64::from(ell)) / 16;
    for (n_hat, phase) in [(2usize, 1u32), (4, 2), (16, 4), (128, 7), (1024, 10)] {
        let mut below = 0;
        let trials = 200;
        for seed in 0..trials {
            if run_phase(n_hat, phase, steps, 0.0, seed) < threshold {
                below += 1;
            }
        }
        assert!(
            below <= 2,
            "n̂={n_hat} phase={phase}: {below}/{trials} trials below λℓ/16"
        );
    }
}

#[test]
fn lemma9_survives_half_jamming() {
    let ell = 12u32;
    let lambda = 4u64;
    let steps = lambda * u64::from(ell);
    let threshold = (lambda * u64::from(ell)) / 16;
    let mut below = 0;
    let trials = 200;
    for seed in 0..trials {
        if run_phase(16, 4, steps, 0.5, seed) < threshold {
            below += 1;
        }
    }
    assert!(
        below <= 6,
        "{below}/{trials} trials below threshold at p_jam=0.5"
    );
}

/// Lemma 10: a phase whose probability is far too high (`n̂ ≥ 2^{i+5}`,
/// saturated collisions) or far too low (`n̂ ≤ 2^{i-5}`, mostly silence)
/// collects strictly fewer than `λℓ/16` successes w.h.p.
#[test]
fn lemma10_mismatched_phases_produce_few_successes() {
    let ell = 12u32;
    let lambda = 4u64;
    let steps = lambda * u64::from(ell);
    let threshold = (lambda * u64::from(ell)) / 16;
    // Too-low probability: n̂ = 2, phase 8 (p = 1/256).
    // Too-high probability: n̂ = 1024, phase 3 (p = 1/8 → E[tx] = 128).
    for (n_hat, phase) in [(2usize, 8u32), (1024, 3)] {
        let mut above = 0;
        let trials = 200;
        for seed in 0..trials {
            if run_phase(n_hat, phase, steps, 0.0, seed) >= threshold {
                above += 1;
            }
        }
        // The low-probability case has E[successes] ≈ 0.37 per phase and
        // P[≥ λℓ/16] ≈ 0.6% — a handful of exceedances in 200 trials is
        // the expected binomial tail, not a violation.
        assert!(
            above <= 6,
            "n̂={n_hat} phase={phase}: {above}/{trials} trials at/above λℓ/16"
        );
    }
}

/// Lemma 8 end-to-end at the estimator: feeding the per-phase success
/// counts from simulated phases into the argmax rule lands the estimate in
/// `[2n̂, τ²n̂]` for τ = 64 in essentially every trial.
#[test]
fn lemma8_argmax_estimate_in_band() {
    let ell = 12u32;
    let lambda = 2u64;
    let steps = lambda * u64::from(ell);
    let tau = 64u64;
    for n_hat in [1usize, 3, 10, 50, 300] {
        let mut out_of_band = 0;
        let trials = 100;
        for seed in 0..trials {
            let mut est = Estimation::new(ell);
            for phase in 1..=ell {
                let succ = run_phase(n_hat, phase, steps, 0.0, seed * 1000 + u64::from(phase));
                for _ in 0..succ {
                    est.record(phase, true);
                }
            }
            let e = est.estimate(tau);
            if e < 2 * n_hat as u64 || e > tau * tau * n_hat as u64 {
                out_of_band += 1;
            }
        }
        assert!(
            out_of_band <= 2,
            "n̂={n_hat}: {out_of_band}/{trials} out of band"
        );
    }
}
