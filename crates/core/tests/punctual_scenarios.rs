//! Scenario tests for the PUNCTUAL automaton: drive a single protocol
//! instance with hand-crafted channel feedback (fabricated round trains,
//! leaders, claims) and check each Figure-2 transition individually —
//! following, refusing an earlier-deadline leader, the final-check window
//! halving, leadership takeover, deposition and handoff.

use dcr_core::punctual::messages::PunctualMsg;
use dcr_core::punctual::{PunctualParams, ROUND_LEN};
use dcr_core::PunctualProtocol;
use dcr_sim::engine::{Action, JobCtx, Protocol};
use dcr_sim::job::JobId;
use dcr_sim::message::Payload;
use dcr_sim::rng::{SeedSeq, StreamLabel};
use dcr_sim::slot::Feedback;
use rand_chacha::ChaCha8Rng;

/// Drives one protocol instance slot by slot with scripted feedback.
struct Driver {
    proto: PunctualProtocol,
    id: JobId,
    window: u64,
    local: u64,
    rng: ChaCha8Rng,
    activated: bool,
}

impl Driver {
    fn new(params: PunctualParams, window: u64, seed: u64) -> Self {
        Self {
            proto: PunctualProtocol::new(params),
            id: 0,
            window,
            local: 0,
            rng: SeedSeq::new(seed).rng(StreamLabel::Job, 0),
            activated: false,
        }
    }

    fn ctx(&self) -> JobCtx {
        JobCtx {
            id: self.id,
            window: self.window,
            local_time: self.local,
            aligned_time: None,
            probed: false,
        }
    }

    /// Run one slot: get the protocol's action, then apply `resolve` to
    /// produce the channel feedback it observes (the driver plays the
    /// channel and all other stations).
    fn step(&mut self, resolve: impl FnOnce(&Action) -> Feedback) -> Action {
        if !self.activated {
            self.proto.on_activate(&self.ctx(), &mut self.rng);
            self.activated = true;
        }
        let ctx = self.ctx();
        let action = self.proto.act(&ctx, &mut self.rng);
        let fb = resolve(&action);
        self.proto.on_feedback(&ctx, &fb, &mut self.rng);
        self.local += 1;
        action
    }

    /// Feedback for a slot where the driver's virtual peers keep the round
    /// train alive: start slots are noise, everything else is silent unless
    /// the protocol itself transmitted (its lone transmission succeeds).
    fn train_feedback(pos: u64, action: &Action, beacon: Option<PunctualMsg>) -> Feedback {
        match (pos, action) {
            // Start slots: at least the virtual peers transmit -> noise.
            (0 | 1, _) => Feedback::Noise,
            // Timekeeper: the scripted leader's beacon, if any.
            (3, Action::Transmit(p)) => Feedback::Success {
                src: 0,
                payload: *p,
            },
            (3, _) => match beacon {
                Some(msg) => Feedback::Success {
                    src: 99,
                    payload: msg.encode(),
                },
                None => Feedback::Silent,
            },
            // Other slots: the protocol's own lone transmission succeeds.
            (_, Action::Transmit(p)) => Feedback::Success {
                src: 0,
                payload: *p,
            },
            _ => Feedback::Silent,
        }
    }

    /// Drive `rounds` full rounds of an established train whose leader
    /// (if `beacon_of` yields one) beacons every timekeeper slot. The
    /// train is anchored at the driver's current local slot.
    fn run_rounds(
        &mut self,
        rounds: u64,
        mut beacon_of: impl FnMut(u64) -> Option<PunctualMsg>,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        for r in 0..rounds {
            let beacon = beacon_of(r);
            for pos in 0..ROUND_LEN {
                let a = self.step(|action| Self::train_feedback(pos, action, beacon));
                actions.push(a);
            }
        }
        actions
    }

    /// Synchronize the protocol onto a fabricated train: two busy slots
    /// then a silent guard.
    fn sync_onto_train(&mut self) {
        self.step(|_| Feedback::Noise);
        self.step(|_| Feedback::Noise);
        self.step(|_| Feedback::Silent);
        // Now inside round position 3 == timekeeper of the train's round 0;
        // realign to the next round start for convenience.
        for pos in 3..ROUND_LEN {
            self.step(|a| Self::train_feedback(pos, a, None));
        }
    }
}

fn params() -> PunctualParams {
    PunctualParams::laptop()
}

/// Is this payload a PUNCTUAL claim?
fn is_claim(a: &Action) -> bool {
    matches!(a, Action::Transmit(p)
        if matches!(PunctualMsg::decode(p), Some(PunctualMsg::Claim { .. })))
}

fn is_data(a: &Action) -> bool {
    matches!(a, Action::Transmit(Payload::Data(_)))
}

#[test]
fn follows_a_later_deadline_leader_without_claiming() {
    let w = 1 << 14; // 1638 rounds
    let mut d = Driver::new(params(), w, 1);
    d.sync_onto_train();
    // A leader with plenty of remaining time beacons every round. Its
    // round counter starts at 1000 so the trimmed virtual window
    // ([1024, 2048)) begins only 24 rounds out — the follower's embedded
    // ALIGNED participation falls inside the driven horizon.
    let actions = d.run_rounds(400, |r| {
        Some(PunctualMsg::Beacon {
            epoch: 7,
            rho: 1000 + r,
            leader_remaining: 5000,
        })
    });
    assert!(
        !actions.iter().any(is_claim),
        "a follower must not run the slingshot"
    );
    // It participates in the embedded ALIGNED: estimation pings or data
    // eventually appear in aligned slots (position 5 of each round).
    let transmits_in_aligned: usize = actions
        .chunks(ROUND_LEN as usize)
        .filter(|round| matches!(round[5], Action::Transmit(_)))
        .count();
    assert!(
        transmits_in_aligned > 0,
        "follower should run ALIGNED in aligned slots"
    );
}

#[test]
fn ignores_an_earlier_deadline_leader_and_goes_anarchist() {
    let w = 1 << 13; // 819 rounds; pullback capped at 204 election slots
    let mut d = Driver::new(params(), w, 2);
    d.sync_onto_train();
    // The incumbent leader's deadline is far earlier than ours — and below
    // the final-check threshold (half our remaining), so after the
    // pullback the job must release the slingshot.
    let actions = d.run_rounds(300, |r| {
        Some(PunctualMsg::Beacon {
            epoch: 7,
            rho: 50 + r,
            leader_remaining: 10,
        })
    });
    let anarchy_data: usize = actions
        .chunks(ROUND_LEN as usize)
        .filter(|round| is_data(&round[9]))
        .count();
    assert!(
        anarchy_data > 0,
        "with no usable leader the job must transmit data in anarchy slots"
    );
}

#[test]
fn final_check_accepts_a_half_window_leader() {
    let w = 1 << 13; // my remaining ≈ 819 rounds
    let mut d = Driver::new(params(), w, 3);
    d.sync_onto_train();
    // Leader remaining ≈ 73% of ours: not enough to follow outright
    // (needs ≥ my_rem ≈ 819 rounds), but still above half the remaining
    // window when the pullback budget (819/4 ≈ 204 election slots) runs
    // out — the Figure-2 final check must round the window down and
    // follow rather than release the slingshot.
    let actions = d.run_rounds(400, |r| {
        Some(PunctualMsg::Beacon {
            epoch: 9,
            rho: r,
            leader_remaining: 600u64.saturating_sub(r),
        })
    });
    let anarchy_data: usize = actions
        .chunks(ROUND_LEN as usize)
        .filter(|round| is_data(&round[9]))
        .count();
    let aligned_tx: usize = actions
        .chunks(ROUND_LEN as usize)
        .filter(|round| matches!(round[5], Action::Transmit(_)))
        .count();
    assert_eq!(anarchy_data, 0, "half-window leader is good enough");
    assert!(aligned_tx > 0, "should round down and follow");
}

#[test]
fn claims_leadership_and_beacons_when_alone() {
    // Tiny window: claim probability is high, so a lone job claims fast.
    let w = 400; // 40 rounds; seed probed so the claim lands
    let mut d = Driver::new(params(), w, 8);
    // Empty channel: the job announces its own train after the listen
    // timeout (20 silent slots), then runs the slingshot.
    let mut became_leader = false;
    let mut beacons = 0;
    for _ in 0..(w - 1) {
        let a = d.step(|action| match action {
            Action::Transmit(p) => Feedback::Success {
                src: 0,
                payload: *p,
            },
            _ => Feedback::Silent,
        });
        if let Action::Transmit(p) = a {
            match PunctualMsg::decode(&p) {
                Some(PunctualMsg::Claim { .. }) => became_leader = true,
                Some(PunctualMsg::Beacon { .. }) => beacons += 1,
                _ => {}
            }
        }
    }
    assert!(became_leader, "lone job with p=1/2 claims quickly");
    assert!(beacons > 0, "the new leader must beacon");
    assert!(d.proto.is_leader() || d.proto.is_done());
}

#[test]
fn deposed_leader_hands_off_with_its_data() {
    // Seed chosen (by probing) so the lone job wins a claim early; the
    // claim probability at w=400 is ~0.5% per election slot, so most
    // seeds never claim inside one window.
    let w = 400;
    let mut d = Driver::new(params(), w, 8);
    // Let it become leader on an empty channel.
    let mut slots = 0;
    while !d.proto.is_leader() && slots < 300 {
        d.step(|action| match action {
            Action::Transmit(p) => Feedback::Success {
                src: 0,
                payload: *p,
            },
            _ => Feedback::Silent,
        });
        slots += 1;
    }
    assert!(d.proto.is_leader(), "setup: must become leader");
    // Feed a foreign successful claim with a later deadline in the next
    // election slot; then the leader must transmit its DATA in the next
    // timekeeper slot (the handoff).
    let mut handoff_seen = false;
    for _ in 0..3 * ROUND_LEN {
        let a = d.step(|action| {
            // Election slots carry the rival's claim; leader's own
            // transmissions succeed.
            match action {
                Action::Transmit(p) => Feedback::Success {
                    src: 0,
                    payload: *p,
                },
                _ => Feedback::Success {
                    src: 42,
                    payload: PunctualMsg::Claim { remaining: 1 << 20 }.encode(),
                },
            }
        });
        if is_data(&a) {
            handoff_seen = true;
            break;
        }
    }
    assert!(
        handoff_seen,
        "deposed leader must hand off with its data message"
    );
    assert!(d.proto.has_succeeded(), "the handoff delivered its data");
}

#[test]
fn follower_readopts_on_epoch_change() {
    let w = 1 << 14;
    let mut d = Driver::new(params(), w, 6);
    d.sync_onto_train();
    // Follow epoch 1 for a while.
    d.run_rounds(50, |r| {
        Some(PunctualMsg::Beacon {
            epoch: 1,
            rho: r,
            leader_remaining: 5000,
        })
    });
    // Epoch flips to 2 with a still-later deadline: the follower must not
    // panic, must keep participating (re-trimmed), and must never claim.
    let actions = d.run_rounds(100, |r| {
        Some(PunctualMsg::Beacon {
            epoch: 2,
            rho: 1000 + r,
            leader_remaining: 6000,
        })
    });
    assert!(!actions.iter().any(is_claim));
}

#[test]
fn synchronizes_with_correct_phase_despite_preceding_anarchy_noise() {
    let w = 1 << 13;
    let mut d = Driver::new(params(), w, 8);
    // Fabricated train where the anarchy slot (pos 9) is ALSO busy — the
    // case that breaks naive two-busy synchronization. Pattern per round:
    // busy busy silent ... busy(pos9). The newcomer hears pos 9, 0, 1 as a
    // 3-run; the anchor must land on pos 0, which we verify by watching
    // where the protocol places its own start transmissions.
    let mut start_positions = Vec::new();
    for _slot in 0..(6 * ROUND_LEN) {
        let pos = d.local % ROUND_LEN; // driver's ground-truth round phase
        let a = d.step(|action| match (pos, action) {
            (0 | 1 | 9, _) => Feedback::Noise,
            (3, _) => Feedback::Success {
                src: 99,
                payload: PunctualMsg::Beacon {
                    epoch: 3,
                    rho: 77,
                    leader_remaining: 4000,
                }
                .encode(),
            },
            (_, Action::Transmit(p)) => Feedback::Success {
                src: 0,
                payload: *p,
            },
            _ => Feedback::Silent,
        });
        if let Action::Transmit(p) = a {
            if PunctualMsg::decode(&p) == Some(PunctualMsg::Start) {
                start_positions.push(pos);
            }
        }
    }
    assert!(
        !start_positions.is_empty(),
        "job must synchronize and transmit starts"
    );
    assert!(
        start_positions.iter().all(|p| *p == 0 || *p == 1),
        "starts must land exactly on the true start slots, got {start_positions:?}"
    );
}
