//! The contention calculus of Section 2.1.
//!
//! The **contention** of slot `t` is `C(t) = Σ_j p_j(t)`, the sum of the
//! broadcast probabilities of all jobs present in the slot. Lemma 2: when
//! every `p_i(t) ≤ 1/2`,
//!
//! ```text
//!   C(t) / e^{2 C(t)}  ≤  p_suc(t)  ≤  2 C(t) / e^{C(t)}
//! ```
//!
//! so constant contention means constant success probability, sub-constant
//! contention means success probability `Θ(C)`, and super-constant
//! contention kills the slot exponentially fast (Corollary 3). Experiment
//! E1 measures these bounds empirically.

/// Lemma 1 (folklore): for `0 ≤ x < 1`, `e^{-x/(1-x)} ≤ 1 - x ≤ e^{-x}`.
/// Returns `(lower, upper)` for the middle quantity `1 - x`.
pub fn lemma1_bounds(x: f64) -> (f64, f64) {
    assert!((0.0..1.0).contains(&x), "x must be in [0,1)");
    ((-x / (1.0 - x)).exp(), (-x).exp())
}

/// Lemma 2's bounds on the per-slot success probability given contention
/// `c`, valid when every individual probability is at most 1/2. Returns
/// `(lower, upper) = (c·e^{-2c}, 2c·e^{-c})`.
pub fn success_prob_bounds(c: f64) -> (f64, f64) {
    assert!(c >= 0.0, "contention is a sum of probabilities");
    (c * (-2.0 * c).exp(), 2.0 * c * (-c).exp())
}

/// The exact probability that **exactly one** of the independent
/// transmitters fires: `Σ_i p_i Π_{j≠i} (1 - p_j)`.
///
/// Computed in one pass via the product of `(1 - p_j)` and the sum of
/// odds `p_i / (1 - p_i)`, with an `O(n)` fallback handling `p_i = 1`.
pub fn exact_success_prob(probs: &[f64]) -> f64 {
    for &p in probs {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    }
    let ones = probs.iter().filter(|&&p| p == 1.0).count();
    match ones {
        0 => {
            let prod: f64 = probs.iter().map(|&p| 1.0 - p).product();
            let odds: f64 = probs.iter().map(|&p| p / (1.0 - p)).sum();
            prod * odds
        }
        // Exactly one certain transmitter: success iff everyone else stays
        // silent.
        1 => probs
            .iter()
            .filter(|&&p| p != 1.0)
            .map(|&p| 1.0 - p)
            .product(),
        // Two certain transmitters always collide.
        _ => 0.0,
    }
}

/// The contention of a slot: the plain sum of broadcast probabilities.
pub fn contention(probs: &[f64]) -> f64 {
    probs.iter().sum()
}

/// Check Lemma 2 numerically for a uniform population: `n` jobs each
/// transmitting with probability `p ≤ 1/2`. Returns
/// `(lower, exact, upper)`; the lemma asserts `lower ≤ exact ≤ upper`.
pub fn lemma2_check(n: usize, p: f64) -> (f64, f64, f64) {
    assert!(p <= 0.5, "Lemma 2 requires p_i <= 1/2");
    let c = p * n as f64;
    let (lo, hi) = success_prob_bounds(c);
    let exact = n as f64 * p * (1.0 - p).powi(n as i32 - 1);
    (lo, exact, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_sandwich() {
        for &x in &[0.0, 0.1, 0.25, 0.5, 0.9, 0.99] {
            let (lo, hi) = lemma1_bounds(x);
            let mid = 1.0 - x;
            assert!(lo <= mid + 1e-15 && mid <= hi + 1e-15, "x={x}");
        }
    }

    #[test]
    fn lemma2_sandwich_over_grid() {
        // Sweep population size and probability; the exact singleton-success
        // probability must respect the paper's bounds whenever p <= 1/2.
        for &n in &[1usize, 2, 4, 16, 64, 256, 1024] {
            for &p in &[0.001, 0.01, 0.1, 0.25, 0.5] {
                let (lo, exact, hi) = lemma2_check(n, p);
                assert!(
                    lo <= exact + 1e-12 && exact <= hi + 1e-12,
                    "n={n} p={p}: {lo} <= {exact} <= {hi}"
                );
            }
        }
    }

    #[test]
    fn exact_success_prob_basics() {
        assert_eq!(exact_success_prob(&[]), 0.0);
        assert!((exact_success_prob(&[0.3]) - 0.3).abs() < 1e-15);
        // Two jobs at p and q: p(1-q) + q(1-p).
        let e = exact_success_prob(&[0.2, 0.5]);
        assert!((e - (0.2 * 0.5 + 0.5 * 0.8)).abs() < 1e-15);
    }

    #[test]
    fn certain_transmitters() {
        assert_eq!(exact_success_prob(&[1.0]), 1.0);
        assert!((exact_success_prob(&[1.0, 0.25]) - 0.75).abs() < 1e-15);
        assert_eq!(exact_success_prob(&[1.0, 1.0]), 0.0);
        assert_eq!(exact_success_prob(&[1.0, 1.0, 0.3]), 0.0);
    }

    #[test]
    fn high_contention_kills_success() {
        // Corollary 3 third bullet: with C = 20 the success probability is
        // essentially zero.
        let probs = vec![0.5; 40]; // C = 20
        assert!(exact_success_prob(&probs) < 1e-5);
        let (_, hi) = success_prob_bounds(20.0);
        assert!(hi < 1e-7);
    }

    #[test]
    fn low_contention_linear_regime() {
        // Corollary 3 second bullet: C < 1 gives p_suc = Θ(C).
        let probs = vec![0.001; 100]; // C = 0.1
        let exact = exact_success_prob(&probs);
        assert!(exact > 0.09 && exact < 0.1, "exact={exact}");
    }

    #[test]
    fn contention_sums() {
        assert!((contention(&[0.1, 0.2, 0.3]) - 0.6).abs() < 1e-15);
    }
}
