//! # dcr-core — the SPAA 2020 deadline contention-resolution protocols
//!
//! This crate implements the algorithmic contribution of *Contention
//! Resolution with Message Deadlines* (Agrawal, Bender, Fineman, Gilbert,
//! Young — SPAA '20) on top of the [`dcr_sim`] channel substrate:
//!
//! * [`contention`] — the contention/success-probability calculus of
//!   Section 2.1 (Lemmas 1–2, Corollary 3);
//! * [`uniform`] — the natural-but-unfair **UNIFORM** algorithm of
//!   Section 2.2 (broadcast in Θ(1) random slots of the window);
//! * [`aligned`] — **ALIGNED** for power-of-2-aligned windows (Section 3):
//!   per-class size estimation, the decreasing-phase "backon" broadcast,
//!   and distributed pecking-order scheduling via a replicated deterministic
//!   tracker (Lemma 7);
//! * [`clocked`] — the with-global-clock shortcut for general windows that
//!   Section 4 mentions and PUNCTUAL replaces (used to measure the price
//!   of clocklessness);
//! * [`punctual`] — **PUNCTUAL** for general windows with no global clock
//!   (Section 4, Figure 2): round synchronization, the SLINGSHOT leader
//!   election, FOLLOW-THE-LEADER window trimming into an embedded ALIGNED,
//!   BECOME-LEADER timekeeping, and the anarchist fallback.
//!
//! All protocol constants (λ, τ, the polylog exponents, round geometry) are
//! run-time parameters with presets: `paper()` — the constants exactly as
//! stated in the paper, which need astronomically large windows to pay
//! off — and `PunctualParams::laptop()` / small `AlignedParams` values that
//! preserve every structural property at simulable scales and are what the
//! experiment harness runs. See `EXPERIMENTS.md` at the workspace root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aligned;
pub mod clocked;
pub mod contention;
pub mod punctual;
pub mod uniform;

pub use aligned::params::AlignedParams;
pub use aligned::protocol::AlignedProtocol;
pub use clocked::{ClockedParams, ClockedProtocol};
pub use punctual::params::PunctualParams;
pub use punctual::protocol::PunctualProtocol;
pub use uniform::Uniform;
