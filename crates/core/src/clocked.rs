//! **CLOCKED** — the global-clock shortcut for arbitrary windows.
//!
//! Section 4 of the paper observes: "if all jobs had access to a global
//! clock — that is, all jobs agreed on the index of the current slot —
//! then each job could trim its own window without any help. Then, the
//! algorithm from Section 3 could be used." PUNCTUAL exists precisely
//! because that clock is *not* available; this module implements the
//! with-clock variant so the cost of clocklessness is measurable
//! (experiment E12).
//!
//! Behaviour per job: trim the remaining window to the largest aligned
//! power-of-2 window (`trimmed(W)`, Lemma 15 guarantees `≥ |W|/4`), then
//! run the ALIGNED machinery inside it. Jobs whose trimmed class falls
//! below the protocol floor — or whose ALIGNED run is truncated — fall
//! back to random transmissions at the anarchist rate `λ·log₂w / w`,
//! mirroring PUNCTUAL's fallback so E12 isolates exactly one variable:
//! who supplies the clock.

use crate::aligned::params::AlignedParams;
use crate::aligned::protocol::{AlignedAction, AlignedJob};
use crate::punctual::trim::trim_class;
use dcr_sim::engine::{Action, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};

/// Parameters for CLOCKED.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockedParams {
    /// The embedded ALIGNED parameters (including the class floor).
    pub aligned: AlignedParams,
    /// λ multiplier for the fallback transmission rate.
    pub lambda: u64,
}

use serde::{Deserialize, Serialize};

impl ClockedParams {
    /// Defaults matching `PunctualParams::laptop()`'s embedded ALIGNED.
    pub fn laptop() -> Self {
        Self {
            aligned: AlignedParams::new(1, 2, 8),
            lambda: 4,
        }
    }

    /// Fallback per-slot probability `min(1/2, λ·log₂w / w)`.
    pub fn fallback_probability(&self, w: u64) -> f64 {
        let wf = w.max(2) as f64;
        ((self.lambda as f64) * wf.log2() / wf).min(0.5)
    }
}

#[derive(Debug)]
enum Phase {
    /// Waiting for the trimmed window to start.
    Waiting { trim_start: u64, class: u32 },
    /// Running ALIGNED inside the trimmed window.
    Running(AlignedJob),
    /// Random transmissions at the anarchist rate.
    Fallback,
    /// Delivered.
    Done,
}

/// The CLOCKED protocol for one job. Requires
/// [`dcr_sim::engine::EngineConfig::expose_aligned_clock`].
#[derive(Debug)]
pub struct ClockedProtocol {
    params: ClockedParams,
    phase: Phase,
    last_prob: f64,
}

impl ClockedProtocol {
    /// Build the protocol.
    pub fn new(params: ClockedParams) -> Self {
        Self {
            params,
            phase: Phase::Fallback, // replaced at activation
            last_prob: 0.0,
        }
    }

    /// Factory closure for [`dcr_sim::engine::Engine::add_jobs`].
    pub fn factory(
        params: ClockedParams,
    ) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(ClockedProtocol::new(params))
    }
}

impl Protocol for ClockedProtocol {
    fn on_activate(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) {
        let now = ctx.aligned_now();
        self.phase = match trim_class(now, now + ctx.window) {
            Some((trim_start, class)) if class >= self.params.aligned.min_class => {
                Phase::Waiting { trim_start, class }
            }
            _ => Phase::Fallback,
        };
    }

    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        self.last_prob = 0.0;
        let now = ctx.aligned_now();
        if let Phase::Waiting { trim_start, class } = self.phase {
            if now >= trim_start {
                self.phase = Phase::Running(AlignedJob::new(
                    self.params.aligned,
                    ctx.id,
                    class,
                    trim_start,
                ));
            }
        }
        match &mut self.phase {
            Phase::Waiting { .. } | Phase::Done => Action::Listen,
            Phase::Running(job) => {
                let action = job.decide(now, rng);
                self.last_prob = job.last_prob();
                match action {
                    AlignedAction::Idle => Action::Listen,
                    AlignedAction::Control => Action::Transmit(job.control_payload()),
                    AlignedAction::Data => Action::Transmit(job.data_payload()),
                    // Keep listening so on_feedback still observes the
                    // success/give-up transitions the same slot.
                    AlignedAction::Doze => Action::Listen,
                }
            }
            Phase::Fallback => {
                let p = self.params.fallback_probability(ctx.window);
                self.last_prob = p;
                if rng.gen_bool(p) {
                    Action::Transmit(Payload::Data(ctx.id))
                } else {
                    Action::Listen
                }
            }
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
        if let Feedback::Success { src, payload } = fb {
            if *src == ctx.id && payload.is_data() {
                self.phase = Phase::Done;
                return;
            }
        }
        if let Phase::Running(job) = &mut self.phase {
            job.observe(ctx.aligned_now(), fb);
            if job.succeeded() {
                self.phase = Phase::Done;
            } else if job.gave_up() {
                // Truncated: spend the rest of the window in the fallback,
                // exactly like PUNCTUAL's anarchist resolution.
                self.phase = Phase::Fallback;
            }
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        Some(self.last_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::count_trials;

    fn run(jobs: &[JobSpec], seed: u64) -> dcr_sim::metrics::SimReport {
        let mut e = Engine::new(EngineConfig::aligned(), seed);
        e.add_jobs(jobs, ClockedProtocol::factory(ClockedParams::laptop()));
        e.run()
    }

    #[test]
    fn unaligned_batch_delivers() {
        // 6 jobs with a decidedly unaligned window [37, 37 + 2048·3).
        let jobs: Vec<JobSpec> = (0..6).map(|i| JobSpec::new(i, 37, 37 + 6144)).collect();
        let (hits, total) = count_trials(20, 5, |_, seed| run(&jobs, seed).successes() == 6);
        assert!(hits as f64 / total as f64 > 0.8, "{hits}/{total}");
    }

    #[test]
    fn tiny_window_uses_fallback_and_often_delivers() {
        // Window far below the class floor: pure fallback.
        let jobs = vec![JobSpec::new(0, 5, 5 + 128)];
        let (hits, total) = count_trials(40, 7, |_, seed| run(&jobs, seed).successes() == 1);
        assert!(hits as f64 / total as f64 > 0.8, "{hits}/{total}");
    }

    #[test]
    fn staggered_unaligned_windows_share_the_channel() {
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| {
                let r = u64::from(i) * 97 + 13;
                JobSpec::new(i, r, r + 4096)
            })
            .collect();
        let (hits, total) = count_trials(20, 9, |_, seed| run(&jobs, seed).successes() >= 3);
        assert!(hits as f64 / total as f64 > 0.8, "{hits}/{total}");
    }

    #[test]
    fn fallback_probability_capped() {
        let p = ClockedParams::laptop();
        assert!(p.fallback_probability(4) <= 0.5);
        assert!(p.fallback_probability(1 << 20) < 1e-4);
    }
}
