//! Aggregate (class-driver) fidelity for ALIGNED — one binomial per slot.
//!
//! Every member of an aligned job class shares `(window, release, deadline)`
//! and — by Lemma 7 — the *entire* replicated schedule state: the same
//! [`Tracker`], the same phase, the same per-slot transmission probability.
//! The members differ only in their private coins, so the class's per-slot
//! transmitter count is a single exact binomial draw and the shared state
//! machine needs to run **once per class**, not once per member:
//!
//! * an **estimation step** of phase `i` replaces `m` Bernoulli(`1/2^i`)
//!   coins with one `Binomial(m, 1/2^i)` draw;
//! * a **broadcast subphase** of length `X` assigns each live member one
//!   uniform slot; visited sequentially, the count at offset `o` (given the
//!   earlier offsets) is `Binomial(u, 1/(X − o))` where `u` counts members
//!   that have not yet fired in the subphase — the standard sequential
//!   decomposition of a multinomial, exact in distribution.
//!
//! A member is named only when exchangeability breaks: a *lone win* needs a
//! concrete `src` on the channel ([`ClassDriver::materialize`] picks one
//! uniformly from the eligible pool). A materialized-but-jammed broadcaster
//! is the one asymmetric case — it is publicly known to have fired, so it
//! is excluded from the winner pool for the rest of its subphase.
//!
//! All draws come from [`CounterRng`] streams keyed on
//! `(class_seed, slot, phase)`: [`Phase::Act`] for the per-slot count,
//! [`Phase::Activate`] for winner selection. Runs are therefore exactly
//! replayable and shard-invariant, per the [`dcr_sim::classes`] contract.

use crate::aligned::estimator::Estimation;
use crate::aligned::params::AlignedParams;
use crate::aligned::tracker::{ActiveStep, StepKind, Tracker};
use crate::aligned::CTRL_ESTIMATE;
use dcr_sim::classes::{ClassDriver, ClassEvent, ClassSlot};
use dcr_sim::crng::{CounterRng, Phase};
use dcr_sim::job::JobId;
use dcr_sim::message::{ControlMsg, Payload};
use dcr_sim::probe::{EventBuf, ProbeEvent};
use dcr_sim::rng::sample_binomial;
use dcr_sim::slot::Feedback;
use rand::Rng;

/// Stable discriminant for [`dcr_sim::engine::CohortTx::Class`]: commits to
/// the protocol kind (ALIGNED) and its parameters, so distinct parameter
/// sets never share a driver. The window size is already committed by the
/// class identity's `(release, deadline)` pair.
pub fn aligned_class_tag(params: &AlignedParams) -> u64 {
    0x414c_4e44 // "ALND"
        ^ params.lambda.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ params.tau.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ u64::from(params.min_class).wrapping_mul(0x94d0_49bb_1331_11eb)
}

/// What kind of slot the last [`AlignedCohort::begin_vt`] opened; consumed
/// by `materialize`/`end_vt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// An estimation step of this class (fresh coins every step).
    Estimation,
    /// A broadcast step of this class (subphase bookkeeping applies).
    Broadcast,
    /// Anything else: another class's step, or no tracked step at all.
    Other,
}

/// The shared ALIGNED state machine for one aggregate class, in *virtual*
/// time (plain slots in Section 3; one slot per round when embedded in
/// PUNCTUAL). Engine-facing use goes through the [`ClassDriver`] impl,
/// where virtual time is the global slot.
#[derive(Debug)]
pub struct AlignedCohort {
    params: AlignedParams,
    class: u32,
    window_start: u64,
    class_seed: u64,
    tracker: Tracker,
    /// Live members. `[0, anon)` is the exchangeable pool lone winners are
    /// drawn from; `[anon, len)` holds members publicly known to have fired
    /// in the current subphase (materialized but jammed).
    members: Vec<JobId>,
    anon: usize,
    /// The current broadcast subphase, identified by its global start step
    /// (`steps_of(class) − pos.offset`); a change resets the fired pool.
    cur_subphase: Option<u64>,
    /// Members that have not yet fired in the current subphase.
    unfired: u64,
    /// Kind and declared count of the slot in flight.
    pending: SlotKind,
    pending_count: u64,
    /// Index (into `members`) of the member named by `materialize`.
    materialized: Option<usize>,
    /// The schedule completed with members undelivered: they have given up.
    /// The members are *retained* so an embedding protocol (PUNCTUAL's
    /// FOLLOW) can convert them; the pure-aligned [`ClassDriver`] reports
    /// them dead via [`ClassDriver::live`].
    gave_up: bool,
    probe: EventBuf,
    reported_estimate: bool,
}

impl AlignedCohort {
    /// Build the shared state machine for a class whose common (virtual)
    /// window is `[window_start, window_start + 2^class)`, aligned.
    pub fn new(params: AlignedParams, class: u32, window_start: u64, class_seed: u64) -> Self {
        assert!(
            class >= params.min_class,
            "class {class} below protocol min_class {}",
            params.min_class
        );
        let tracker = Tracker::new(params, class, window_start);
        Self {
            params,
            class,
            window_start,
            class_seed,
            tracker,
            members: Vec::new(),
            anon: 0,
            cur_subphase: None,
            unfired: 0,
            pending: SlotKind::Other,
            pending_count: 0,
            materialized: None,
            gave_up: false,
            probe: EventBuf::default(),
            reported_estimate: false,
        }
    }

    /// Arm the probe buffer: the class will emit `PhaseEnter` and
    /// `SizeEstimate` events exactly as an attending member would.
    pub fn arm_probe(&mut self) {
        self.probe.arm();
        self.probe.phase("estimation");
    }

    /// The job class `ℓ`.
    pub fn class(&self) -> u32 {
        self.class
    }

    /// The protocol parameters this class runs with.
    pub fn params(&self) -> &AlignedParams {
        &self.params
    }

    /// Members still live in the aggregate (including given-up ones that
    /// have not been [taken](AlignedCohort::take_members) yet).
    pub fn live_members(&self) -> usize {
        self.members.len()
    }

    /// The live members, in pool order.
    pub fn members(&self) -> &[JobId] {
        &self.members
    }

    /// True once the class's schedule completed (or estimation concluded
    /// "empty") with members undelivered.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Take the undelivered members out of the aggregate (an embedding
    /// protocol converts them, e.g. PUNCTUAL's anarchist fallback).
    pub fn take_members(&mut self) -> Vec<JobId> {
        self.anon = 0;
        std::mem::take(&mut self.members)
    }

    /// The event buffer, so an embedding driver can absorb pending events
    /// before dropping the core (mirrors `AlignedJob::probe_mut`).
    pub(crate) fn probe_mut(&mut self) -> &mut EventBuf {
        &mut self.probe
    }

    /// The tracker's public estimate for this class, once available.
    pub fn estimate(&self) -> Option<u64> {
        self.tracker.estimate_of(self.class)
    }

    /// Open virtual slot `vt`: draw the aggregate transmitter count.
    pub fn begin_vt(&mut self, vt: u64) -> ClassSlot {
        self.materialized = None;
        self.pending = SlotKind::Other;
        self.pending_count = 0;
        if self.members.is_empty() || self.gave_up {
            // Dissolving (all delivered or given up): idle until the engine
            // drops the class. The tracker still consumes the slot so a
            // paired `end_vt` stays legal.
            let _ = self.tracker.begin_slot(vt);
            return ClassSlot::default();
        }
        let Some(ActiveStep {
            class,
            window_start,
            kind,
        }) = self.tracker.begin_slot(vt)
        else {
            return ClassSlot::default();
        };
        if class != self.class || window_start != self.window_start {
            // Another (smaller) class owns the slot; we only listen — its
            // estimation feedback feeds the shared tracker in `end_vt`.
            return ClassSlot::default();
        }
        let m = self.members.len() as u64;
        match kind {
            StepKind::Estimation { phase, .. } => {
                let p = Estimation::tx_probability(phase);
                let mut rng = CounterRng::new(self.class_seed, vt, Phase::Act);
                self.pending = SlotKind::Estimation;
                self.pending_count = sample_binomial(m, p, &mut rng);
                ClassSlot {
                    count: self.pending_count,
                    declared: m as f64 * p,
                }
            }
            StepKind::Broadcast(pos) => {
                let subphase_start_step = self.tracker.steps_of(self.class) - pos.offset;
                if self.cur_subphase != Some(subphase_start_step) {
                    // Subphase entry: every live member redraws its slot.
                    self.cur_subphase = Some(subphase_start_step);
                    self.unfired = m;
                    self.anon = self.members.len();
                }
                let remaining = pos.len - pos.offset;
                let mut rng = CounterRng::new(self.class_seed, vt, Phase::Act);
                self.pending = SlotKind::Broadcast;
                self.pending_count =
                    sample_binomial(self.unfired, 1.0 / remaining as f64, &mut rng);
                ClassSlot {
                    count: self.pending_count,
                    // Matches the exact path's diagnostic: every live member
                    // reports unconditional probability 1/X on its own
                    // broadcast step.
                    declared: m as f64 / pos.len as f64,
                }
            }
        }
    }

    /// Name the lone transmitter for virtual slot `vt`.
    pub fn materialize_vt(&mut self, vt: u64) -> (JobId, Payload) {
        debug_assert_eq!(self.pending_count, 1, "materialize without a lone count");
        let mut rng = CounterRng::new(self.class_seed, vt, Phase::Activate);
        match self.pending {
            SlotKind::Estimation => {
                // Fresh coins each step: every live member is eligible.
                let idx = rng.gen_range(0..self.members.len());
                self.materialized = Some(idx);
                (
                    self.members[idx],
                    Payload::Control(ControlMsg {
                        kind: CTRL_ESTIMATE,
                        a: u64::from(self.class),
                        b: 0,
                        c: 0,
                    }),
                )
            }
            SlotKind::Broadcast => {
                // The winner is one of the subphase's unfired members; by
                // exchangeability over the anonymous pool that is a uniform
                // pick from `[0, anon)` (known-fired members are excluded).
                let idx = rng.gen_range(0..self.anon);
                self.materialized = Some(idx);
                (self.members[idx], Payload::Data(self.members[idx]))
            }
            SlotKind::Other => unreachable!("materialize on a non-transmitting step"),
        }
    }

    /// Close virtual slot `vt` with the channel feedback.
    pub fn end_vt(&mut self, vt: u64, fb: &Feedback) {
        // Estimation steps (ours or a smaller class's) consume the real
        // feedback; for broadcast/idle steps the tracker ignores it — same
        // observable behavior as a member's listen/doze split.
        self.tracker.end_slot(vt, fb);
        match self.pending {
            SlotKind::Broadcast => {
                self.unfired = self.unfired.saturating_sub(self.pending_count);
                if let Some(idx) = self.materialized.take() {
                    let delivered = matches!(
                        fb,
                        Feedback::Success { src, payload }
                            if *src == self.members[idx] && payload.is_data()
                    );
                    // Either way the named member leaves the anonymous pool
                    // for the rest of the subphase.
                    self.members.swap(idx, self.anon - 1);
                    self.anon -= 1;
                    if delivered {
                        // Remove it entirely (the engine credits delivery).
                        let last = self.members.len() - 1;
                        self.members.swap(self.anon, last);
                        self.members.pop();
                    }
                }
            }
            SlotKind::Estimation | SlotKind::Other => {
                // A lone estimation ping delivers nothing and carries no
                // cross-step state; jammed pings change nothing either.
                self.materialized = None;
            }
        }
        self.pending = SlotKind::Other;
        self.pending_count = 0;
        self.maybe_report_estimate();
        if !self.members.is_empty() && self.tracker.is_complete(self.class) {
            // Schedule over (or estimation said "empty class"): undelivered
            // members give up, exactly as `AlignedJob::observe` would. They
            // are retained for an embedding protocol to take.
            self.gave_up = true;
        }
    }

    /// Publish the size estimate the first time it becomes available —
    /// same slot as every member of the exact path would emit it.
    fn maybe_report_estimate(&mut self) {
        if !self.probe.enabled() || self.reported_estimate {
            return;
        }
        if let Some(n_est) = self.tracker.estimate_of(self.class) {
            self.reported_estimate = true;
            self.probe.push(ProbeEvent::SizeEstimate {
                class: self.class,
                n_est,
                n_true: 0, // ground truth enriched by the engine
            });
            self.probe.phase("broadcast");
        }
    }
}

impl ClassDriver for AlignedCohort {
    fn admit(&mut self, member: JobId) {
        // All members share the release slot, so admission precedes the
        // first begin_slot and subphase bookkeeping starts consistent.
        self.members.push(member);
        self.anon = self.members.len();
    }

    fn live(&self) -> usize {
        // Given-up members take no further action in the pure aligned
        // setting: dead to the engine.
        if self.gave_up {
            0
        } else {
            self.members.len()
        }
    }

    fn begin_slot(&mut self, slot: u64) -> ClassSlot {
        // Pure aligned setting: virtual time is the global slot.
        self.begin_vt(slot)
    }

    fn materialize(&mut self, slot: u64) -> (JobId, Payload) {
        self.materialize_vt(slot)
    }

    fn end_slot(&mut self, slot: u64, fb: &Feedback, _out: &mut Vec<ClassEvent>) {
        // ALIGNED never differentiates a member except at delivery, so no
        // ejections are ever reported.
        self.end_vt(slot, fb);
    }

    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        self.probe.drain_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::protocol::AlignedProtocol;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::metrics::SimReport;
    use dcr_sim::probe::{ProbeSpec, SinkSpec};

    fn batch_params(class: u32) -> AlignedParams {
        AlignedParams::new(1, 2, class)
    }

    fn run_batch(n: u32, class: u32, seed: u64, cfg: EngineConfig) -> SimReport {
        let w = 1u64 << class;
        let mut e = Engine::new(cfg, seed);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, w),
                Box::new(AlignedProtocol::new(batch_params(class))),
            );
        }
        e.run()
    }

    #[test]
    fn single_member_class_delivers() {
        let mut hits = 0;
        for seed in 0..30u64 {
            let r = run_batch(1, 7, seed, EngineConfig::aligned().cohort());
            if r.outcome(0).is_success() {
                hits += 1;
            }
        }
        assert!(hits >= 29, "{hits}/30");
    }

    #[test]
    fn aggregate_success_law_matches_exact() {
        // 24 jobs, class 10 (window 1024): compare delivered counts between
        // the exact and aggregate paths over 30 seeds each. The RNG domains
        // differ, so the check is statistical: mean success proportions
        // within 5 combined standard errors.
        let (n, class, trials) = (24u32, 10u32, 30u64);
        let mean = |cfg: fn() -> EngineConfig| -> f64 {
            let mut total = 0u64;
            for seed in 0..trials {
                total += run_batch(n, class, 1000 + seed, cfg()).successes() as u64;
            }
            total as f64 / (trials * u64::from(n)) as f64
        };
        let exact = mean(EngineConfig::aligned);
        let agg = mean(|| EngineConfig::aligned().cohort());
        let m = (trials * u64::from(n)) as f64;
        let se = |p: f64| (p * (1.0 - p) / m).sqrt();
        let tol = 5.0 * (se(exact) + se(agg)).max(0.02);
        assert!(
            (exact - agg).abs() < tol,
            "exact {exact} vs aggregate {agg} (tol {tol})"
        );
    }

    #[test]
    fn aggregate_engages_and_reports_estimate() {
        // Under cohort fidelity the class driver (not per-job protocols)
        // must produce the SizeEstimate event, stamped with no job id and
        // enriched with the true class size by the engine.
        let w = 1u64 << 9;
        let mut e = Engine::new(
            EngineConfig::aligned()
                .cohort()
                .with_probe(ProbeSpec::new().with(SinkSpec::Events)),
            7,
        );
        for i in 0..8u32 {
            e.add_job(
                JobSpec::new(i, 0, w),
                Box::new(AlignedProtocol::new(batch_params(9))),
            );
        }
        let r = e.run();
        let probes = r.probes.as_ref().expect("probe report");
        let events = probes.events().expect("event log");
        let est = events
            .iter()
            .find(|rec| matches!(rec.event, ProbeEvent::SizeEstimate { .. }))
            .expect("aggregate path must emit SizeEstimate");
        assert!(est.job.is_none(), "class events carry no job id");
        let ProbeEvent::SizeEstimate { class, n_true, .. } = est.event else {
            unreachable!()
        };
        assert_eq!(class, 9);
        assert_eq!(n_true, 8, "engine enriches ground truth");
    }

    #[test]
    fn estimation_ping_win_does_not_deliver() {
        // Drive the core directly: 3 members, all-silent channel except a
        // lone estimation win, which must leave the live count untouched.
        let p = AlignedParams::new(1, 2, 4);
        let mut c = AlignedCohort::new(p, 4, 0, 0xC0FFEE);
        for i in 0..3 {
            ClassDriver::admit(&mut c, i);
        }
        let mut vt = 0u64;
        let mut saw_ping_win = false;
        while vt < p.est_len(4) {
            let slot = c.begin_vt(vt);
            let fb = match slot.count {
                1 => {
                    let (src, payload) = c.materialize_vt(vt);
                    assert!(!payload.is_data(), "estimation transmits control");
                    saw_ping_win = true;
                    Feedback::Success { src, payload }
                }
                0 => Feedback::Silent,
                _ => Feedback::Noise,
            };
            c.end_vt(vt, &fb);
            assert_eq!(c.live_members(), 3, "pings never deliver");
            vt += 1;
        }
        assert!(c.estimate().is_some(), "estimation must conclude");
        // With 3 members at p = 1/2 over 16 steps a lone ping is near-certain.
        assert!(saw_ping_win, "expected at least one lone ping");
    }

    #[test]
    fn jammed_broadcast_winner_leaves_subphase_pool() {
        // Jam every broadcast lone win and check each named member leaves
        // the anonymous winner pool while the live count stays intact.
        // Class 5, λ=1: estimation ends at step 25, leaving slots 25..32 of
        // the window as broadcast steps. Sweep seeds until a run produces a
        // positive estimate and at least one lone win.
        let p = AlignedParams::new(1, 2, 5);
        let mut jammed_wins = 0u32;
        for seed in 0..64u64 {
            let mut c = AlignedCohort::new(p, 5, 0, seed);
            for i in 0..4 {
                ClassDriver::admit(&mut c, i);
            }
            for vt in 0..32u64 {
                if c.live_members() == 0 {
                    break;
                }
                let slot = c.begin_vt(vt);
                let before_anon = c.anon;
                let fb = match slot.count {
                    0 => Feedback::Silent,
                    1 => {
                        let (src, payload) = c.materialize_vt(vt);
                        if payload.is_data() {
                            jammed_wins += 1;
                            Feedback::Noise // jammer strikes the lone data tx
                        } else {
                            Feedback::Success { src, payload }
                        }
                    }
                    _ => Feedback::Noise,
                };
                let was_data_win = slot.count == 1 && matches!(fb, Feedback::Noise);
                c.end_vt(vt, &fb);
                if was_data_win {
                    assert_eq!(c.live_members(), 4, "jammed wins never deliver");
                    assert!(
                        c.anon < before_anon,
                        "jammed winner must leave the anonymous pool"
                    );
                }
            }
            if jammed_wins > 0 {
                break;
            }
        }
        assert!(jammed_wins > 0, "expected at least one jammed lone win");
    }

    #[test]
    fn tag_commits_to_params() {
        let a = aligned_class_tag(&AlignedParams::new(1, 2, 4));
        let b = aligned_class_tag(&AlignedParams::new(2, 2, 4));
        let c = aligned_class_tag(&AlignedParams::new(1, 4, 4));
        let d = aligned_class_tag(&AlignedParams::new(1, 2, 5));
        let set: std::collections::HashSet<u64> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
