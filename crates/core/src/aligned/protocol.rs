//! The per-job ALIGNED protocol.
//!
//! [`AlignedJob`] is the reusable state machine: it consumes a stream of
//! *virtual* slots (plain aligned slots in Section 3; one aligned slot per
//! round inside PUNCTUAL) and decides when to transmit estimation pings and
//! data. [`AlignedProtocol`] adapts it to the [`dcr_sim::engine::Protocol`]
//! trait for the pure aligned setting.

use crate::aligned::cohort::{aligned_class_tag, AlignedCohort};
use crate::aligned::estimator::Estimation;
use crate::aligned::params::AlignedParams;
use crate::aligned::tracker::{ActiveStep, StepKind, Tracker};
use crate::aligned::CTRL_ESTIMATE;
use dcr_sim::classes::{ClassCtx, ClassDriver};
use dcr_sim::engine::{Action, CohortTx, JobCtx, Protocol};
use dcr_sim::job::JobId;
use dcr_sim::message::{ControlMsg, Payload};
use dcr_sim::probe::{EventBuf, ProbeEvent};
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};

/// What an aligned job wants to do with the current virtual slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignedAction {
    /// Listen (an estimation step, where the feedback feeds the replicated
    /// estimator, or chose not to transmit in one of its own).
    Idle,
    /// Transmit an estimation ping.
    Control,
    /// Transmit the data message.
    Data,
    /// Nothing to transmit and nothing to hear: a broadcast step (its
    /// feedback never enters the replicated state) or an idle slot. The
    /// tracker has already been advanced past the slot, so the caller may
    /// skip [`AlignedJob::observe`] and keep the radio off — and may park
    /// the job until [`AlignedJob::next_wake_vt`].
    Doze,
}

/// The ALIGNED state machine for one job, in virtual time.
#[derive(Debug, Clone)]
pub struct AlignedJob {
    params: AlignedParams,
    id: JobId,
    class: u32,
    window_start: u64,
    tracker: Tracker,
    /// Subphase bookkeeping: the broadcast subphase (identified by its
    /// global start step) we last drew a slot for, and the drawn offset.
    drawn_subphase: Option<u64>,
    drawn_offset: u64,
    /// The virtual slot the next `decide` is expected for; a jump past it
    /// (a parked stretch of `Doze` slots) is replayed via
    /// [`Tracker::fast_forward`].
    next_vt: u64,
    succeeded: bool,
    gave_up: bool,
    /// Probability with which the job intended to transmit this slot
    /// (diagnostic, feeds the engine's contention trace).
    last_prob: f64,
    /// Probe event buffer (disarmed unless the engine asks for events).
    probe: EventBuf,
    /// The estimate has been published as a `SizeEstimate` event.
    reported_estimate: bool,
    /// The class currently noted as having preempted ours (debounces
    /// `Preemption` events to one per takeover).
    preempted_by: Option<u32>,
}

impl AlignedJob {
    /// Create the state machine for a job whose (virtual) window is
    /// `[window_start, window_start + 2^class)`, aligned.
    pub fn new(params: AlignedParams, id: JobId, class: u32, window_start: u64) -> Self {
        assert!(
            class >= params.min_class,
            "job class {class} below protocol min_class {}",
            params.min_class
        );
        let tracker = Tracker::new(params, class, window_start);
        Self {
            params,
            id,
            class,
            window_start,
            tracker,
            drawn_subphase: None,
            drawn_offset: 0,
            next_vt: window_start,
            succeeded: false,
            gave_up: false,
            last_prob: 0.0,
            probe: EventBuf::default(),
            reported_estimate: false,
            preempted_by: None,
        }
    }

    /// Arm the probe buffer: the job will emit `PhaseEnter`, `SizeEstimate`
    /// and `Preemption` events from the slots it attends. Call at
    /// activation, before the first `decide`.
    pub fn arm_probe(&mut self) {
        self.probe.arm();
        self.probe.phase("estimation");
    }

    /// Move buffered probe events into `out` (engine drain path; also used
    /// by PUNCTUAL to forward its embedded follower's events).
    pub fn drain_probe(&mut self, out: &mut Vec<ProbeEvent>) {
        self.probe.drain_into(out);
    }

    /// Hand the internal buffer to an absorbing parent buffer.
    pub(crate) fn probe_mut(&mut self) -> &mut EventBuf {
        &mut self.probe
    }

    /// Publish the size estimate the first time it becomes available.
    /// The estimate flips in an *attended* estimation slot (estimation
    /// steps are never dozed or skipped), so the emission slot is
    /// identical across scheduling modes.
    fn maybe_report_estimate(&mut self) {
        if !self.probe.enabled() || self.reported_estimate {
            return;
        }
        if let Some(n_est) = self.tracker.estimate_of(self.class) {
            self.reported_estimate = true;
            self.probe.push(ProbeEvent::SizeEstimate {
                class: self.class,
                n_est,
                n_true: 0, // ground truth enriched by the engine
            });
            self.probe.phase("broadcast");
        }
    }

    /// This job's class `ℓ`.
    pub fn class(&self) -> u32 {
        self.class
    }

    /// The protocol parameters this job runs with.
    pub fn params(&self) -> &AlignedParams {
        &self.params
    }

    /// True once the data message got through.
    pub fn succeeded(&self) -> bool {
        self.succeeded
    }

    /// True if the class's schedule completed (or was cut) without this
    /// job succeeding — the paper's "give up and yield" outcome.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// True when the job will take no further action.
    pub fn finished(&self) -> bool {
        self.succeeded || self.gave_up
    }

    /// The tracker's public estimate for this job's class, once available.
    pub fn estimate(&self) -> Option<u64> {
        self.tracker.estimate_of(self.class)
    }

    /// Intended transmission probability of the last decided slot.
    pub fn last_prob(&self) -> f64 {
        self.last_prob
    }

    /// Decide the action for virtual slot `vt`. Call once per virtual
    /// slot, in order, starting at `window_start` — except that slots
    /// answered with [`AlignedAction::Doze`] may be skipped wholesale:
    /// a jump forward replays the gap through the tracker in bulk. Follow
    /// with [`AlignedJob::observe`] for the same slot unless the answer
    /// was `Doze` (then `observe` is a harmless no-op on the tracker).
    pub fn decide(&mut self, vt: u64, rng: &mut dyn RngCore) -> AlignedAction {
        self.last_prob = 0.0;
        if vt >= self.window_start + (1u64 << self.class) {
            // Window over: truncated.
            if !self.succeeded {
                self.gave_up = true;
            }
            return AlignedAction::Idle;
        }
        if vt > self.next_vt {
            // Parked through a dozable stretch: replay it in bulk.
            self.tracker.fast_forward(self.next_vt, vt);
        }
        self.next_vt = vt + 1;
        let step = self.tracker.begin_slot(vt);
        let Some(ActiveStep {
            class,
            window_start,
            kind,
        }) = step
        else {
            // No tracked class owns the slot: nothing to hear or advance.
            return self.doze(vt);
        };
        if let StepKind::Estimation { phase, .. } = kind {
            // Estimation feedback (anyone's) feeds the replicated
            // estimator: the slot must be heard.
            if class == self.class && window_start == self.window_start && !self.finished() {
                self.preempted_by = None;
                let p = Estimation::tx_probability(phase);
                self.last_prob = p;
                if rng.gen_bool(p) {
                    return AlignedAction::Control;
                }
            } else if self.probe.enabled() {
                self.note_preemption(class);
            }
            return AlignedAction::Idle;
        }
        if class == self.class && window_start == self.window_start && !self.finished() {
            self.preempted_by = None;
            let StepKind::Broadcast(pos) = kind else {
                unreachable!("estimation handled above")
            };
            // New subphase? Draw this job's slot for it.
            let subphase_start_step = self.tracker.steps_of(self.class) - pos.offset;
            if self.drawn_subphase != Some(subphase_start_step) {
                self.drawn_subphase = Some(subphase_start_step);
                self.drawn_offset = rng.gen_range(0..pos.len);
            }
            self.last_prob = 1.0 / pos.len as f64;
            if pos.offset == self.drawn_offset {
                return AlignedAction::Data;
            }
        }
        // A broadcast step with nothing of ours in it (or another class's):
        // its feedback never enters the replicated state, so consume it
        // now and keep the radio off.
        self.doze(vt)
    }

    /// Emit one `Preemption` event when a *different* class's estimation
    /// run interrupts our in-progress broadcast (the pecking order: smaller
    /// classes take over at their window boundaries). Only called from
    /// attended (non-`Doze`) paths, so the emission slot is identical
    /// across scheduling modes.
    fn note_preemption(&mut self, by_class: u32) {
        let ours_underway = self.tracker.steps_of(self.class) > 0
            && !self.tracker.is_complete(self.class)
            && !self.finished();
        if ours_underway && by_class != self.class && self.preempted_by != Some(by_class) {
            self.preempted_by = Some(by_class);
            self.probe.push(ProbeEvent::Preemption {
                class: self.class,
                by_class,
            });
        }
    }

    /// Advance the tracker past a slot whose feedback is irrelevant
    /// (non-estimation `end_slot` ignores it) and report `Doze`. Give-up
    /// is detected here for completion steps the job dozes through, at the
    /// same slot `observe` would have caught it.
    fn doze(&mut self, vt: u64) -> AlignedAction {
        self.tracker.end_slot(vt, &Feedback::Silent);
        if !self.succeeded && self.tracker.is_complete(self.class) {
            self.gave_up = true;
        }
        AlignedAction::Doze
    }

    /// Feed back the channel observation for virtual slot `vt`.
    pub fn observe(&mut self, vt: u64, fb: &Feedback) {
        self.tracker.end_slot(vt, fb);
        if let Feedback::Success { src, payload } = fb {
            if *src == self.id && payload.is_data() {
                self.succeeded = true;
            }
        }
        // If my class's algorithm is finished and my message never got
        // through (estimation concluded "empty class", or the schedule ran
        // out), I give up — control returns to larger classes.
        if !self.succeeded && self.tracker.is_complete(self.class) {
            self.gave_up = true;
        }
        self.maybe_report_estimate();
    }

    /// The next virtual slot (strictly after `now`, the last decided slot)
    /// at which this job must act or listen; every slot in between would
    /// be answered with [`AlignedAction::Doze`]. `u64::MAX` once finished.
    pub fn next_wake_vt(&self, now: u64) -> u64 {
        if self.finished() {
            return u64::MAX;
        }
        self.tracker.next_wake_hint(
            now,
            self.class,
            self.window_start,
            self.drawn_subphase,
            self.drawn_offset,
        )
    }

    /// The control ping transmitted during estimation steps.
    pub fn control_payload(&self) -> Payload {
        Payload::Control(ControlMsg {
            kind: CTRL_ESTIMATE,
            a: u64::from(self.class),
            b: 0,
            c: 0,
        })
    }

    /// The data payload.
    pub fn data_payload(&self) -> Payload {
        Payload::Data(self.id)
    }
}

/// [`dcr_sim::engine::Protocol`] adapter for the pure aligned setting
/// (Section 3): virtual time is the engine's aligned clock.
#[derive(Debug)]
pub struct AlignedProtocol {
    params: AlignedParams,
    job: Option<AlignedJob>,
}

impl AlignedProtocol {
    /// Build the protocol; the job state is created at activation, when the
    /// window (which must be power-of-2-aligned) becomes known.
    pub fn new(params: AlignedParams) -> Self {
        Self { params, job: None }
    }

    /// Factory closure for [`dcr_sim::engine::Engine::add_jobs`].
    pub fn factory(
        params: AlignedParams,
    ) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(AlignedProtocol::new(params))
    }

    /// Access the inner state machine (for tests/diagnostics).
    pub fn job(&self) -> Option<&AlignedJob> {
        self.job.as_ref()
    }
}

impl Protocol for AlignedProtocol {
    fn on_activate(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) {
        let now = ctx.aligned_now();
        assert!(
            ctx.window.is_power_of_two() && now.is_multiple_of(ctx.window),
            "AlignedProtocol requires power-of-2-aligned windows"
        );
        let class = ctx.window.trailing_zeros();
        let mut job = AlignedJob::new(self.params, ctx.id, class, now);
        if ctx.probed {
            job.arm_probe();
        }
        self.job = Some(job);
    }

    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        if let Some(job) = self.job.as_mut() {
            job.drain_probe(out);
        }
    }

    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        let job = self.job.as_mut().expect("activated");
        match job.decide(ctx.aligned_now(), rng) {
            AlignedAction::Idle => Action::Listen,
            AlignedAction::Control => Action::Transmit(job.control_payload()),
            AlignedAction::Data => Action::Transmit(job.data_payload()),
            // The tracker already consumed the slot; nothing to hear.
            AlignedAction::Doze => Action::Sleep,
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
        let job = self.job.as_mut().expect("activated");
        job.observe(ctx.aligned_now(), fb);
    }

    fn cohort_tx(&self, ctx: &JobCtx) -> Option<CohortTx> {
        // Aggregate only where the per-job path would be legal anyway: the
        // aligned clock is exposed and the window is power-of-2-aligned.
        // Returning `None` keeps the job on the exact path (whose
        // `on_activate` then reports any misconfiguration as usual).
        let now = ctx.aligned_time?;
        if !ctx.window.is_power_of_two() || !now.is_multiple_of(ctx.window) {
            return None;
        }
        if ctx.window.trailing_zeros() < self.params.min_class {
            return None;
        }
        Some(CohortTx::Class {
            tag: aligned_class_tag(&self.params),
        })
    }

    fn class_driver(&self, ctx: &JobCtx, cctx: &ClassCtx) -> Option<Box<dyn ClassDriver>> {
        // `cohort_tx` already vetted alignment; the class window starts at
        // the shared release slot.
        let class = cctx.window.trailing_zeros();
        let mut driver = AlignedCohort::new(self.params, class, cctx.release, cctx.class_seed);
        if ctx.probed {
            driver.arm_probe();
        }
        Some(Box::new(driver))
    }

    fn is_done(&self) -> bool {
        self.job.as_ref().is_some_and(|j| j.finished())
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        self.job.as_ref().map(|j| j.last_prob())
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        let job = self.job.as_ref()?;
        let now = ctx.aligned_now();
        let wake_vt = job.next_wake_vt(now);
        if wake_vt == u64::MAX {
            return Some(u64::MAX);
        }
        // Virtual time advances in lockstep with local time here.
        Some(ctx.local_time + (wake_vt - now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::count_trials;

    /// Single-class parameters: `min_class == class`, so no slots are spent
    /// estimating empty smaller classes. (Multi-class configurations need
    /// `λ·Σ_{ℓ≥min} ℓ²/2^ℓ < 1` — see `AlignedParams::overhead_fraction`.)
    fn batch_params(class: u32) -> AlignedParams {
        AlignedParams::new(1, 2, class)
    }

    fn run_batch(n: u32, class: u32, seed: u64) -> dcr_sim::metrics::SimReport {
        let w = 1u64 << class;
        let mut e = Engine::new(EngineConfig::aligned(), seed);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, w),
                Box::new(AlignedProtocol::new(batch_params(class))),
            );
        }
        e.run()
    }

    #[test]
    fn single_job_succeeds() {
        // One job, window 2^7 = 128. Estimation costs λℓ² = 49 steps, the
        // broadcast ~55 more: the job must deliver in essentially every run.
        let (hits, total) = count_trials(50, 1234, |_, seed| {
            run_batch(1, 7, seed).outcome(0).is_success()
        });
        assert!(hits >= total - 1, "{hits}/{total}");
    }

    #[test]
    fn small_batch_all_succeed() {
        // 4 jobs in a window of 2^9: plenty of slack.
        let (hits, total) = count_trials(30, 99, |_, seed| {
            let r = run_batch(4, 9, seed);
            r.successes() == 4
        });
        assert!(hits >= total - 1, "{hits}/{total}");
    }

    #[test]
    fn overloaded_window_gives_up_cleanly() {
        // 64 jobs in a window of 64 slots: impossible (estimation alone
        // eats most of the window). Jobs must give up without panicking,
        // and the engine must terminate at the horizon.
        let r = run_batch(64, 6, 5);
        assert!(r.successes() < 64);
        assert_eq!(r.slots_run, 64);
    }

    #[test]
    fn two_classes_pecking_order() {
        // One job in each class-8 window of [0, 1024), plus one job owning
        // the whole [0, 4096) window. min_class = 8 keeps the deterministic
        // estimation overhead (Σ_{ℓ≥8} ℓ²/2^ℓ ≈ 0.64) inside the budget, so
        // everyone should usually finish.
        let p = AlignedParams::new(1, 2, 8);
        let (hits, total) = count_trials(20, 777, |_, seed| {
            let mut e = Engine::new(EngineConfig::aligned(), seed);
            for i in 0..4u32 {
                e.add_job(
                    JobSpec::new(i, u64::from(i) * 256, u64::from(i + 1) * 256),
                    Box::new(AlignedProtocol::new(p)),
                );
            }
            e.add_job(
                JobSpec::new(4, 0, 1 << 12),
                Box::new(AlignedProtocol::new(p)),
            );
            let r = e.run();
            r.successes() == 5
        });
        assert!(hits as f64 / total as f64 > 0.8, "{hits}/{total}");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_window_rejected() {
        let mut e = Engine::new(EngineConfig::aligned(), 1);
        e.add_job(
            JobSpec::new(0, 4, 12),
            Box::new(AlignedProtocol::new(batch_params(2))),
        );
        let _ = e.run();
    }

    #[test]
    fn estimate_visible_after_estimation() {
        // Drive the state machine directly: 3 jobs of class 4 at vt 0,
        // min_class = 4 so every slot belongs to the jobs' own class.
        let p = AlignedParams::new(1, 2, 4);
        let mut jobs: Vec<AlignedJob> = (0..3).map(|i| AlignedJob::new(p, i, 4, 0)).collect();
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9e3779b97f4a7c15);
        for vt in 0..p.est_len(4) {
            let acts: Vec<AlignedAction> =
                jobs.iter_mut().map(|j| j.decide(vt, &mut rng)).collect();
            let tx: Vec<usize> = acts
                .iter()
                .enumerate()
                .filter(|(_, a)| **a != AlignedAction::Idle)
                .map(|(i, _)| i)
                .collect();
            let fb = match tx.len() {
                0 => Feedback::Silent,
                1 => Feedback::Success {
                    src: tx[0] as u32,
                    payload: jobs[tx[0]].control_payload(),
                },
                _ => Feedback::Noise,
            };
            for j in jobs.iter_mut() {
                j.observe(vt, &fb);
            }
        }
        let est = jobs[0].estimate().unwrap();
        for j in &jobs {
            assert_eq!(j.estimate(), Some(est), "all jobs share the estimate");
        }
    }
}
