//! The size-estimation protocol (Section 3, "Size-estimation protocol";
//! Lemmas 8–10).
//!
//! For job class `ℓ` the protocol runs `ℓ` phases of `λℓ` steps. In phase
//! `i ∈ {1, …, ℓ}` every job in the class transmits a control ping with
//! probability `1/2^i`; everyone counts the successful transmissions per
//! phase. The estimate is `n_ℓ = τ · 2^j` where `j` is the phase with the
//! most successes — an intentional *over*-estimate (Lemma 8: w.h.p.
//! `2n̂ ≤ n_ℓ ≤ τ²n̂`).
//!
//! The counting side lives here; it is replicated inside every job's
//! [`crate::aligned::tracker::Tracker`] because the estimate determines how
//! long every class's schedule is (Lemma 6).

use serde::{Deserialize, Serialize};

/// Per-phase success counts for one class's estimation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Estimation {
    /// `counts[i]` = successes observed during phase `i + 1`.
    counts: Vec<u64>,
}

impl Estimation {
    /// Fresh estimation state for class `ℓ` (`ℓ` phases).
    pub fn new(class: u32) -> Self {
        Self {
            counts: vec![0; class as usize],
        }
    }

    /// Record the outcome of one estimation step in `phase` (1-based).
    pub fn record(&mut self, phase: u32, success: bool) {
        assert!(phase >= 1 && phase as usize <= self.counts.len());
        if success {
            self.counts[phase as usize - 1] += 1;
        }
    }

    /// Success count of `phase` (1-based).
    pub fn count(&self, phase: u32) -> u64 {
        self.counts[phase as usize - 1]
    }

    /// The winning phase `j` (1-based; ties broken toward the smaller
    /// phase), or `None` if no phase saw a single success — the "class
    /// looks empty" outcome.
    pub fn argmax_phase(&self) -> Option<u32> {
        let (best_idx, &best) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        (best > 0).then_some(best_idx as u32 + 1)
    }

    /// The resulting estimate `n_ℓ = τ·2^j`, or `0` when the class looks
    /// empty (no successes at all). A zero estimate makes the class skip
    /// its broadcast component entirely; the paper only defines the zero
    /// estimate for truncation, and an all-silent estimation is the same
    /// evidence situation (nested classes must not pay `Θ(λτ)` slots for
    /// every empty class in every window, or Lemma 12's accounting breaks).
    pub fn estimate(&self, tau: u64) -> u64 {
        match self.argmax_phase() {
            None => 0,
            Some(j) => tau << j,
        }
    }

    /// The per-step transmission probability a class member uses in
    /// `phase` (1-based): `1/2^phase`.
    pub fn tx_probability(phase: u32) -> f64 {
        0.5f64.powi(phase as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_class_estimates_zero() {
        let e = Estimation::new(5);
        assert_eq!(e.argmax_phase(), None);
        assert_eq!(e.estimate(8), 0);
    }

    #[test]
    fn argmax_and_estimate() {
        let mut e = Estimation::new(4);
        e.record(1, true);
        e.record(3, true);
        e.record(3, true);
        assert_eq!(e.argmax_phase(), Some(3));
        assert_eq!(e.estimate(8), 8 << 3);
    }

    #[test]
    fn ties_break_toward_smaller_phase() {
        let mut e = Estimation::new(4);
        e.record(2, true);
        e.record(4, true);
        assert_eq!(e.argmax_phase(), Some(2));
    }

    #[test]
    fn failures_do_not_count() {
        let mut e = Estimation::new(3);
        e.record(2, false);
        assert_eq!(e.count(2), 0);
        assert_eq!(e.estimate(8), 0);
    }

    #[test]
    fn tx_probability_halves_per_phase() {
        assert_eq!(Estimation::tx_probability(1), 0.5);
        assert_eq!(Estimation::tx_probability(2), 0.25);
        assert_eq!(Estimation::tx_probability(10), 1.0 / 1024.0);
    }

    #[test]
    #[should_panic]
    fn phase_out_of_range_panics() {
        let mut e = Estimation::new(2);
        e.record(3, true);
    }
}
