//! ALIGNED protocol parameters and the active-step arithmetic of Lemma 6.

use serde::{Deserialize, Serialize};

/// Tunable constants of the ALIGNED protocol.
///
/// The paper uses one symbol `λ` for every constant that trades running
/// time against failure probability, and fixes `τ = 64` in the proof of
/// Lemma 8 while noting that "we do not attempt to optimize the constants".
/// Both presets keep every structural property of the algorithm; they only
/// move the window sizes at which the asymptotics become visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignedParams {
    /// The repetition/length parameter `λ` (phases per estimation step
    /// count, subphases per broadcast phase).
    pub lambda: u64,
    /// The estimate inflation factor `τ` (a power of two `≥ 2`). The
    /// estimate is `τ·2^j`, biased upward so the broadcast schedule is
    /// long enough w.h.p.
    pub tau: u64,
    /// The smallest job class in the system, `ℓ_min = ⌈log2 w_min⌉`.
    /// γ-slack feasibility forces `w_min ≥ 1/γ`, so this encodes γ.
    pub min_class: u32,
}

impl AlignedParams {
    /// Laptop-scale defaults: small constants so that the polynomial decay
    /// regimes are observable at windows of `2^6 … 2^14` slots.
    pub fn new(lambda: u64, tau: u64, min_class: u32) -> Self {
        let p = Self {
            lambda,
            tau,
            min_class,
        };
        p.validate();
        p
    }

    /// Constants exactly as in the paper's proofs (`τ = 64`); needs very
    /// large windows before the high-probability bounds engage.
    pub fn paper() -> Self {
        Self::new(4, 64, 2)
    }

    fn validate(&self) {
        assert!(self.lambda >= 1, "lambda must be >= 1");
        assert!(
            self.tau >= 2 && self.tau.is_power_of_two(),
            "tau must be a power of two >= 2"
        );
        assert!(self.min_class >= 1, "min_class must be >= 1 (windows >= 2)");
    }

    /// Steps in one estimation phase for class `ℓ`: `λℓ`.
    #[inline]
    pub fn est_phase_len(&self, class: u32) -> u64 {
        self.lambda * u64::from(class)
    }

    /// Total estimation steps `T_ℓ = λℓ²`.
    #[inline]
    pub fn est_len(&self, class: u32) -> u64 {
        self.lambda * u64::from(class) * u64::from(class)
    }

    /// Total broadcast steps for class `ℓ` given estimate `n_ℓ`
    /// (`0` means "estimation saw an empty class; skip broadcast"):
    /// `λ(2n_ℓ − 2) + λℓ²`.
    #[inline]
    pub fn broadcast_len(&self, class: u32, estimate: u64) -> u64 {
        if estimate == 0 {
            return 0;
        }
        debug_assert!(estimate.is_power_of_two());
        self.lambda * (2 * estimate - 2) + self.lambda * u64::from(class) * u64::from(class)
    }

    /// Lemma 6: total active steps for a class = estimation + broadcast
    /// `= 2λ(ℓ² + n_ℓ − 1)` when `n_ℓ ≥ 1`.
    #[inline]
    pub fn total_active(&self, class: u32, estimate: u64) -> u64 {
        self.est_len(class) + self.broadcast_len(class, estimate)
    }

    /// The fraction of any large window that is consumed by estimation
    /// runs alone (jobs or no jobs): `λ · Σ_{ℓ ≥ min_class} ℓ²/2^ℓ`.
    ///
    /// This is the deterministic "summation term" of Lemma 12; the paper's
    /// "there exists a small enough γ" is exactly the requirement that this
    /// fraction (plus the estimate-driven term) stays below 1. Experiments
    /// and multi-class instances must choose `min_class` (equivalently γ)
    /// so this is comfortably under 1/2 — the helper makes the constraint
    /// checkable instead of folklore.
    pub fn overhead_fraction(&self) -> f64 {
        let mut total = 0.0;
        for l in self.min_class..self.min_class + 64 {
            let term = (l as f64) * (l as f64) / 2f64.powi(l as i32);
            total += term;
            if term < 1e-12 {
                break;
            }
        }
        self.lambda as f64 * total
    }
}

impl Default for AlignedParams {
    fn default() -> Self {
        Self::new(2, 8, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma6_formula() {
        // total_active must equal the paper's closed form 2λ(ℓ² + n − 1).
        for &lambda in &[1u64, 2, 4] {
            let p = AlignedParams::new(lambda, 8, 1);
            for class in 1..=16u32 {
                for exp in 0..=10u32 {
                    let n = 1u64 << exp;
                    let expect = 2 * lambda * (u64::from(class) * u64::from(class) + n - 1);
                    assert_eq!(
                        p.total_active(class, n),
                        expect,
                        "λ={lambda} ℓ={class} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_estimate_skips_broadcast() {
        let p = AlignedParams::default();
        assert_eq!(p.broadcast_len(5, 0), 0);
        assert_eq!(p.total_active(5, 0), p.est_len(5));
    }

    #[test]
    fn estimation_structure() {
        let p = AlignedParams::new(3, 8, 1);
        assert_eq!(p.est_phase_len(4), 12);
        assert_eq!(p.est_len(4), 48); // 4 phases × 12
    }

    #[test]
    fn paper_preset() {
        let p = AlignedParams::paper();
        assert_eq!(p.tau, 64);
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn tau_must_be_power_of_two() {
        let _ = AlignedParams::new(2, 6, 1);
    }

    #[test]
    #[should_panic(expected = "min_class")]
    fn min_class_zero_rejected() {
        let _ = AlignedParams::new(2, 8, 0);
    }
}
