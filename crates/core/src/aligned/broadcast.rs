//! The broadcast ("backon") schedule layout (Section 3, "Broadcast";
//! Lemma 13).
//!
//! Given class `ℓ` and estimate `n_ℓ`, the broadcast component consists of
//! phases numbered `0, 1, …, log2(n_ℓ) + ℓ − 1`:
//!
//! * for `i < log2(n_ℓ)` the phase length is `λ·n_ℓ/2^i` (the *decreasing*
//!   phases);
//! * the final `ℓ` phases each have length `λℓ` (the *equalizer* phases
//!   that convert the tail into a high-probability bound).
//!
//! A phase of length `λX` is split into `λ` **subphases** of length `X`;
//! each still-live job transmits its data message in one uniformly random
//! slot of every subphase until it succeeds.
//!
//! [`BroadcastLayout`] precomputes the subphase table so that mapping an
//! active-step index to (subphase, offset, length) is a binary search.

use crate::aligned::params::AlignedParams;
use serde::{Deserialize, Serialize};

/// One subphase of the broadcast schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subphase {
    /// First broadcast-step index of this subphase.
    pub start: u64,
    /// Length `X` of the subphase (a job picks one slot in `[0, X)`).
    pub len: u64,
}

/// Position of a broadcast step inside its subphase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubphasePos {
    /// Index of the subphase in the layout.
    pub subphase: usize,
    /// Offset of this step inside the subphase (`0 ≤ offset < len`).
    pub offset: u64,
    /// Subphase length `X`.
    pub len: u64,
}

/// The fully expanded subphase table for one `(class, estimate)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastLayout {
    subphases: Vec<Subphase>,
    total: u64,
}

impl BroadcastLayout {
    /// Build the layout. `estimate` must be a power of two (`τ·2^j` always
    /// is) or zero, in which case the layout is empty.
    pub fn new(params: &AlignedParams, class: u32, estimate: u64) -> Self {
        if estimate == 0 {
            return Self {
                subphases: Vec::new(),
                total: 0,
            };
        }
        assert!(estimate.is_power_of_two());
        let mut subphases = Vec::new();
        let mut cursor = 0u64;
        let mut push_phase = |x: u64, cursor: &mut u64| {
            for _ in 0..params.lambda {
                subphases.push(Subphase {
                    start: *cursor,
                    len: x,
                });
                *cursor += x;
            }
        };
        // Decreasing phases: X = n, n/2, …, 2.
        let mut x = estimate;
        while x >= 2 {
            push_phase(x, &mut cursor);
            x /= 2;
        }
        // Equalizer phases: ℓ phases of X = ℓ.
        for _ in 0..class {
            push_phase(u64::from(class), &mut cursor);
        }
        let total = cursor;
        debug_assert_eq!(total, params.broadcast_len(class, estimate));
        Self { subphases, total }
    }

    /// Total broadcast steps.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of subphases.
    pub fn subphase_count(&self) -> usize {
        self.subphases.len()
    }

    /// The subphases, in order.
    pub fn subphases(&self) -> &[Subphase] {
        &self.subphases
    }

    /// Locate broadcast step `step ∈ [0, total)`.
    pub fn position(&self, step: u64) -> SubphasePos {
        assert!(step < self.total, "step {step} out of {}", self.total);
        // Binary search for the last subphase with start <= step.
        let idx = match self.subphases.binary_search_by_key(&step, |s| s.start) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let sp = self.subphases[idx];
        SubphasePos {
            subphase: idx,
            offset: step - sp.start,
            len: sp.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(lambda: u64) -> AlignedParams {
        AlignedParams::new(lambda, 8, 1)
    }

    #[test]
    fn total_matches_lemma6_component() {
        for &lambda in &[1, 2, 3] {
            let p = params(lambda);
            for class in 1..8u32 {
                for exp in 0..8u32 {
                    let n = 1u64 << exp;
                    let l = BroadcastLayout::new(&p, class, n);
                    assert_eq!(l.total(), p.broadcast_len(class, n));
                }
            }
        }
    }

    #[test]
    fn subphase_structure_for_small_case() {
        // λ=2, ℓ=2, n=4: decreasing phases X=4, X=2 (2 subphases each),
        // then 2 equalizer phases of X=2 (2 subphases each).
        let l = BroadcastLayout::new(&params(2), 2, 4);
        let lens: Vec<u64> = l.subphases().iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![4, 4, 2, 2, 2, 2, 2, 2]);
        assert_eq!(l.total(), 8 + 4 + 8);
    }

    #[test]
    fn position_roundtrip() {
        let l = BroadcastLayout::new(&params(2), 3, 8);
        let mut steps_seen = 0u64;
        for (i, sp) in l.subphases().iter().enumerate() {
            for off in 0..sp.len {
                let pos = l.position(sp.start + off);
                assert_eq!(pos.subphase, i);
                assert_eq!(pos.offset, off);
                assert_eq!(pos.len, sp.len);
                steps_seen += 1;
            }
        }
        assert_eq!(steps_seen, l.total());
    }

    #[test]
    fn estimate_one_has_no_decreasing_phases() {
        // n = 1: no X >= 2 decreasing phase; only the ℓ·λ equalizers.
        let l = BroadcastLayout::new(&params(2), 3, 1);
        assert_eq!(l.subphase_count(), 3 * 2);
        assert!(l.subphases().iter().all(|s| s.len == 3));
    }

    #[test]
    fn zero_estimate_empty() {
        let l = BroadcastLayout::new(&params(2), 3, 0);
        assert_eq!(l.total(), 0);
        assert_eq!(l.subphase_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn position_past_end_panics() {
        let l = BroadcastLayout::new(&params(1), 1, 2);
        let _ = l.position(l.total());
    }
}
