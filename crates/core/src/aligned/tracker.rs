//! The replicated pecking-order tracker (Lemma 7).
//!
//! Every live job maintains a [`Tracker`] over the classes at or below its
//! own. The tracker is a *pure function of public information* — slot
//! indices (available under the aligned assumption) and channel feedback —
//! so any two jobs whose trackers start at a common critical time agree on
//! which class owns every slot and on every class's schedule. That is
//! exactly the paper's Lemma 7 invariant, and `proptest` checks it
//! (see `tests/tracker_agreement.rs` in this crate).
//!
//! Per slot the owner class is the **smallest class with unfinished work**;
//! the work for a class within its current window is: `λℓ²` estimation
//! steps, then — once the estimate `n_ℓ` is publicly computable from the
//! observed success counts — `λ(2n_ℓ−2) + λℓ²` broadcast steps (Lemma 6).
//! Window boundaries reset (truncate) a class's state unconditionally.

use crate::aligned::broadcast::{BroadcastLayout, SubphasePos};
use crate::aligned::estimator::Estimation;
use crate::aligned::params::AlignedParams;
use dcr_sim::slot::Feedback;

/// What kind of active step a class is taking in the current slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// An estimation step in `phase` (1-based).
    Estimation {
        /// Phase index, `1..=ℓ`.
        phase: u32,
        /// Step within the phase, `0..λℓ`.
        step_in_phase: u64,
    },
    /// A broadcast step at the given subphase position.
    Broadcast(SubphasePos),
}

/// The active step assignment for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveStep {
    /// The class that owns the slot.
    pub class: u32,
    /// Start of that class's current window (virtual time).
    pub window_start: u64,
    /// What the class does with the slot.
    pub kind: StepKind,
}

/// Per-class replicated state.
#[derive(Debug, Clone)]
struct ClassState {
    class: u32,
    window_start: u64,
    steps: u64,
    /// Estimation-phase split of `steps`, maintained incrementally so the
    /// per-slot hot path (`kind_of`, `end_slot`) never divides:
    /// `steps = phase0 * est_phase_len + step_in_phase` while estimating.
    phase0: u32,
    step_in_phase: u64,
    est: Estimation,
    estimate: Option<u64>,
    layout: Option<BroadcastLayout>,
    complete: bool,
}

impl ClassState {
    fn fresh(class: u32, window_start: u64) -> Self {
        Self {
            class,
            window_start,
            steps: 0,
            phase0: 0,
            step_in_phase: 0,
            est: Estimation::new(class),
            estimate: None,
            layout: None,
            complete: false,
        }
    }
}

/// A deterministic replay of the pecking-order schedule for classes
/// `params.min_class ..= top_class`.
#[derive(Debug, Clone)]
pub struct Tracker {
    params: AlignedParams,
    top_class: u32,
    classes: Vec<ClassState>,
    /// The class selected by the last `begin_slot`, consumed by `end_slot`.
    pending: Option<(u64, usize)>,
    /// Cache: every class below this index is complete. Between window
    /// boundaries completion is monotone, so this only advances; it rewinds
    /// to 0 at each multiple of `2^min_class` (the only slots where any
    /// class can reset).
    first_live: usize,
}

impl Tracker {
    /// Create a tracker starting at virtual time `start`, which must be a
    /// critical time for `top_class` (and therefore for every smaller
    /// class) — i.e. `start % 2^top_class == 0`. In the aligned protocol
    /// this is the job's own release slot.
    pub fn new(params: AlignedParams, top_class: u32, start: u64) -> Self {
        assert!(top_class >= params.min_class, "top_class below min_class");
        assert!(top_class < 63, "class out of range");
        assert_eq!(
            start % (1u64 << top_class),
            0,
            "tracker must start at a critical time for its top class"
        );
        let classes = (params.min_class..=top_class)
            .map(|c| ClassState::fresh(c, start))
            .collect();
        Self {
            params,
            top_class,
            classes,
            pending: None,
            first_live: 0,
        }
    }

    /// The largest tracked class.
    pub fn top_class(&self) -> u32 {
        self.top_class
    }

    /// Begin slot `t`: apply window-boundary resets, then return the active
    /// step among the tracked classes (or `None` if they are all complete —
    /// some larger, untracked class may own the slot).
    ///
    /// Must be followed by [`Tracker::end_slot`] for the same `t`.
    pub fn begin_slot(&mut self, t: u64) -> Option<ActiveStep> {
        assert!(self.pending.is_none(), "begin_slot without end_slot");
        // Window boundaries of every tracked class are multiples of
        // `2^min_class`; on all other slots the reset scan cannot fire and
        // completion below `first_live` still holds.
        if t & ((1u64 << self.params.min_class) - 1) == 0 {
            for cs in &mut self.classes {
                // `w` is a power of two, so the boundary test is a mask —
                // this runs per tracked class and must not divide.
                let mask = (1u64 << cs.class) - 1;
                if t & mask == 0 && cs.window_start != t {
                    // A new window begins: truncate whatever was in flight.
                    *cs = ClassState::fresh(cs.class, t);
                }
            }
            self.first_live = 0;
        }
        while self.first_live < self.classes.len() && self.classes[self.first_live].complete {
            self.first_live += 1;
        }
        if self.first_live == self.classes.len() {
            return None;
        }
        let idx = self.first_live;
        let cs = &self.classes[idx];
        let kind = self.kind_of(cs);
        self.pending = Some((t, idx));
        Some(ActiveStep {
            class: cs.class,
            window_start: cs.window_start,
            kind,
        })
    }

    fn kind_of(&self, cs: &ClassState) -> StepKind {
        let est_len = self.params.est_len(cs.class);
        if cs.steps < est_len {
            StepKind::Estimation {
                phase: cs.phase0 + 1,
                step_in_phase: cs.step_in_phase,
            }
        } else {
            let layout = cs
                .layout
                .as_ref()
                .expect("layout exists once estimation finished");
            StepKind::Broadcast(layout.position(cs.steps - est_len))
        }
    }

    /// Finish slot `t` with the observed channel feedback, advancing the
    /// active class's schedule. A no-op if `begin_slot` returned `None`.
    pub fn end_slot(&mut self, t: u64, fb: &Feedback) {
        let Some((begun, idx)) = self.pending.take() else {
            return;
        };
        assert_eq!(begun, t, "end_slot for a different slot than begin_slot");
        let params = self.params;
        let cs = &mut self.classes[idx];
        let est_len = params.est_len(cs.class);
        if cs.steps < est_len {
            cs.est.record(cs.phase0 + 1, fb.is_success());
            cs.step_in_phase += 1;
            if cs.step_in_phase == params.est_phase_len(cs.class) {
                cs.phase0 += 1;
                cs.step_in_phase = 0;
            }
        }
        cs.steps += 1;
        if cs.steps == est_len && cs.estimate.is_none() {
            let estimate = cs.est.estimate(params.tau);
            cs.estimate = Some(estimate);
            cs.layout = Some(BroadcastLayout::new(&params, cs.class, estimate));
            if estimate == 0 {
                cs.complete = true;
            }
        }
        if let Some(layout) = &cs.layout {
            if cs.steps >= est_len + layout.total() {
                cs.complete = true;
            }
        }
    }

    /// Advance the replicated schedule over the feedback-free gap
    /// `[from, to)` in `O(#segments)` instead of slot-by-slot. Callers must
    /// guarantee the gap contains no estimation step of any tracked class
    /// and no window-boundary reset — which [`Tracker::next_wake_hint`]'s
    /// wake plan does by construction (every multiple of `2^min_class`
    /// starts a fresh estimation of the smallest class, so hints never
    /// reach past one).
    pub fn fast_forward(&mut self, from: u64, to: u64) {
        assert!(self.pending.is_none(), "fast_forward with a slot in flight");
        let min_w = 1u64 << self.params.min_class;
        assert!(
            from.div_ceil(min_w) * min_w >= to,
            "gap [{from}, {to}) crosses a window-boundary reset"
        );
        let mut t = from;
        while t < to {
            let Some(idx) = self.classes.iter().position(|cs| !cs.complete) else {
                // All tracked classes idle for the rest of the gap.
                return;
            };
            let est_len = self.params.est_len(self.classes[idx].class);
            let cs = &mut self.classes[idx];
            assert!(
                cs.steps >= est_len,
                "fast_forward across an estimation step of class {}",
                cs.class
            );
            let layout = cs.layout.as_ref().expect("estimated class has a layout");
            let total = est_len + layout.total();
            let take = (total - cs.steps).min(to - t);
            cs.steps += take;
            t += take;
            if cs.steps == total {
                cs.complete = true;
            }
        }
    }

    /// The next virtual slot strictly after `now` at which a job of
    /// `(my_class, my_window_start)` must take part in the slot-by-slot
    /// protocol: the earliest slot that is any tracked class's estimation
    /// step (real feedback feeds the replicated estimator), a
    /// window-boundary reset, or one of the job's own broadcast events —
    /// a subphase entry (where it draws its slot), its drawn slot, or its
    /// schedule's completion step (where giving up is detected). Every
    /// slot in between is a feedback-free broadcast or idle slot that
    /// [`Tracker::fast_forward`] can replay in bulk.
    ///
    /// `drawn_subphase`/`drawn_offset` are the caller's subphase draw
    /// bookkeeping (see `AlignedJob`), needed to locate its drawn slot.
    pub fn next_wake_hint(
        &self,
        now: u64,
        my_class: u32,
        my_window_start: u64,
        drawn_subphase: Option<u64>,
        drawn_offset: u64,
    ) -> u64 {
        assert!(
            self.pending.is_none(),
            "next_wake_hint with a slot in flight"
        );
        let min_w = 1u64 << self.params.min_class;
        // Every multiple of 2^min_class resets the smallest class into a
        // fresh estimation, so no plan extends past the next one.
        let boundary = (now | (min_w - 1)) + 1;
        let mut steps: Vec<u64> = self.classes.iter().map(|c| c.steps).collect();
        let mut complete: Vec<bool> = self.classes.iter().map(|c| c.complete).collect();
        let mut t = now + 1;
        while t < boundary {
            let Some(idx) = complete.iter().position(|c| !c) else {
                return boundary;
            };
            let cs = &self.classes[idx];
            let est_len = self.params.est_len(cs.class);
            if steps[idx] < est_len {
                return t;
            }
            let layout = cs.layout.as_ref().expect("estimated class has a layout");
            let total = est_len + layout.total();
            let remaining = total - steps[idx];
            let seg_end = (t + remaining).min(boundary);
            if cs.class == my_class && cs.window_start == my_window_start {
                // Within the segment, active steps map 1:1 onto slots.
                let bstep = steps[idx] - est_len;
                let pos = layout.position(bstep);
                if drawn_subphase != Some(steps[idx] - pos.offset) {
                    // A subphase this job has not drawn a slot for is
                    // under way at t: wake to draw.
                    return t;
                }
                let mut event = u64::MAX;
                if drawn_offset >= pos.offset {
                    event = t + (drawn_offset - pos.offset); // the drawn slot
                }
                let sp = layout.subphases()[pos.subphase];
                let next_entry = t + (sp.start + sp.len - bstep);
                if next_entry < seg_end {
                    event = event.min(next_entry);
                }
                if seg_end == t + remaining {
                    // The schedule's last step, where give-up is detected.
                    event = event.min(seg_end - 1);
                }
                if event < seg_end {
                    return event;
                }
                // The boundary truncates the segment before any event.
                return boundary;
            }
            // Another class's broadcast segment: nothing to do or hear.
            if seg_end < t + remaining {
                return boundary;
            }
            steps[idx] = total;
            complete[idx] = true;
            t = seg_end;
        }
        boundary
    }

    /// Publicly computed estimate for `class`'s current window, if its
    /// estimation has finished.
    pub fn estimate_of(&self, class: u32) -> Option<u64> {
        self.class_state(class).estimate
    }

    /// Active steps `class` has taken in its current window.
    pub fn steps_of(&self, class: u32) -> u64 {
        self.class_state(class).steps
    }

    /// Whether `class`'s algorithm for its current window has completed.
    pub fn is_complete(&self, class: u32) -> bool {
        self.class_state(class).complete
    }

    /// Start of `class`'s current window.
    pub fn window_start_of(&self, class: u32) -> u64 {
        self.class_state(class).window_start
    }

    fn class_state(&self, class: u32) -> &ClassState {
        assert!(class >= self.params.min_class && class <= self.top_class);
        &self.classes[(class - self.params.min_class) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::job::JobId;
    use dcr_sim::message::Payload;

    fn success(src: JobId) -> Feedback {
        Feedback::Success {
            src,
            payload: Payload::Data(src),
        }
    }

    fn params() -> AlignedParams {
        AlignedParams::new(1, 2, 1)
    }

    /// Drive a tracker through `n` slots with all-silent feedback.
    fn drive_silent(tracker: &mut Tracker, from: u64, n: u64) {
        for t in from..from + n {
            let _ = tracker.begin_slot(t);
            tracker.end_slot(t, &Feedback::Silent);
        }
    }

    #[test]
    fn silent_world_completes_estimation_then_idles() {
        // Single class 5 (window 32), λ=1: estimation takes 25 slots; an
        // all-silent channel yields estimate 0, so slots 25..31 are idle,
        // and the window restart at 32 starts a fresh estimation.
        let mut tr = Tracker::new(AlignedParams::new(1, 2, 5), 5, 0);
        for t in 0..25u64 {
            let step = tr.begin_slot(t).unwrap();
            assert_eq!(step.class, 5);
            assert!(matches!(step.kind, StepKind::Estimation { .. }), "t={t}");
            tr.end_slot(t, &Feedback::Silent);
        }
        assert!(tr.is_complete(5));
        assert_eq!(tr.estimate_of(5), Some(0));
        for t in 25..32u64 {
            assert!(tr.begin_slot(t).is_none(), "t={t} should be idle");
            tr.end_slot(t, &Feedback::Silent);
        }
        let step = tr.begin_slot(32).unwrap();
        assert_eq!(step.window_start, 32);
        assert_eq!(tr.steps_of(5), 0);
        tr.end_slot(32, &Feedback::Silent);
    }

    #[test]
    fn small_class_preempts_and_big_class_truncates() {
        // Classes 1..=2, λ=1. Class 1 (window 2) restarts every even slot
        // and owns it; class 2 (window 4) only ever gets the odd slots —
        // 2 active steps per window, short of its 4 estimation steps, so it
        // is truncated at every window boundary. This is the pecking-order
        // pathology that forces γ (hence min_class) to be large.
        let mut tr = Tracker::new(params(), 2, 0);
        for t in 0..12u64 {
            let step = tr.begin_slot(t).unwrap();
            let expect = if t % 2 == 0 { 1 } else { 2 };
            assert_eq!(step.class, expect, "t={t}");
            tr.end_slot(t, &Feedback::Silent);
            if t % 4 == 3 {
                // End of a class-2 window: only 2 of 4 estimation steps ran.
                assert_eq!(tr.steps_of(2), 2);
                assert!(!tr.is_complete(2));
            }
        }
    }

    #[test]
    fn successes_produce_estimate_and_broadcast_schedule() {
        // Single class 7 (window 128), λ=1, τ=2. Estimation: 7 phases × 7
        // steps = 49. Successes in phase 1 ⇒ estimate τ·2¹ = 4 ⇒ broadcast
        // λ(2·4−2) + λ·49 = 55 steps; complete at step 104 < 128.
        let mut tr = Tracker::new(AlignedParams::new(1, 2, 7), 7, 0);
        for t in 0..49u64 {
            let s = tr.begin_slot(t).unwrap();
            let phase = (t / 7) as u32 + 1;
            assert!(
                matches!(s.kind, StepKind::Estimation { phase: p, .. } if p == phase),
                "t={t}"
            );
            let fb = if phase == 1 {
                success(0)
            } else {
                Feedback::Silent
            };
            tr.end_slot(t, &fb);
        }
        assert_eq!(tr.estimate_of(7), Some(4));
        assert!(!tr.is_complete(7));
        for t in 49..104u64 {
            let s = tr.begin_slot(t).unwrap();
            assert!(matches!(s.kind, StepKind::Broadcast(_)), "t={t}");
            tr.end_slot(t, &Feedback::Silent);
        }
        assert!(tr.is_complete(7));
        // Remaining window is idle.
        assert!(tr.begin_slot(104).is_none());
        tr.end_slot(104, &Feedback::Silent);
    }

    #[test]
    fn window_boundary_truncates() {
        // Class 2 (window 4), λ=2: est_len = 8 > 4, so the class is always
        // truncated mid-estimation — at t=4 the state must reset.
        let mut tr = Tracker::new(AlignedParams::new(2, 2, 2), 2, 0);
        drive_silent(&mut tr, 0, 4);
        assert_eq!(tr.steps_of(2), 4);
        let s = tr.begin_slot(4).unwrap();
        assert_eq!(s.window_start, 4);
        assert_eq!(tr.steps_of(2), 0, "reset at new window");
        tr.end_slot(4, &Feedback::Silent);
    }

    #[test]
    fn two_trackers_agree_lemma7() {
        // A class-3 tracker and a class-2 tracker started at the same
        // critical time and fed identical feedback agree on every slot the
        // smaller one can see.
        let p = AlignedParams::new(1, 2, 1);
        let mut big = Tracker::new(p, 3, 8);
        let mut small = Tracker::new(p, 2, 8);
        for t in 8..16 {
            let a = big.begin_slot(t);
            let b = small.begin_slot(t);
            let fb = if t % 3 == 0 {
                success(1)
            } else {
                Feedback::Silent
            };
            match (a, b) {
                (Some(sa), Some(sb)) => assert_eq!(sa, sb, "t={t}"),
                (Some(sa), None) => {
                    assert!(sa.class > 2, "small idle but big active on small class")
                }
                (None, None) => {}
                (None, Some(_)) => panic!("big idle while small active"),
            }
            big.end_slot(t, &fb);
            small.end_slot(t, &fb);
        }
    }

    #[test]
    #[should_panic(expected = "critical time")]
    fn misaligned_start_rejected() {
        let _ = Tracker::new(params(), 3, 4); // 4 % 8 != 0
    }

    #[test]
    #[should_panic(expected = "begin_slot without end_slot")]
    fn double_begin_panics() {
        let mut tr = Tracker::new(params(), 2, 0);
        let _ = tr.begin_slot(0);
        let _ = tr.begin_slot(1);
    }
}
