//! **ALIGNED** — contention resolution for power-of-2-aligned windows
//! (Section 3 of the paper).
//!
//! Every window has size `2^ℓ` and starts at a multiple of `2^ℓ`. Jobs
//! sharing the exact same window form **job class ℓ**; classes are
//! scheduled by *pecking order* — the smallest class with unfinished work
//! owns the current slot, and larger classes passively simulate it
//! ([`tracker`]). Within a class the algorithm is:
//!
//! 1. **Estimation** ([`estimator`]): `ℓ` phases of `λℓ` slots; in phase
//!    `i` each job transmits a control message with probability `1/2^i`;
//!    the estimate is `n_ℓ = τ·2^j` for the phase `j` with most successes.
//! 2. **Broadcast** ([`broadcast`]): decreasing phases of lengths
//!    `λn_ℓ, λn_ℓ/2, …, 2λ`, then `ℓ` equalizer phases of length `λℓ`;
//!    each phase of length `λX` splits into `λ` subphases of length `X`,
//!    and each still-live job transmits its data message in one uniformly
//!    random slot per subphase.
//! 3. **Truncation**: when the window ends, unfinished jobs give up.
//!
//! The number of active steps a class consumes is a deterministic function
//! of `ℓ` and the (publicly observable) estimate — Lemma 6:
//! `2λ(ℓ² + n_ℓ − 1)` — which is what lets every job replay every class's
//! schedule from channel feedback alone (Lemma 7).

pub mod broadcast;
pub mod cohort;
pub mod estimator;
pub mod params;
pub mod protocol;
pub mod tracker;

/// `ControlMsg::kind` used for estimation pings.
pub const CTRL_ESTIMATE: u16 = 10;
