//! Aggregate (class-driver) fidelity for PUNCTUAL — the duty-masked state
//! machine advanced once per class.
//!
//! Every member of a punctual job class shares `(release, deadline)` and
//! therefore, in every slot, the *entire* observable protocol state: the
//! same synchronization progress (they all listen to the same channel from
//! the same slot), the same round anchor, the same virtual clock, the same
//! SLINGSHOT/FOLLOW/ANARCHIST decision (all of which depend only on public
//! feedback and the shared `my_rem`). Members differ only in their private
//! coins — so, as in [`crate::aligned::cohort`], the shared machine runs
//! once per class and the per-member Bernoulli coins collapse into one
//! exact `Binomial(m, p)` draw per election/anarchy slot.
//!
//! Exchangeability breaks at exactly four boundaries, and only there are
//! individual members materialized:
//!
//! * a **lone win** — the channel needs a concrete `src` (start pair,
//!   election claim, anarchy shot, or a FOLLOW broadcast delegated to the
//!   embedded [`AlignedCohort`]);
//! * a **leader election** — the winning claimant leaves the aggregate as
//!   an exact-path [`PunctualProtocol`] pre-synchronized into
//!   `Leader(Takeover)` ([`ClassEvent::Eject`]); its classmates all defer
//!   (`waiting_beacon`) because the claim's deadline equals their own;
//! * an **anarchist conversion** — public (tracker completion and beacon
//!   history are shared), so *all* remaining members convert at once and
//!   stay aggregate;
//! * **preemption of FOLLOW** — an epoch change re-decides for the whole
//!   class simultaneously, reclaiming the embedded core's members.
//!
//! FOLLOW runs the ALIGNED aggregate in virtual (round-counter) time. Its
//! draws are keyed on `(follow_seed, rho, phase)` where `follow_seed` is
//! derived from the class seed and the trim parameters: rho values overlap
//! the outer slot domain, so reusing the raw class seed would replay outer
//! draws inside the core.
//!
//! The fidelity contract matches [`dcr_sim::classes`]: statistical
//! equivalence with the exact path (Wilson-interval checked in
//! `tests/cohort_equivalence.rs`), exact replay, shard invariance.

use crate::aligned::cohort::{aligned_class_tag, AlignedCohort};
use crate::punctual::messages::PunctualMsg;
use crate::punctual::params::{slot_role, PunctualParams, SlotRole, ROUND_LEN};
use crate::punctual::protocol::{Clock, PunctualProtocol};
use crate::punctual::trim::trim_class;
use dcr_sim::classes::{ClassCtx, ClassDriver, ClassEvent, ClassSlot};
use dcr_sim::crng::{CounterRng, Phase};
use dcr_sim::job::JobId;
use dcr_sim::message::Payload;
use dcr_sim::probe::{EventBuf, ProbeEvent};
use dcr_sim::rng::sample_binomial;
use dcr_sim::slot::Feedback;
use rand::Rng;

/// Stable discriminant for [`dcr_sim::engine::CohortTx::Class`]: commits to
/// the protocol kind (PUNCTUAL) and every parameter that shapes behaviour,
/// including the embedded ALIGNED configuration.
pub fn punctual_class_tag(params: &PunctualParams) -> u64 {
    0x504e_4354 // "PNCT"
        ^ aligned_class_tag(&params.aligned).rotate_left(17)
        ^ params.lambda.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ u64::from(params.pullback_prob_logexp).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ u64::from(params.pullback_len_logexp).wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ params
            .sync_listen_slots
            .wrapping_mul(0xd6e8_feb8_6659_fd93)
        ^ u64::from(params.beacon_loss_tolerance).wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// Counter-RNG key for the embedded FOLLOW core. Virtual time (rho) values
/// overlap the outer slot domain, so the core must draw from a stream
/// distinct from the outer `(class_seed, slot, phase)` one; mixing in the
/// trim parameters also separates successive FOLLOW attempts (after an
/// epoch change) whose rho ranges may overlap.
fn follow_seed(class_seed: u64, trim_start: u64, class: u32) -> u64 {
    let mut z = class_seed
        ^ 0x464f_4c4c_4f57_5f41 // "FOLLOW_A"
        ^ trim_start.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ u64::from(class).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The class's shared state — a mirror of the exact path's `State` minus
/// the variants that cannot hold a whole aggregate: `Leader` (the winner is
/// ejected as an exact-path job) and `Done` (delivered members simply leave
/// the pool; the class dissolves when it empties).
enum GroupState {
    /// Listening for the busy-busy-silent round-anchor pattern.
    SyncListen {
        waited: u64,
        prev_busy: bool,
        prev2_busy: bool,
    },
    /// Initiating a round train: every member transmits two start messages.
    SyncAnnounce { sent: u8 },
    /// SLINGSHOT: pullback claims, watching the timekeeper for leaders.
    /// No `claimed` flag — the materialized claimant plays that role.
    Slingshot {
        claims_left: u64,
        waiting_beacon: bool,
        waiting_rounds: u32,
    },
    /// FOLLOW-THE-LEADER: the ALIGNED aggregate in virtual time. `core` is
    /// built lazily at the first attended aligned slot (like the exact
    /// path's `job: Option<AlignedJob>`); it owns the members while it
    /// lives.
    Follow {
        trim_start: u64,
        class: u32,
        core: Option<Box<AlignedCohort>>,
    },
    /// Released the slingshot: transmit data in anarchy slots.
    Anarchist,
}

/// Fresh SLINGSHOT state with a full pullback budget (mirror of the exact
/// path's `slingshot_state`).
fn slingshot_group(params: &PunctualParams, window: u64) -> GroupState {
    GroupState::Slingshot {
        claims_left: params.pullback_election_slots(window),
        waiting_beacon: false,
        waiting_rounds: 0,
    }
}

/// FOLLOW state for a virtual window of `rem_v` rounds starting at round
/// counter `rho_now`; anarchist fallback below the ALIGNED floor (mirror of
/// the exact path's `follow_state`).
fn follow_group(params: &PunctualParams, rho_now: u64, rem_v: u64) -> GroupState {
    match trim_class(rho_now, rho_now.saturating_add(rem_v)) {
        Some((trim_start, class)) if class >= params.aligned.min_class => GroupState::Follow {
            trim_start,
            class,
            core: None,
        },
        _ => GroupState::Anarchist,
    }
}

/// Probe phase labels, identical to the exact path's `state_tag` so traces
/// read the same under either fidelity.
fn group_tag(state: &GroupState) -> &'static str {
    match state {
        GroupState::SyncListen { .. } => "sync-listen",
        GroupState::SyncAnnounce { .. } => "sync-announce",
        GroupState::Slingshot { .. } => "slingshot",
        GroupState::Follow { .. } => "follow",
        GroupState::Anarchist => "anarchist",
    }
}

/// What the last `begin_slot` opened; consumed by `materialize`/`end_slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// Listen/sleep slot (or a role the current state ignores).
    None,
    /// Start-pair (or sync-announce) slot: every member transmits.
    Start,
    /// Election slot with a live claim draw.
    Claim,
    /// Anarchy slot.
    Anarchy,
    /// FOLLOW aligned step delegated to the core at virtual time `rho`.
    AlignedStep { rho: u64 },
}

/// The PUNCTUAL aggregate class. See the module docs for the contract.
pub struct PunctualCohort {
    params: PunctualParams,
    /// Shared release slot (local time `l = slot - release`).
    release: u64,
    /// Shared window size.
    window: u64,
    class_seed: u64,
    /// Live members, pool order. Empty while a FOLLOW core owns them.
    members: Vec<JobId>,
    state: GroupState,
    /// Round anchor in local time (once synchronized).
    anchor: Option<u64>,
    clock: Option<Clock>,
    /// Cached per-window probabilities (exact path: `cached_probs`).
    claim_p: f64,
    anarchy_p: f64,
    pending: Pending,
    /// Index (into `members`) of the member named by `materialize` this
    /// slot, for Claim/Anarchy slots where the outcome singles it out.
    materialized: Option<usize>,
    probed: bool,
    probe: EventBuf,
}

impl PunctualCohort {
    /// Build the driver for one class.
    pub fn new(params: PunctualParams, cctx: &ClassCtx) -> Self {
        let mut probe = EventBuf::default();
        if cctx.probed {
            probe.arm();
            probe.phase("sync-listen");
        }
        Self {
            params,
            release: cctx.release,
            window: cctx.window,
            class_seed: cctx.class_seed,
            members: Vec::new(),
            state: GroupState::SyncListen {
                waited: 0,
                prev_busy: false,
                prev2_busy: false,
            },
            anchor: None,
            clock: None,
            claim_p: params.claim_probability(cctx.window),
            anarchy_p: params.anarchy_probability(cctx.window),
            pending: Pending::None,
            materialized: None,
            probed: cctx.probed,
            probe,
        }
    }

    /// Members currently in the aggregate (delegating to a live FOLLOW
    /// core when one owns the pool).
    pub fn live_members(&self) -> usize {
        match &self.state {
            GroupState::Follow { core: Some(c), .. } => c.live_members(),
            _ => self.members.len(),
        }
    }

    /// True while the class is in the anarchist fallback (diagnostic).
    pub fn is_anarchist(&self) -> bool {
        matches!(self.state, GroupState::Anarchist)
    }

    /// Position of local slot `l` within its round.
    fn pos(&self, l: u64) -> u64 {
        let anchor = self.anchor.expect("synchronized");
        (l - anchor) % ROUND_LEN
    }

    /// Rounds remaining in the shared window from local slot `l`.
    fn remaining_rounds(&self, l: u64) -> u64 {
        (self.window - l) / ROUND_LEN
    }

    /// Replace the state, reclaiming members (and pending probe events)
    /// from a FOLLOW core being abandoned.
    fn leave_state_into(&mut self, next: GroupState) {
        if let GroupState::Follow { core: Some(c), .. } = &mut self.state {
            self.probe.absorb(c.probe_mut());
            let mut got = c.take_members();
            self.members.append(&mut got);
        }
        self.state = next;
    }

    /// Probe bookkeeping after any mutation point (mirror of the exact
    /// path's `note_transition`): a phase span per state plus the
    /// anarchist-conversion instant. `LeaderElected` is pushed at the eject
    /// site — the group itself never holds the leader state.
    fn note(&mut self, before: &'static str) {
        if !self.probe.enabled() {
            return;
        }
        let now = group_tag(&self.state);
        if now == before {
            return;
        }
        self.probe.phase(now);
        if now == "anarchist" {
            self.probe.push(ProbeEvent::AnarchistConversion {
                from: before.to_string(),
            });
        }
    }

    fn begin_inner(&mut self, slot: u64) -> ClassSlot {
        let l = slot - self.release;

        // Pre-synchronization states act without a round anchor.
        match &mut self.state {
            GroupState::SyncListen { .. } => return ClassSlot::default(),
            GroupState::SyncAnnounce { sent } => {
                if *sent == 0 {
                    self.anchor = Some(l);
                }
                *sent += 1;
                let done = *sent == 2;
                let m = self.members.len() as u64;
                if done {
                    self.state = slingshot_group(&self.params, self.window);
                }
                self.pending = Pending::Start;
                return ClassSlot {
                    count: m,
                    declared: m as f64,
                };
            }
            _ => {}
        }

        let pos = self.pos(l);
        let round_start = l - pos;
        match slot_role(pos) {
            SlotRole::Start => {
                // Every synchronized live member keeps the round train
                // detectable.
                let m = self.live_members() as u64;
                self.pending = Pending::Start;
                ClassSlot {
                    count: m,
                    declared: m as f64,
                }
            }
            // Guard slots are guaranteed silent; timekeeper slots are
            // listen-only for a leaderless aggregate (anarchists sleep, but
            // zero transmitters either way).
            SlotRole::Guard | SlotRole::Timekeeper => ClassSlot::default(),
            SlotRole::Aligned => {
                let clock = self.clock;
                let probed = self.probed;
                let seed = self.class_seed;
                let aligned = self.params.aligned;
                if let GroupState::Follow {
                    trim_start,
                    class,
                    core,
                } = &mut self.state
                {
                    let rho = clock.expect("follower has a clock").rho(round_start);
                    if rho < *trim_start {
                        return ClassSlot::default();
                    }
                    if core.is_none() {
                        let mut c = AlignedCohort::new(
                            aligned,
                            *class,
                            *trim_start,
                            follow_seed(seed, *trim_start, *class),
                        );
                        if probed {
                            c.arm_probe();
                        }
                        for id in self.members.drain(..) {
                            c.admit(id);
                        }
                        *core = Some(Box::new(c));
                    }
                    let cs = core.as_mut().expect("just built").begin_vt(rho);
                    self.pending = Pending::AlignedStep { rho };
                    cs
                } else {
                    // Only followers run the embedded ALIGNED instance.
                    ClassSlot::default()
                }
            }
            SlotRole::Election => {
                if let GroupState::Slingshot {
                    claims_left,
                    waiting_beacon,
                    ..
                } = &mut self.state
                {
                    if !*waiting_beacon && *claims_left > 0 {
                        *claims_left -= 1;
                        let m = self.members.len() as u64;
                        let mut rng = CounterRng::new(self.class_seed, slot, Phase::Act);
                        let count = sample_binomial(m, self.claim_p, &mut rng);
                        self.pending = Pending::Claim;
                        return ClassSlot {
                            count,
                            declared: m as f64 * self.claim_p,
                        };
                    }
                }
                ClassSlot::default()
            }
            SlotRole::Anarchy => {
                if matches!(self.state, GroupState::Anarchist) {
                    let m = self.members.len() as u64;
                    let mut rng = CounterRng::new(self.class_seed, slot, Phase::Act);
                    let count = sample_binomial(m, self.anarchy_p, &mut rng);
                    self.pending = Pending::Anarchy;
                    return ClassSlot {
                        count,
                        declared: m as f64 * self.anarchy_p,
                    };
                }
                ClassSlot::default()
            }
        }
    }

    /// Timekeeper-slot bookkeeping (mirror of the exact `on_timekeeper`,
    /// minus the leader arm — the aggregate never leads).
    fn on_timekeeper_group(&mut self, l: u64, round_start: u64, fb: &Feedback) {
        // Anarchists sleep through timekeeper slots: no clock updates, no
        // beacon reactions (exact path: `Action::Sleep`, so `on_feedback`
        // never runs).
        if matches!(self.state, GroupState::Anarchist) {
            return;
        }
        let my_rem = self.remaining_rounds(l);
        let beacon = fb.payload().and_then(PunctualMsg::decode);
        let old_epoch = self.clock.map(|c| c.epoch);
        if let Some(PunctualMsg::Beacon { epoch, rho, .. }) = beacon {
            self.clock = Some(Clock {
                epoch,
                rho_base: rho,
                base_local: round_start,
            });
        }
        let rho_now = self.clock.map(|c| c.rho(round_start));

        let next: Option<GroupState> = match &mut self.state {
            GroupState::Slingshot {
                claims_left,
                waiting_beacon,
                waiting_rounds,
            } => match beacon {
                Some(PunctualMsg::Beacon {
                    leader_remaining, ..
                }) => {
                    if leader_remaining >= my_rem {
                        Some(follow_group(&self.params, rho_now.unwrap(), my_rem))
                    } else if *claims_left == 0 && !*waiting_beacon {
                        // Final check: a leader covering at least half the
                        // remaining window is good enough.
                        if leader_remaining >= my_rem / 2 {
                            Some(follow_group(
                                &self.params,
                                rho_now.unwrap(),
                                leader_remaining.min(my_rem),
                            ))
                        } else {
                            Some(GroupState::Anarchist)
                        }
                    } else {
                        None
                    }
                }
                _ => {
                    if *waiting_beacon {
                        *waiting_rounds += 1;
                        if *waiting_rounds > self.params.beacon_loss_tolerance {
                            *waiting_beacon = false;
                            *waiting_rounds = 0;
                        }
                        None
                    } else if *claims_left == 0 {
                        Some(GroupState::Anarchist)
                    } else {
                        None
                    }
                }
            },
            GroupState::Follow { .. } => match beacon {
                Some(PunctualMsg::Beacon {
                    epoch,
                    leader_remaining,
                    ..
                }) if old_epoch != Some(epoch) => {
                    // Epoch change: re-decide against the new leadership.
                    if leader_remaining >= my_rem {
                        Some(follow_group(&self.params, rho_now.unwrap(), my_rem))
                    } else {
                        Some(slingshot_group(&self.params, self.window))
                    }
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(st) = next {
            self.leave_state_into(st);
        }
    }

    /// Election-slot feedback (mirror of the exact path's election arm).
    fn on_election(&mut self, l: u64, fb: &Feedback, out: &mut Vec<ClassEvent>) {
        let my_rem = self.remaining_rounds(l);
        let msg = fb.payload().and_then(PunctualMsg::decode);
        let GroupState::Slingshot {
            waiting_beacon,
            waiting_rounds,
            ..
        } = &mut self.state
        else {
            // Followers and anarchists sleep through elections.
            return;
        };
        let Some(PunctualMsg::Claim { remaining }) = msg else {
            return;
        };
        // Our materialized claimant won: eject it as the leader, exactly in
        // the state its exact-path twin would hold after a successful claim.
        if let (Feedback::Success { src, .. }, Pending::Claim, Some(idx)) =
            (fb, self.pending, self.materialized)
        {
            if self.members[idx] == *src {
                let member = self.members.swap_remove(idx);
                let proto = PunctualProtocol::leader_takeover(
                    self.params,
                    self.anchor.expect("synchronized"),
                    self.clock,
                    self.probed,
                );
                out.push(ClassEvent::Eject {
                    member,
                    protocol: Box::new(proto),
                });
                if self.probe.enabled() {
                    self.probe.push(ProbeEvent::LeaderElected);
                }
                // Classmates heard a successful claim with a deadline equal
                // to their own: all defer and wait for the beacon.
                *waiting_beacon = true;
                *waiting_rounds = 0;
                return;
            }
        }
        // A foreign claim succeeded while we slingshot.
        if remaining >= my_rem {
            *waiting_beacon = true;
            *waiting_rounds = 0;
        }
    }

    fn end_inner(&mut self, slot: u64, fb: &Feedback, out: &mut Vec<ClassEvent>) {
        let l = slot - self.release;

        // Global: our materialized anarchy shot got through — drop the
        // delivered member (the engine credits the delivery itself).
        // Aligned-broadcast deliveries are handled inside the core; leader
        // handoffs belong to the ejected exact-path job.
        if let Feedback::Success { src, payload } = fb {
            if payload.is_data() {
                if let (Pending::Anarchy, Some(idx)) = (self.pending, self.materialized) {
                    if self.members[idx] == *src {
                        self.members.swap_remove(idx);
                    }
                }
            }
        }

        match &mut self.state {
            GroupState::SyncListen {
                waited,
                prev_busy,
                prev2_busy,
            } => {
                let busy = fb.is_busy();
                if !busy && *prev_busy && *prev2_busy {
                    // Slots (l-2, l-1) busy, l silent: l-2 starts the round.
                    self.anchor = Some(l - 2);
                    self.state = slingshot_group(&self.params, self.window);
                } else {
                    *prev2_busy = *prev_busy;
                    *prev_busy = busy;
                    *waited = if busy { 0 } else { *waited + 1 };
                    if *waited >= self.params.sync_listen_slots {
                        self.state = GroupState::SyncAnnounce { sent: 0 };
                    }
                }
                return;
            }
            GroupState::SyncAnnounce { .. } => return,
            _ => {}
        }

        let pos = self.pos(l);
        let round_start = l - pos;
        match slot_role(pos) {
            SlotRole::Timekeeper => self.on_timekeeper_group(l, round_start, fb),
            SlotRole::Election => self.on_election(l, fb, out),
            SlotRole::Aligned => {
                let clock = self.clock;
                let mut gave_up = false;
                if let GroupState::Follow {
                    trim_start, core, ..
                } = &mut self.state
                {
                    let rho = clock.expect("follower has a clock").rho(round_start);
                    if rho >= *trim_start {
                        if let Some(c) = core.as_mut() {
                            c.end_vt(rho, fb);
                            gave_up = c.gave_up();
                        }
                    }
                }
                if gave_up {
                    // Truncated: the whole class releases into anarchy —
                    // the tracker's completion is public, so every member
                    // converts in the same slot.
                    self.leave_state_into(GroupState::Anarchist);
                }
            }
            SlotRole::Start | SlotRole::Guard | SlotRole::Anarchy => {}
        }
    }
}

impl ClassDriver for PunctualCohort {
    fn admit(&mut self, member: JobId) {
        self.members.push(member);
    }

    fn live(&self) -> usize {
        self.live_members()
    }

    fn begin_slot(&mut self, slot: u64) -> ClassSlot {
        self.pending = Pending::None;
        self.materialized = None;
        let before = group_tag(&self.state);
        let cs = self.begin_inner(slot);
        self.note(before);
        cs
    }

    fn materialize(&mut self, slot: u64) -> (JobId, Payload) {
        let l = slot - self.release;
        let mut rng = CounterRng::new(self.class_seed, slot, Phase::Activate);
        match self.pending {
            Pending::AlignedStep { rho } => {
                let GroupState::Follow { core: Some(c), .. } = &mut self.state else {
                    unreachable!("aligned step without a core");
                };
                c.materialize_vt(rho)
            }
            Pending::Start => {
                // Start messages carry no identity consequence: any member
                // serves as the voice of the train.
                let pool: &[JobId] = match &self.state {
                    GroupState::Follow { core: Some(c), .. } => c.members(),
                    _ => &self.members,
                };
                let idx = rng.gen_range(0..pool.len());
                (pool[idx], PunctualMsg::Start.encode())
            }
            Pending::Claim => {
                // Fresh coins every election: uniform over the pool. A
                // jammed claim reveals nothing (Noise carries no src), so
                // no exclusion bookkeeping is needed on failure.
                let idx = rng.gen_range(0..self.members.len());
                self.materialized = Some(idx);
                let remaining = (self.window - l) / ROUND_LEN;
                (self.members[idx], PunctualMsg::Claim { remaining }.encode())
            }
            Pending::Anarchy => {
                let idx = rng.gen_range(0..self.members.len());
                self.materialized = Some(idx);
                (self.members[idx], Payload::Data(self.members[idx]))
            }
            Pending::None => unreachable!("materialize without transmitters"),
        }
    }

    fn end_slot(&mut self, slot: u64, fb: &Feedback, out: &mut Vec<ClassEvent>) {
        let before = group_tag(&self.state);
        self.end_inner(slot, fb, out);
        self.note(before);
    }

    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        self.probe.drain_into(out);
        if let GroupState::Follow { core: Some(c), .. } = &mut self.state {
            c.drain_events(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::metrics::SimReport;
    use dcr_sim::probe::{ProbeSpec, SinkSpec};
    use dcr_sim::runner::count_trials;

    fn run_batch(n: u32, w: u64, seed: u64, cfg: EngineConfig) -> SimReport {
        let mut e = Engine::new(cfg, seed);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, w),
                Box::new(PunctualProtocol::new(PunctualParams::laptop())),
            );
        }
        e.run()
    }

    #[test]
    fn lone_member_elects_itself_and_delivers() {
        // A class of one: sync, a lone claim win must eject the member as
        // an exact-path leader, which then delivers via abdication.
        let (hits, total) = count_trials(30, 42, |_, seed| {
            run_batch(1, 1 << 13, seed, EngineConfig::default().cohort())
                .outcome(0)
                .is_success()
        });
        assert!(hits >= total - 2, "{hits}/{total}");
    }

    #[test]
    fn aggregate_success_law_matches_exact() {
        // 6 jobs sharing a 2^13 window, 30 seeds per path: the aggregate
        // must reproduce the exact path's success law. RNG domains differ,
        // so the check is statistical: mean success proportions within 5
        // combined standard errors.
        let (n, w, trials) = (6u32, 1u64 << 13, 30u64);
        let mean = |cfg: fn() -> EngineConfig| -> f64 {
            let mut total = 0u64;
            for seed in 0..trials {
                total += run_batch(n, w, 500 + seed, cfg()).successes() as u64;
            }
            total as f64 / (trials * u64::from(n)) as f64
        };
        let exact = mean(EngineConfig::default);
        let agg = mean(|| EngineConfig::default().cohort());
        let m = (trials * u64::from(n)) as f64;
        let se = |p: f64| (p * (1.0 - p) / m).sqrt();
        let tol = 5.0 * (se(exact) + se(agg)).max(0.02);
        assert!(
            (exact - agg).abs() < tol,
            "exact {exact} vs aggregate {agg} (tol {tol})"
        );
    }

    #[test]
    fn aggregate_emits_leader_election_event() {
        // The class (not a per-job protocol) must report the election; the
        // ejected leader then carries its own probe stream.
        let mut found = false;
        for seed in 0..10u64 {
            let r = run_batch(
                6,
                1 << 13,
                seed,
                EngineConfig::default()
                    .cohort()
                    .with_probe(ProbeSpec::new().with(SinkSpec::Events)),
            );
            let probes = r.probes.as_ref().expect("probe report");
            let events = probes.events().expect("event log");
            if events
                .iter()
                .any(|rec| matches!(rec.event, ProbeEvent::LeaderElected) && rec.job.is_none())
            {
                found = true;
                break;
            }
        }
        assert!(found, "no class-level LeaderElected in 10 seeds");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_batch(5, 1 << 12, 99, EngineConfig::default().cohort());
        let b = run_batch(5, 1 << 12, 99, EngineConfig::default().cohort());
        assert_eq!(a.outcomes(), b.outcomes());
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn no_panic_on_tiny_window() {
        // Too small to synchronize: must fail gracefully, like the exact
        // path.
        let r = run_batch(3, 16, 3, EngineConfig::default().cohort());
        assert_eq!(r.outcomes().len(), 3);
    }

    #[test]
    fn tag_commits_to_params() {
        let base = PunctualParams::laptop();
        let mut other = base;
        other.lambda += 1;
        let mut third = base;
        third.sync_listen_slots += 1;
        let mut fourth = base;
        fourth.aligned.lambda += 1;
        let tags = [
            punctual_class_tag(&base),
            punctual_class_tag(&other),
            punctual_class_tag(&third),
            punctual_class_tag(&fourth),
        ];
        for i in 0..tags.len() {
            for j in i + 1..tags.len() {
                assert_ne!(tags[i], tags[j], "{i} vs {j}");
            }
        }
    }
}
