//! Window trimming in leader (virtual round) time.
//!
//! Once a follower shares the leader's round counter `ρ`, its remaining
//! real window corresponds to a virtual interval `[ρ_now, ρ_now + rem)`
//! measured in rounds. FOLLOW-THE-LEADER trims this to the largest
//! power-of-2-*aligned* virtual window inside it (the paper's `trimmed(W)`;
//! `|trimmed(W)| ≥ |W|/4`), and runs ALIGNED there.
//!
//! The arithmetic is the same as `dcr_workloads::transforms::trimmed_window`
//! but is deliberately re-implemented here: `dcr-core` is the substrate the
//! workloads crate builds *experiments* on, and an inverted dependency for
//! a ten-line function would cycle the graph. Cross-validation lives in the
//! workspace integration tests.

/// The largest aligned power-of-2 window contained in `[start, end)`
/// virtual time, or `None` if the interval is empty.
pub fn trim_virtual(start: u64, end: u64) -> Option<(u64, u64)> {
    if end <= start {
        return None;
    }
    let w = end - start;
    let mut k = 63 - w.leading_zeros();
    loop {
        let size = 1u64 << k;
        let aligned_start = start.div_ceil(size) * size;
        if aligned_start + size <= end {
            return Some((aligned_start, aligned_start + size));
        }
        if k == 0 {
            // A size-1 window always fits (every slot is 1-aligned), so
            // this point is unreachable for non-empty intervals.
            unreachable!("size-1 window always fits in a non-empty interval");
        }
        k -= 1;
    }
}

/// The class (log2 size) of the trimmed window for `[start, end)`, with
/// its start, if the interval is non-empty.
pub fn trim_class(start: u64, end: u64) -> Option<(u64, u32)> {
    trim_virtual(start, end).map(|(s, e)| (s, (e - s).trailing_zeros()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_are_aligned_and_at_least_quarter() {
        for (s, e) in [(0u64, 5u64), (3, 17), (9, 10), (100, 1000), (1, 2048)] {
            let (ts, te) = trim_virtual(s, e).unwrap();
            let tw = te - ts;
            assert!(ts >= s && te <= e);
            assert!(tw.is_power_of_two());
            assert_eq!(ts % tw, 0);
            assert!(4 * tw >= e - s, "({s},{e}) -> ({ts},{te})");
        }
    }

    #[test]
    fn empty_interval_is_none() {
        assert_eq!(trim_virtual(5, 5), None);
        assert_eq!(trim_virtual(7, 3), None);
    }

    #[test]
    fn aligned_interval_is_identity() {
        assert_eq!(trim_virtual(8, 16), Some((8, 16)));
    }

    #[test]
    fn class_extraction() {
        let (s, c) = trim_class(3, 20).unwrap();
        assert_eq!(s % (1 << c), 0);
        assert!((1u64 << c) * 4 >= 17);
    }
}
