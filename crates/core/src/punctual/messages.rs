//! Typed PUNCTUAL control messages and their wire encoding.
//!
//! PUNCTUAL exchanges four control message types over the channel's
//! fixed-size [`ControlMsg`] frames: start markers, leader beacons,
//! election claims, and abdication notices. Deadlines are never shipped as
//! absolute times — there is no global clock — but as *remaining rounds*,
//! which every listener can interpret relative to the shared round train.

use dcr_sim::message::{ControlMsg, Payload};

/// `ControlMsg::kind` for start (synch) markers.
pub const KIND_START: u16 = 20;
/// `ControlMsg::kind` for leader timekeeper beacons.
pub const KIND_BEACON: u16 = 21;
/// `ControlMsg::kind` for SLINGSHOT election claims.
pub const KIND_CLAIM: u16 = 22;

/// A decoded PUNCTUAL control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PunctualMsg {
    /// "A round is starting": transmitted by every synchronized job in the
    /// two start slots. Content-free (these slots usually collide anyway;
    /// only their busyness matters).
    Start,
    /// The leader's timekeeper beacon.
    Beacon {
        /// Identifier of the leadership epoch (alignment domain).
        epoch: u64,
        /// The leader's round counter — the shared virtual clock.
        rho: u64,
        /// Rounds remaining until the leader's own deadline.
        leader_remaining: u64,
    },
    /// "I am the leader with deadline …" — a SLINGSHOT claim.
    Claim {
        /// Rounds remaining until the claimer's deadline.
        remaining: u64,
    },
}

impl PunctualMsg {
    /// Encode to the wire frame.
    pub fn encode(&self) -> Payload {
        let msg = match *self {
            PunctualMsg::Start => ControlMsg::of_kind(KIND_START),
            PunctualMsg::Beacon {
                epoch,
                rho,
                leader_remaining,
            } => ControlMsg {
                kind: KIND_BEACON,
                a: epoch,
                b: rho,
                c: leader_remaining,
            },
            PunctualMsg::Claim { remaining } => ControlMsg {
                kind: KIND_CLAIM,
                a: remaining,
                b: 0,
                c: 0,
            },
        };
        Payload::Control(msg)
    }

    /// Decode from a received frame; `None` for data payloads or foreign
    /// control kinds.
    pub fn decode(payload: &Payload) -> Option<PunctualMsg> {
        let Payload::Control(msg) = payload else {
            return None;
        };
        match msg.kind {
            KIND_START => Some(PunctualMsg::Start),
            KIND_BEACON => Some(PunctualMsg::Beacon {
                epoch: msg.a,
                rho: msg.b,
                leader_remaining: msg.c,
            }),
            KIND_CLAIM => Some(PunctualMsg::Claim { remaining: msg.a }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = [
            PunctualMsg::Start,
            PunctualMsg::Beacon {
                epoch: 0xdead,
                rho: 42,
                leader_remaining: 7,
            },
            PunctualMsg::Claim { remaining: 99 },
        ];
        for m in msgs {
            assert_eq!(PunctualMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn data_payload_does_not_decode() {
        assert_eq!(PunctualMsg::decode(&Payload::Data(3)), None);
    }

    #[test]
    fn foreign_control_kind_does_not_decode() {
        let foreign = Payload::Control(ControlMsg::of_kind(crate::aligned::CTRL_ESTIMATE));
        assert_eq!(PunctualMsg::decode(&foreign), None);
    }
}
