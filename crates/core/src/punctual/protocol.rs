//! The PUNCTUAL job automaton (Figure 2 of the paper).
//!
//! States: round synchronization (`SyncListen` → `SyncAnnounce`),
//! SLINGSHOT (pullback claims in election slots), FOLLOW-THE-LEADER
//! (embedded [`AlignedJob`] in virtual round time), BECOME-LEADER
//! (timekeeper beacons, deposition, abdication), and the anarchist
//! fallback. See the [module docs](crate::punctual) for the engineering
//! resolutions where the paper under-specifies.

use crate::aligned::protocol::{AlignedAction, AlignedJob};
use crate::punctual::cohort::{punctual_class_tag, PunctualCohort};
use crate::punctual::messages::PunctualMsg;
use crate::punctual::params::{slot_role, PunctualParams, SlotRole, ROUND_LEN};
use crate::punctual::trim::trim_class;
use dcr_sim::classes::{ClassCtx, ClassDriver};
use dcr_sim::engine::{Action, CohortTx, DutyCycle, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::probe::{EventBuf, ProbeEvent};
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};

/// Per-round-position distance to the next duty position, for one set of
/// duty positions (see [`Protocol::next_wake`]).
type StepTable = [u8; ROUND_LEN as usize];

/// Build the step table for a duty-position bitmask at compile time:
/// `table[pos]` is the number of slots from round position `pos` to the
/// next position whose bit is set (cyclically, so always in `1..=ROUND_LEN`).
const fn step_table(mask: u16) -> StepTable {
    let len = ROUND_LEN as usize;
    let mut table = [0u8; ROUND_LEN as usize];
    let mut pos = 0;
    while pos < len {
        let mut best = len;
        let mut m = 0;
        while m < len {
            if mask & (1 << m) != 0 {
                let step = (m + len - pos - 1) % len + 1;
                if step < best {
                    best = step;
                }
            }
            m += 1;
        }
        table[pos] = best as u8;
        pos += 1;
    }
    table
}

/// Duty positions 0, 1, 3, 7 (start pair, timekeeper, election).
static SLINGSHOT_STEPS: StepTable = step_table(1 << 0 | 1 << 1 | 1 << 3 | 1 << 7);
/// Duty positions 0, 1, 3, 5 (start pair, timekeeper, aligned).
static FOLLOW_STEPS: StepTable = step_table(1 << 0 | 1 << 1 | 1 << 3 | 1 << 5);
/// Duty positions 0, 1, 9 (start pair, anarchy).
static ANARCHIST_STEPS: StepTable = step_table(1 << 0 | 1 << 1 | 1 << 9);

/// The shared virtual clock learned from (or established by) a leader.
/// `pub(crate)` so the aggregate cohort driver can mirror it and hand it
/// to an ejected leader.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Clock {
    /// Alignment-domain identifier.
    pub(crate) epoch: u64,
    /// Round counter value at `base_local`'s round.
    pub(crate) rho_base: u64,
    /// A local slot known to be a round start where `rho_base` held.
    pub(crate) base_local: u64,
}

impl Clock {
    /// The round counter for the round starting at `round_start_local`.
    /// Self-advances between beacons: followers keep counting rounds even
    /// through leaderless stretches (engineering resolution #3).
    pub(crate) fn rho(&self, round_start_local: u64) -> u64 {
        debug_assert!(round_start_local >= self.base_local);
        self.rho_base + (round_start_local - self.base_local) / ROUND_LEN
    }
}

/// Leader sub-phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    /// Won the claim; keep one timekeeper slot free for the old leader's
    /// handoff before beaconing.
    Takeover { timekeepers_to_skip: u8 },
    /// Beaconing every timekeeper slot.
    Active,
    /// Deposed: transmit the data handoff in the next timekeeper slot.
    HandingOff,
}

#[derive(Debug)]
enum State {
    /// Listening for a busy run followed by silence (the start pair plus
    /// the guaranteed-silent guard slot behind it). The paper synchronizes
    /// on "two consecutive slots with messages or collisions", but an
    /// anarchist firing in the round's last slot makes (anarchy, start)
    /// busy pairs too; waiting for the trailing silence disambiguates —
    /// busy runs always end at round position 1, so the anchor is the
    /// run's last slot minus 1.
    SyncListen {
        waited: u64,
        prev_busy: bool,
        prev2_busy: bool,
    },
    /// Initiating a round train: transmit two start messages.
    SyncAnnounce { sent: u8 },
    /// SLINGSHOT: pullback claims, watching the timekeeper for leaders.
    Slingshot {
        /// Election slots left in the pullback budget.
        claims_left: u64,
        /// Heard someone else's successful claim with a deadline at least
        /// ours; stop claiming and wait for their beacon.
        waiting_beacon: bool,
        /// Timekeeper slots waited while `waiting_beacon`.
        waiting_rounds: u32,
        /// Set in an election slot when this job transmitted a claim.
        claimed: bool,
    },
    /// FOLLOW-THE-LEADER: run ALIGNED in virtual time.
    Follow {
        trim_start: u64,
        class: u32,
        job: Option<AlignedJob>,
    },
    /// BECOME-LEADER.
    Leader { phase: LeaderPhase },
    /// Released the slingshot: transmit data in anarchy slots.
    Anarchist,
    /// Succeeded (or irrecoverably finished).
    Done,
}

/// Fresh SLINGSHOT state with a full pullback budget.
fn slingshot_state(params: &PunctualParams, window: u64) -> State {
    State::Slingshot {
        claims_left: params.pullback_election_slots(window),
        waiting_beacon: false,
        waiting_rounds: 0,
        claimed: false,
    }
}

/// FOLLOW state for a virtual window of `rem_v` rounds starting at the
/// round counter `rho_now`; anarchist fallback when the trimmed class is
/// below the ALIGNED floor.
fn follow_state(params: &PunctualParams, rho_now: u64, rem_v: u64) -> State {
    match trim_class(rho_now, rho_now.saturating_add(rem_v)) {
        Some((trim_start, class)) if class >= params.aligned.min_class => State::Follow {
            trim_start,
            class,
            job: None,
        },
        _ => State::Anarchist,
    }
}

/// Short stable label for a state, used for probe phase spans. One label
/// per top-level state: leader sub-phases and slingshot flags are details
/// a trace reader does not need as separate tracks.
fn state_tag(state: &State) -> &'static str {
    match state {
        State::SyncListen { .. } => "sync-listen",
        State::SyncAnnounce { .. } => "sync-announce",
        State::Slingshot { .. } => "slingshot",
        State::Follow { .. } => "follow",
        State::Leader { .. } => "leader",
        State::Anarchist => "anarchist",
        State::Done => "done",
    }
}

/// The PUNCTUAL protocol for one job. Implements
/// [`dcr_sim::engine::Protocol`]; requires **no** aligned clock from the
/// engine.
#[derive(Debug)]
pub struct PunctualProtocol {
    params: PunctualParams,
    state: State,
    /// A local slot index known to be a round start (once synchronized).
    anchor: Option<u64>,
    clock: Option<Clock>,
    succeeded: bool,
    last_prob: f64,
    /// Window the cached probabilities below were computed for (0 = none).
    /// `claim_probability`/`anarchy_probability` cost a `log2` + `powi`
    /// and depend only on the (per-job constant) window, so the hot
    /// election/anarchy branches read these instead of libm.
    prob_window: u64,
    claim_p: f64,
    anarchy_p: f64,
    /// Probe event buffer; disarmed (and free) unless the engine asks.
    probe: EventBuf,
}

impl PunctualProtocol {
    /// Build the protocol.
    pub fn new(params: PunctualParams) -> Self {
        Self {
            params,
            state: State::SyncListen {
                waited: 0,
                prev_busy: false,
                prev2_busy: false,
            },
            anchor: None,
            clock: None,
            succeeded: false,
            last_prob: 0.0,
            prob_window: 0,
            claim_p: 0.0,
            anarchy_p: 0.0,
            probe: EventBuf::default(),
        }
    }

    /// A job ejected from an aggregate class after winning an election:
    /// it enters exactly the state its exact-path twin would hold after a
    /// successful claim — `Leader(Takeover)` with one timekeeper left for
    /// the (nonexistent, in the from-scratch case) old leader's handoff.
    /// `anchor_local` is the round anchor in the job's local time and
    /// `clock` whatever virtual clock the aggregate had mirrored.
    pub(crate) fn leader_takeover(
        params: PunctualParams,
        anchor_local: u64,
        clock: Option<Clock>,
        probed: bool,
    ) -> Self {
        let mut p = Self::new(params);
        p.state = State::Leader {
            phase: LeaderPhase::Takeover {
                timekeepers_to_skip: 1,
            },
        };
        p.anchor = Some(anchor_local);
        p.clock = clock;
        if probed {
            p.probe.arm();
            p.probe.phase(state_tag(&p.state));
        }
        p
    }

    /// Factory closure for [`dcr_sim::engine::Engine::add_jobs`].
    pub fn factory(
        params: PunctualParams,
    ) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(PunctualProtocol::new(params))
    }

    /// True once this job delivered its data message.
    pub fn has_succeeded(&self) -> bool {
        self.succeeded
    }

    /// The (claim, anarchy) transmission probabilities for `window`,
    /// computed once per job instead of once per election/anarchy slot.
    #[inline]
    fn cached_probs(&mut self, window: u64) -> (f64, f64) {
        if self.prob_window != window {
            self.prob_window = window;
            self.claim_p = self.params.claim_probability(window);
            self.anarchy_p = self.params.anarchy_probability(window);
        }
        (self.claim_p, self.anarchy_p)
    }

    /// True while the job is an anarchist (diagnostic for experiments).
    pub fn is_anarchist(&self) -> bool {
        matches!(self.state, State::Anarchist)
    }

    /// True while the job is the (active or taking-over) leader.
    pub fn is_leader(&self) -> bool {
        matches!(self.state, State::Leader { .. })
    }

    /// Position of local slot `l` within its round.
    fn pos(&self, l: u64) -> u64 {
        let anchor = self.anchor.expect("synchronized");
        (l - anchor) % ROUND_LEN
    }

    /// Rounds remaining in this job's window from local slot `l`.
    fn remaining_rounds(&self, ctx: &JobCtx, l: u64) -> u64 {
        (ctx.window - l) / ROUND_LEN
    }

    /// Timekeeper-slot bookkeeping shared by several states.
    fn on_timekeeper(&mut self, ctx: &JobCtx, l: u64, fb: &Feedback, rng: &mut dyn RngCore) {
        let my_rem = self.remaining_rounds(ctx, l);
        let round_start = l - self.pos(l);
        let beacon = fb.payload().and_then(PunctualMsg::decode);
        let old_epoch = self.clock.map(|c| c.epoch);
        if let Some(PunctualMsg::Beacon { epoch, rho, .. }) = beacon {
            self.clock = Some(Clock {
                epoch,
                rho_base: rho,
                base_local: round_start,
            });
        }
        let rho_now = self.clock.map(|c| c.rho(round_start));

        let next: Option<State> = match &mut self.state {
            State::Slingshot {
                claims_left,
                waiting_beacon,
                waiting_rounds,
                ..
            } => match beacon {
                Some(PunctualMsg::Beacon {
                    leader_remaining, ..
                }) => {
                    if leader_remaining >= my_rem {
                        Some(follow_state(&self.params, rho_now.unwrap(), my_rem))
                    } else if *claims_left == 0 && !*waiting_beacon {
                        // Final check (Figure 2): a leader covering at least
                        // half the remaining window is good enough — round
                        // the window down and follow; otherwise release.
                        if leader_remaining >= my_rem / 2 {
                            Some(follow_state(
                                &self.params,
                                rho_now.unwrap(),
                                leader_remaining.min(my_rem),
                            ))
                        } else {
                            Some(State::Anarchist)
                        }
                    } else {
                        None
                    }
                }
                _ => {
                    if *waiting_beacon {
                        // The claimant we deferred to has not beaconed yet.
                        *waiting_rounds += 1;
                        if *waiting_rounds > self.params.beacon_loss_tolerance {
                            *waiting_beacon = false;
                            *waiting_rounds = 0;
                        }
                        None
                    } else if *claims_left == 0 {
                        // Pullback over, no leader in sight: release.
                        Some(State::Anarchist)
                    } else {
                        None
                    }
                }
            },
            State::Follow { .. } => match beacon {
                Some(PunctualMsg::Beacon {
                    epoch,
                    leader_remaining,
                    ..
                }) if old_epoch != Some(epoch) => {
                    // Epoch change: the alignment domain we trimmed against
                    // is gone — re-decide against the new leadership
                    // (engineering resolution #2).
                    if leader_remaining >= my_rem {
                        Some(follow_state(&self.params, rho_now.unwrap(), my_rem))
                    } else {
                        Some(slingshot_state(&self.params, ctx.window))
                    }
                }
                _ => None,
            },
            State::Leader { phase } => {
                if let LeaderPhase::Takeover {
                    timekeepers_to_skip,
                } = phase
                {
                    if *timekeepers_to_skip > 0 {
                        *timekeepers_to_skip -= 1;
                    }
                    if *timekeepers_to_skip == 0 {
                        if self.clock.is_none() {
                            // Never heard a predecessor: fresh epoch.
                            self.clock = Some(Clock {
                                epoch: rng.next_u64(),
                                rho_base: 0,
                                base_local: round_start,
                            });
                        }
                        *phase = LeaderPhase::Active;
                    }
                }
                None
            }
            _ => None,
        };
        if let Some(st) = next {
            self.state = st;
        }
    }

    /// Record a state transition for the probe layer: a phase span per
    /// state, plus the two headline instants E19 cares about. Called after
    /// each acted slot (the only places state can change), so emission
    /// slots are identical across scheduling modes.
    fn note_transition(&mut self, before: &'static str) {
        let now = state_tag(&self.state);
        if now == before {
            return;
        }
        self.probe.phase(now);
        if now == "anarchist" {
            self.probe.push(ProbeEvent::AnarchistConversion {
                from: before.to_string(),
            });
        }
        if before == "slingshot" && now == "leader" {
            self.probe.push(ProbeEvent::LeaderElected);
        }
    }

    fn act_slot(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        self.last_prob = 0.0;
        let l = ctx.local_time;

        // Pre-synchronization states act without a round anchor.
        match &mut self.state {
            State::SyncListen { .. } => return Action::Listen,
            State::SyncAnnounce { sent } => {
                if *sent == 0 {
                    self.anchor = Some(l);
                }
                *sent += 1;
                let finished = *sent == 2;
                self.last_prob = 1.0;
                if finished {
                    self.state = slingshot_state(&self.params, ctx.window);
                }
                return Action::Transmit(PunctualMsg::Start.encode());
            }
            State::Done => return Action::Listen,
            _ => {}
        }

        let pos = self.pos(l);
        let round_start = l - pos;
        match slot_role(pos) {
            SlotRole::Start => {
                // Every synchronized live job keeps the round train
                // detectable (Figure 2: "from this point on, j always
                // broadcasts start messages in the first two slots").
                self.last_prob = 1.0;
                Action::Transmit(PunctualMsg::Start.encode())
            }
            // Guard slots are guaranteed silent while the train lives and
            // no state reacts to them: radio off.
            SlotRole::Guard => Action::Sleep,
            SlotRole::Timekeeper => {
                let rem = self.remaining_rounds(ctx, l);
                let clock = self.clock;
                match &mut self.state {
                    State::Leader { phase } => match phase {
                        LeaderPhase::Takeover { .. } => Action::Listen,
                        LeaderPhase::Active => {
                            if rem <= 1 {
                                // Last timekeeper slot of the window:
                                // abdicate, broadcasting the data message.
                                self.last_prob = 1.0;
                                Action::Transmit(Payload::Data(ctx.id))
                            } else {
                                let clock = clock.expect("active leader has a clock");
                                self.last_prob = 1.0;
                                Action::Transmit(
                                    PunctualMsg::Beacon {
                                        epoch: clock.epoch,
                                        rho: clock.rho(round_start),
                                        leader_remaining: rem,
                                    }
                                    .encode(),
                                )
                            }
                        }
                        LeaderPhase::HandingOff => {
                            // Deposed: one shot at our data, then step aside.
                            self.last_prob = 1.0;
                            Action::Transmit(Payload::Data(ctx.id))
                        }
                    },
                    // An anarchist never reads the clock again and never
                    // leaves anarchy: beacons are dead to it.
                    State::Anarchist => Action::Sleep,
                    _ => Action::Listen,
                }
            }
            SlotRole::Aligned => {
                let clock = self.clock;
                let params = self.params;
                let probe_on = self.probe.enabled();
                if let State::Follow {
                    trim_start,
                    class,
                    job,
                } = &mut self.state
                {
                    let rho = clock.expect("follower has a clock").rho(round_start);
                    if rho < *trim_start {
                        return Action::Listen;
                    }
                    let j = job.get_or_insert_with(|| {
                        let mut j = AlignedJob::new(params.aligned, ctx.id, *class, *trim_start);
                        if probe_on {
                            j.arm_probe();
                        }
                        j
                    });
                    let action = j.decide(rho, rng);
                    self.last_prob = j.last_prob();
                    match action {
                        AlignedAction::Idle => Action::Listen,
                        AlignedAction::Control => Action::Transmit(j.control_payload()),
                        AlignedAction::Data => Action::Transmit(j.data_payload()),
                        // Keep listening so on_feedback still observes the
                        // success/give-up transitions the same slot.
                        AlignedAction::Doze => Action::Listen,
                    }
                } else {
                    // Only followers run the embedded ALIGNED instance.
                    Action::Sleep
                }
            }
            SlotRole::Election => {
                let p = self.cached_probs(ctx.window).0;
                match &mut self.state {
                    State::Slingshot {
                        claims_left,
                        waiting_beacon,
                        claimed,
                        ..
                    } => {
                        *claimed = false;
                        if !*waiting_beacon && *claims_left > 0 {
                            *claims_left -= 1;
                            self.last_prob = p;
                            if rng.gen_bool(p) {
                                *claimed = true;
                                let remaining = (ctx.window - l) / ROUND_LEN;
                                return Action::Transmit(PunctualMsg::Claim { remaining }.encode());
                            }
                        }
                        // Claiming or not, a slingshotter watches every
                        // election slot for competing claims.
                        Action::Listen
                    }
                    // The leader listens for claims that depose it.
                    State::Leader { .. } => Action::Listen,
                    // Followers and anarchists neither claim nor react to
                    // whoever wins an election.
                    _ => Action::Sleep,
                }
            }
            SlotRole::Anarchy => {
                if matches!(self.state, State::Anarchist) && !self.succeeded {
                    let p = self.cached_probs(ctx.window).1;
                    self.last_prob = p;
                    if rng.gen_bool(p) {
                        return Action::Transmit(Payload::Data(ctx.id));
                    }
                }
                // Anarchy shots carry data, not protocol state: nobody
                // needs to hear them.
                Action::Sleep
            }
        }
    }

    fn observe_slot(&mut self, ctx: &JobCtx, fb: &Feedback, rng: &mut dyn RngCore) {
        let l = ctx.local_time;

        // Global: my data message got through (leader handoff/abdication,
        // anarchy shot, or aligned broadcast — all routes end here).
        if let Feedback::Success { src, payload } = fb {
            if *src == ctx.id && payload.is_data() {
                self.succeeded = true;
                // The embedded follower's pending events must outlive it.
                if let State::Follow { job: Some(j), .. } = &mut self.state {
                    self.probe.absorb(j.probe_mut());
                }
                self.state = State::Done;
                return;
            }
        }

        match &mut self.state {
            State::SyncListen {
                waited,
                prev_busy,
                prev2_busy,
            } => {
                let busy = fb.is_busy();
                if !busy && *prev_busy && *prev2_busy {
                    // Slots (l-2, l-1) were busy and l is silent: l-1 was
                    // the second start slot, so l-2 starts the round.
                    // (Busy runs can be length 3 when an anarchist fires in
                    // the preceding round's last slot, but they always end
                    // at round position 1, so "last busy − 1" is exact.)
                    self.anchor = Some(l - 2);
                    self.state = slingshot_state(&self.params, ctx.window);
                } else {
                    *prev2_busy = *prev_busy;
                    *prev_busy = busy;
                    // Any activity means a round train (or another
                    // announcer) exists: reset the give-up timer and wait
                    // for the busy-busy-silent pattern instead of blurting
                    // an out-of-phase start pair into it. Only a genuinely
                    // silent stretch triggers SYNCHRONIZE.
                    *waited = if busy { 0 } else { *waited + 1 };
                    if *waited >= self.params.sync_listen_slots {
                        self.state = State::SyncAnnounce { sent: 0 };
                    }
                }
                return;
            }
            State::SyncAnnounce { .. } | State::Done => return,
            _ => {}
        }

        let pos = self.pos(l);
        let round_start = l - pos;
        match slot_role(pos) {
            SlotRole::Timekeeper => {
                self.on_timekeeper(ctx, l, fb, rng);
                // A deposed leader that just used its handoff slot without
                // succeeding (collision/jam) steps aside anyway and waits
                // for the new leader's beacon (resolution #4).
                if matches!(
                    self.state,
                    State::Leader {
                        phase: LeaderPhase::HandingOff
                    }
                ) {
                    self.state = State::Slingshot {
                        claims_left: 0,
                        waiting_beacon: true,
                        waiting_rounds: 0,
                        claimed: false,
                    };
                }
            }
            SlotRole::Election => {
                let my_rem = self.remaining_rounds(ctx, l);
                let msg = fb.payload().and_then(PunctualMsg::decode);
                let next: Option<State> = match (&mut self.state, fb, msg) {
                    // My own claim succeeded: I am the leader.
                    (
                        State::Slingshot { claimed: true, .. },
                        Feedback::Success { src, .. },
                        Some(PunctualMsg::Claim { .. }),
                    ) if *src == ctx.id => Some(State::Leader {
                        phase: LeaderPhase::Takeover {
                            timekeepers_to_skip: 1,
                        },
                    }),
                    // Someone else's claim succeeded while I slingshot.
                    (
                        State::Slingshot {
                            waiting_beacon,
                            waiting_rounds,
                            ..
                        },
                        _,
                        Some(PunctualMsg::Claim { remaining }),
                    ) => {
                        if remaining >= my_rem {
                            *waiting_beacon = true;
                            *waiting_rounds = 0;
                        }
                        // An earlier-deadline claimer is ignored: Figure 2
                        // says we keep running SLINGSHOT.
                        None
                    }
                    // A successful claim reaches the current leader.
                    (State::Leader { phase }, _, Some(PunctualMsg::Claim { remaining })) => {
                        match *phase {
                            // Step aside only for a later deadline; claims
                            // from jobs that missed our beacons can carry
                            // earlier deadlines.
                            LeaderPhase::Active if remaining >= my_rem => {
                                *phase = LeaderPhase::HandingOff;
                                None
                            }
                            // Won the claim but someone later-deadlined won
                            // the next one before we ever beaconed: defer
                            // to them entirely.
                            LeaderPhase::Takeover { .. } if remaining >= my_rem => {
                                Some(State::Slingshot {
                                    claims_left: 0,
                                    waiting_beacon: true,
                                    waiting_rounds: 0,
                                    claimed: false,
                                })
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                };
                if let Some(st) = next {
                    self.state = st;
                }
            }
            SlotRole::Aligned => {
                let clock = self.clock;
                if let State::Follow {
                    trim_start, job, ..
                } = &mut self.state
                {
                    let rho = clock.expect("follower has a clock").rho(round_start);
                    if rho >= *trim_start {
                        if let Some(j) = job.as_mut() {
                            j.observe(rho, fb);
                            if j.succeeded() {
                                self.succeeded = true;
                                self.probe.absorb(j.probe_mut());
                                self.state = State::Done;
                            } else if j.gave_up() {
                                // Truncated: release into anarchy rather
                                // than going silent (resolution #5).
                                self.probe.absorb(j.probe_mut());
                                self.state = State::Anarchist;
                            }
                        }
                    }
                }
            }
            SlotRole::Start | SlotRole::Guard | SlotRole::Anarchy => {}
        }
    }
}

impl Protocol for PunctualProtocol {
    fn on_activate(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) {
        if ctx.probed {
            self.probe.arm();
            self.probe.phase(state_tag(&self.state));
        }
    }

    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        let before = if self.probe.enabled() {
            Some(state_tag(&self.state))
        } else {
            None
        };
        let action = self.act_slot(ctx, rng);
        if let Some(before) = before {
            self.note_transition(before);
        }
        action
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, rng: &mut dyn RngCore) {
        let before = if self.probe.enabled() {
            Some(state_tag(&self.state))
        } else {
            None
        };
        self.observe_slot(ctx, fb, rng);
        if let Some(before) = before {
            self.note_transition(before);
        }
    }

    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        self.probe.drain_into(out);
        if let State::Follow { job: Some(j), .. } = &mut self.state {
            j.drain_probe(out);
        }
    }

    fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
        // PUNCTUAL is phase-synchronized for any `(release, deadline)` pair
        // — no alignment precondition — so every class of identical jobs
        // aggregates under cohort fidelity.
        Some(CohortTx::Class {
            tag: punctual_class_tag(&self.params),
        })
    }

    fn class_driver(&self, ctx: &JobCtx, cctx: &ClassCtx) -> Option<Box<dyn ClassDriver>> {
        let _ = ctx;
        Some(Box::new(PunctualCohort::new(self.params, cctx)))
    }

    fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        Some(self.last_prob)
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        // Round positions where the current state needs to act (cf.
        // `slot_role`: start = 0,1; timekeeper = 3; aligned = 5;
        // election = 7; anarchy = 9). Every other position is a Sleep with
        // no RNG draw or state change, so the engine may park the job
        // between wakes. The state can only change in an acted slot, so
        // the mask stays valid for the whole parked stretch. This is the
        // hottest virtual call in punctual workloads (once per wake, ~4
        // wakes per round per job), so the per-mask "steps to the next
        // duty position" is precomputed into a table indexed by round
        // position instead of minimizing over the mask every call.
        let steps: &StepTable = match self.state {
            // Pre-sync states listen (or announce) in every slot.
            State::SyncListen { .. } | State::SyncAnnounce { .. } => return None,
            State::Done => return Some(u64::MAX),
            // Start pair + timekeeper beacons + election claims (a
            // claimless slingshotter still watches elections).
            State::Slingshot { .. } | State::Leader { .. } => &SLINGSHOT_STEPS,
            // Start pair + timekeeper beacons + aligned virtual slots.
            State::Follow { .. } => &FOLLOW_STEPS,
            // Start pair + the anarchy slot.
            State::Anarchist => &ANARCHIST_STEPS,
        };
        let anchor = self.anchor.expect("synchronized states have an anchor");
        let pos = (ctx.local_time - anchor) % ROUND_LEN;
        Some(ctx.local_time + u64::from(steps[pos as usize]))
    }

    fn duty_cycle(&self, _ctx: &JobCtx) -> Option<DutyCycle> {
        // Once synchronized, a job's schedule is periodic in the round: the
        // start pair (positions 0, 1) is an unconditional `Start` broadcast
        // that no state reacts to — declared as standing transmissions so
        // the engine accounts it in aggregate — and the remaining duty
        // positions depend on the state exactly as in `next_wake`. The
        // state (hence the mask) can only change in an acted slot, and
        // every synchronized state declares a cycle until `Done`, so the
        // engine's persistence contract holds.
        let (wake_mask, listen_mask): (u64, u64) = match self.state {
            // Pre-synchronization states poll densely; `Done` is retired by
            // the engine before this is ever consulted.
            State::SyncListen { .. } | State::SyncAnnounce { .. } | State::Done => return None,
            // Timekeeper beacons + election claims (a claimless
            // slingshotter still watches elections). Slingshot reactions to
            // the beacon depend on per-member state (claims left, deadline),
            // so the timekeeper slot stays a full wake for them.
            State::Slingshot { .. } | State::Leader { .. } => (1 << 3 | 1 << 7, 0),
            // Aligned virtual slots need a real act; the timekeeper beacon
            // is a pure listen, group-resolved via `duty_listen` (a stable
            // leader's beacon re-states what every follower's clock already
            // knows).
            State::Follow { .. } => (1 << 5, 1 << 3),
            // Only the anarchy slot.
            State::Anarchist => (1 << 9, 0),
        };
        Some(DutyCycle {
            period: ROUND_LEN as u8,
            wake_mask,
            tx_mask: 1 << 0 | 1 << 1,
            tx_payload: PunctualMsg::Start.encode(),
            listen_mask,
            anchor_local: self.anchor.expect("synchronized states have an anchor"),
        })
    }

    fn duty_listen(&self, ctx: &JobCtx, fb: &Feedback) -> bool {
        // Only `Follow` declares a listen position (the timekeeper slot).
        // Its `on_timekeeper` arm reacts solely to epoch changes, and the
        // clock refresh a beacon performs is semantically idempotent when
        // the epoch matches and the round count agrees with what the clock
        // already predicts (both advance one round per round on the same
        // grid, so agreement now means agreement at every future round
        // start). Every follower in a duty group shares the leader's epoch
        // and round count — they all heard the same beacon history — so one
        // member's answer holds for all. Any non-beacon feedback (silence,
        // noise, a deposed leader's data handoff) leaves a follower's state
        // untouched.
        match fb.payload().and_then(PunctualMsg::decode) {
            Some(PunctualMsg::Beacon { epoch, rho, .. }) => match self.clock {
                Some(c) => {
                    let l = ctx.local_time;
                    let round_start = l - self.pos(l);
                    c.epoch == epoch && c.rho(round_start) == rho
                }
                None => false,
            },
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::{count_trials, run_trials};

    fn test_params() -> PunctualParams {
        PunctualParams::laptop()
    }

    fn run_batch(n: u32, w: u64, seed: u64) -> dcr_sim::metrics::SimReport {
        let mut e = Engine::new(EngineConfig::default(), seed);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, w),
                Box::new(PunctualProtocol::new(test_params())),
            );
        }
        e.run()
    }

    #[test]
    fn lone_job_elects_itself_and_delivers() {
        // One job, window 2^13 = 8192 slots (819 rounds): it must sync,
        // claim leadership eventually, and deliver via abdication (or go
        // anarchist and deliver there).
        let (hits, total) = count_trials(30, 42, |_, seed| {
            run_batch(1, 1 << 13, seed).outcome(0).is_success()
        });
        assert!(hits >= total - 2, "{hits}/{total}");
    }

    #[test]
    fn small_batch_mostly_succeeds() {
        // 6 jobs sharing a 2^13 window: one becomes leader, the rest follow
        // and run ALIGNED (or anarchist fallback); most should deliver.
        let fractions: Vec<f64> = run_trials(15, 7, |_, seed| {
            run_batch(6, 1 << 13, seed).success_fraction()
        })
        .into_iter()
        .map(|t| t.value)
        .collect();
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        assert!(mean > 0.8, "mean success fraction {mean}");
    }

    #[test]
    fn no_panic_on_tiny_window() {
        // A window too small to even synchronize must fail gracefully.
        let r = run_batch(3, 16, 3);
        assert_eq!(r.outcomes().len(), 3);
    }

    #[test]
    fn staggered_arrivals_adopt_the_round_train() {
        // First job establishes rounds; later arrivals must sync onto the
        // same train and still mostly succeed.
        let (hits, total) = count_trials(15, 77, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            let w = 1u64 << 13;
            for i in 0..4u32 {
                let r = u64::from(i) * 37; // unaligned staggering
                e.add_job(
                    JobSpec::new(i, r, r + w),
                    Box::new(PunctualProtocol::new(test_params())),
                );
            }
            let rep = e.run();
            rep.successes() >= 3
        });
        assert!(hits as f64 / total as f64 > 0.7, "{hits}/{total}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_batch(5, 1 << 12, 99);
        let b = run_batch(5, 1 << 12, 99);
        assert_eq!(a.outcomes(), b.outcomes());
        assert_eq!(a.counts, b.counts);
    }
}
