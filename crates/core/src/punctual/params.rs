//! PUNCTUAL parameters and round geometry.

use crate::aligned::params::AlignedParams;
use serde::{Deserialize, Serialize};

/// Number of slots in one PUNCTUAL round: two synch (start) slots, then
/// guard slots alternating with the four payload slots.
pub const ROUND_LEN: u64 = 10;

/// The role of each slot within a round (Section 4, "Rounds and slots").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRole {
    /// Slots 0–1: every synchronized job broadcasts a start message, so the
    /// pair is always busy — the only two consecutive busy slots in a
    /// round, which is what new arrivals lock onto.
    Start,
    /// Empty separator slots (2, 4, 6, 8).
    Guard,
    /// Slot 3: the leader broadcasts its timekeeper beacon.
    Timekeeper,
    /// Slot 5: the embedded ALIGNED batch protocol runs here.
    Aligned,
    /// Slot 7: leaderless jobs transmit election claims here.
    Election,
    /// Slot 9: jobs that gave up on finding a leader transmit data here.
    Anarchy,
}

/// Map a position `0..ROUND_LEN` within a round to its role.
pub fn slot_role(pos: u64) -> SlotRole {
    match pos {
        0 | 1 => SlotRole::Start,
        3 => SlotRole::Timekeeper,
        5 => SlotRole::Aligned,
        7 => SlotRole::Election,
        9 => SlotRole::Anarchy,
        2 | 4 | 6 | 8 => SlotRole::Guard,
        _ => panic!("slot position {pos} out of round"),
    }
}

/// Tunable constants of PUNCTUAL.
///
/// The paper's SLINGSHOT uses transmission probability `1/(w·log³w)` for
/// `λ·log⁷w` slots and an anarchist probability of `λ·log(w)/w`. The polylog
/// *exponents* are parameters here (`pullback_prob_logexp = 3`,
/// `pullback_len_logexp = 7` in the paper): at laptop-scale window sizes
/// `log⁷w` exceeds any simulable window, so the default preset uses smaller
/// exponents that preserve the structural relationships — expected claims
/// per dense class ≫ 1, per-slot election contention ≪ 1 — at observable
/// scales. All probabilities are computed against the window measured in
/// *rounds* (`w_r = w/10`), since that is how many slots of each role the
/// window actually contains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PunctualParams {
    /// Parameters of the embedded ALIGNED protocol (virtual time: one
    /// aligned slot per round).
    pub aligned: AlignedParams,
    /// The λ multiplier for pullback length and anarchist probability.
    pub lambda: u64,
    /// `a` in the claim probability `1/(w_r·log2(w_r)^a)` (paper: 3).
    pub pullback_prob_logexp: u32,
    /// `b` in the pullback duration `λ·log2(w_r)^b` election slots
    /// (paper: 7).
    pub pullback_len_logexp: u32,
    /// How many slots a new arrival listens for a start-pair before
    /// initiating its own round train (paper: 10; default 20 — removes the
    /// near-simultaneous-arrival race, see the module docs).
    pub sync_listen_slots: u64,
    /// Consecutive silent timekeeper slots before a follower considers the
    /// leadership lost (engineering addition).
    pub beacon_loss_tolerance: u32,
}

impl PunctualParams {
    /// Laptop-scale defaults on top of the given ALIGNED parameters.
    pub fn new(aligned: AlignedParams) -> Self {
        Self {
            aligned,
            lambda: 2,
            pullback_prob_logexp: 1,
            pullback_len_logexp: 2,
            sync_listen_slots: 2 * ROUND_LEN,
            beacon_loss_tolerance: 3,
        }
    }

    /// The preset the experiment suite runs with: virtual-ALIGNED floor at
    /// class 8 (the smallest `min_class` whose deterministic estimation
    /// overhead `λΣℓ²/2^ℓ ≈ 0.64` leaves room — see
    /// `AlignedParams::overhead_fraction`), and a pullback long enough
    /// (`λ·log³`) that a dense class elects a leader w.h.p. at windows of
    /// `2^13`–`2^17` slots.
    pub fn laptop() -> Self {
        Self {
            aligned: crate::aligned::params::AlignedParams::new(1, 2, 8),
            lambda: 4,
            pullback_prob_logexp: 1,
            pullback_len_logexp: 3,
            sync_listen_slots: 2 * ROUND_LEN,
            beacon_loss_tolerance: 3,
        }
    }

    /// The paper's constants (needs astronomically large windows to show
    /// its guarantees; provided for fidelity and ablations).
    pub fn paper() -> Self {
        Self {
            aligned: AlignedParams::paper(),
            lambda: 4,
            pullback_prob_logexp: 3,
            pullback_len_logexp: 7,
            sync_listen_slots: ROUND_LEN,
            beacon_loss_tolerance: 3,
        }
    }

    /// Window size measured in rounds (how many slots of each role fit).
    pub fn window_rounds(&self, w: u64) -> u64 {
        (w / ROUND_LEN).max(1)
    }

    /// SLINGSHOT pullback claim probability for a job with window `w`
    /// slots: `1/(w_r · log2(w_r)^a)`, clamped to `(0, 1/2]`.
    pub fn claim_probability(&self, w: u64) -> f64 {
        let wr = self.window_rounds(w).max(2) as f64;
        let lg = wr.log2().max(1.0);
        (1.0 / (wr * lg.powi(self.pullback_prob_logexp as i32))).min(0.5)
    }

    /// Number of election slots the pullback stage lasts:
    /// `max(1, ⌈λ·log2(w_r)^b⌉)`, capped at `w_r/4`.
    ///
    /// The cap is a scale correction: the paper's `λ·log⁷w` is
    /// asymptotically `o(w)` but exceeds any simulable window, and a
    /// pullback longer than the window means the slingshot never releases.
    /// A quarter of the window preserves the paper's structure (pullback
    /// ≪ window, with time left for the anarchy fallback).
    pub fn pullback_election_slots(&self, w: u64) -> u64 {
        let wr = self.window_rounds(w).max(2) as f64;
        let lg = wr.log2().max(1.0);
        let uncapped = (((self.lambda as f64) * lg.powi(self.pullback_len_logexp as i32)).ceil()
            as u64)
            .max(1);
        uncapped.min((self.window_rounds(w) / 4).max(1))
    }

    /// Anarchist per-anarchy-slot transmission probability:
    /// `min(1/2, λ·log2(w_r)/w_r)`, so the expected number of anarchy
    /// attempts over the window is `λ·log2(w_r)` as in the paper.
    pub fn anarchy_probability(&self, w: u64) -> f64 {
        let wr = self.window_rounds(w).max(2) as f64;
        ((self.lambda as f64) * wr.log2() / wr).min(0.5)
    }
}

impl Default for PunctualParams {
    fn default() -> Self {
        Self::new(AlignedParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_tile_the_round() {
        let roles: Vec<SlotRole> = (0..ROUND_LEN).map(slot_role).collect();
        assert_eq!(roles[0], SlotRole::Start);
        assert_eq!(roles[1], SlotRole::Start);
        assert_eq!(roles[3], SlotRole::Timekeeper);
        assert_eq!(roles[5], SlotRole::Aligned);
        assert_eq!(roles[7], SlotRole::Election);
        assert_eq!(roles[9], SlotRole::Anarchy);
        assert_eq!(roles.iter().filter(|r| **r == SlotRole::Guard).count(), 4);
    }

    #[test]
    fn no_two_consecutive_payload_slots() {
        // The synchronization scheme relies on start slots being the only
        // consecutive busy pair; every payload slot must be fenced by
        // guards.
        for pos in 2..ROUND_LEN - 1 {
            let here = slot_role(pos) != SlotRole::Guard;
            let next = slot_role(pos + 1) != SlotRole::Guard;
            assert!(!(here && next), "payload slots {pos},{} adjacent", pos + 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of round")]
    fn position_past_round_panics() {
        let _ = slot_role(ROUND_LEN);
    }

    #[test]
    fn claim_probability_shrinks_with_window() {
        let p = PunctualParams::default();
        let small = p.claim_probability(1 << 8);
        let large = p.claim_probability(1 << 16);
        assert!(large < small);
        assert!(small <= 0.5);
        assert!(large > 0.0);
    }

    #[test]
    fn pullback_grows_polylog() {
        let p = PunctualParams::default();
        assert!(p.pullback_election_slots(1 << 16) > p.pullback_election_slots(1 << 8));
        assert!(p.pullback_election_slots(40) >= 1);
    }

    #[test]
    fn anarchy_probability_expected_attempts() {
        let p = PunctualParams::default();
        let w = 1u64 << 14;
        let wr = p.window_rounds(w) as f64;
        let expected_attempts = p.anarchy_probability(w) * wr;
        let target = p.lambda as f64 * wr.log2();
        assert!((expected_attempts - target).abs() < 1e-9);
    }

    #[test]
    fn paper_preset_exponents() {
        let p = PunctualParams::paper();
        assert_eq!(p.pullback_prob_logexp, 3);
        assert_eq!(p.pullback_len_logexp, 7);
        assert_eq!(p.aligned.tau, 64);
    }

    #[test]
    fn dense_class_elects_whp_in_expectation_arithmetic() {
        // Lemma 17's precondition in our parameterization: a class with
        // |S| ≥ w_r/log(w_r) jobs makes Σ (claims over pullback) ≫ 1.
        let p = PunctualParams::default();
        let w = 1u64 << 12;
        let wr = p.window_rounds(w) as f64;
        let s = wr / wr.log2();
        let expected_claims = s * p.claim_probability(w) * p.pullback_election_slots(w) as f64;
        assert!(expected_claims > 1.0, "expected_claims={expected_claims}");
    }
}
