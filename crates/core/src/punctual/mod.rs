//! **PUNCTUAL** — contention resolution for general windows with no global
//! clock (Section 4, Figure 2 of the paper).
//!
//! Time is grouped into **rounds** of ten slots: two *start* slots (every
//! synchronized job transmits, making the pair detectably busy), then guard
//! slots alternating with four payload slots — *timekeeper* (leader
//! beacons), *aligned* (the embedded ALIGNED batch protocol), *election*
//! (SLINGSHOT claims), and *anarchy* (fallback data transmissions).
//!
//! A job's life (all states live in [`protocol`]): synchronize onto the
//! round train, listen to the timekeeper; follow a suitable leader (trim
//! the window against the leader's clock per [`trim`], run ALIGNED in the
//! aligned slots), or run SLINGSHOT — pull back with a tiny claim
//! probability; on a successful claim, become the leader and serve as
//! everyone's clock; if no leader emerges, release the slingshot and become
//! an **anarchist**, transmitting the data message at `λ·log w / w` in
//! anarchy slots.
//!
//! ## Engineering resolutions (where the paper under-specifies)
//!
//! The paper's prose leaves several distributed corner cases open; our
//! choices (documented in DESIGN.md §2 and exercised by tests):
//!
//! 1. **Sync races.** New arrivals listen `2×ROUND_LEN` slots (not 10) for
//!    a start pair before initiating their own round train, which removes
//!    the near-simultaneous-arrival divergence.
//! 2. **Epochs.** A leader that never heard a predecessor's beacon starts a
//!    fresh random *epoch id*; followers abandon their embedded ALIGNED run
//!    and re-decide when the epoch changes, so at most one virtual
//!    time-alignment is live at a time.
//! 3. **Leaderless continuation.** Followers keep advancing the round
//!    counter locally when beacons stop; consistency within an epoch is
//!    preserved because every follower does the same.
//! 4. **Failed handoff.** A deposed or abdicating leader gets exactly one
//!    timekeeper slot for its data message (as in Figure 2); if that slot
//!    is jammed the ex-leader falls back to following/anarchy rather than
//!    silently dying.
//! 5. **Truncated followers.** A follower whose embedded ALIGNED run gives
//!    up (truncation, Lemma 12's bad event) falls back to anarchy instead
//!    of going silent.

pub mod cohort;
pub mod messages;
pub mod params;
pub mod protocol;
pub mod trim;

pub use params::{PunctualParams, SlotRole, ROUND_LEN};
