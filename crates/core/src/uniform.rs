//! The natural algorithm **UNIFORM** (Section 2.2).
//!
//! Each job picks `k = Θ(1)` slots uniformly at random in its window and
//! broadcasts its data message there. The paper proves this is simultaneously
//!
//! * good in aggregate — on γ-slack-feasible instances with `γ < 1/6`, a
//!   constant fraction of the `n` messages succeed w.h.p. (Lemma 4), and
//! * hopeless individually — on the harmonic instance
//!   (`dcr_workloads::generators::harmonic`) the small-window jobs face
//!   contention `≈ ln n` in every slot of their windows and succeed with
//!   probability only `O(ln n / n^{1-δ})` (Lemma 5).
//!
//! Experiments E2 and E3 reproduce both facts.

use dcr_sim::engine::{Action, CohortTx, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::probe::{EventBuf, ProbeEvent};
use rand::{Rng, RngCore};

/// The UNIFORM protocol with `k` broadcast attempts.
#[derive(Debug, Clone)]
pub struct Uniform {
    attempts: usize,
    /// Chosen local slots, sorted; populated at activation.
    chosen: Vec<u64>,
    succeeded: bool,
    probe: EventBuf,
}

impl Uniform {
    /// UNIFORM with `k` attempts per window (the paper's `Θ(1)`; `k = 1`
    /// is the canonical variant).
    pub fn new(attempts: usize) -> Self {
        assert!(attempts >= 1);
        Self {
            attempts,
            chosen: Vec::new(),
            succeeded: false,
            probe: EventBuf::default(),
        }
    }

    /// The canonical single-attempt UNIFORM.
    pub fn single() -> Self {
        Self::new(1)
    }

    /// The local slots this job chose (for tests).
    pub fn chosen_slots(&self) -> &[u64] {
        &self.chosen
    }
}

impl Protocol for Uniform {
    fn on_activate(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) {
        if ctx.probed {
            self.probe.arm();
            self.probe.phase("uniform");
        }
        // Sample `min(k, w)` distinct local slots by rejection — k is a
        // small constant, so this is O(k²) expected.
        let k = (self.attempts as u64).min(ctx.window) as usize;
        while self.chosen.len() < k {
            let slot = rng.gen_range(0..ctx.window);
            if !self.chosen.contains(&slot) {
                self.chosen.push(slot);
            }
        }
        self.chosen.sort_unstable();
    }

    fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
        if !self.succeeded && self.chosen.binary_search(&ctx.local_time).is_ok() {
            Action::Transmit(Payload::Data(ctx.id))
        } else {
            // Non-adaptive: feedback is only needed on our own attempts,
            // so the radio stays off otherwise (UNIFORM is the energy
            // floor in experiment E13).
            Action::Sleep
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &dcr_sim::slot::Feedback, _rng: &mut dyn RngCore) {
        if let dcr_sim::slot::Feedback::Success { src, payload } = fb {
            if *src == ctx.id && payload.is_data() {
                self.succeeded = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.succeeded
    }

    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        self.probe.drain_into(out);
    }

    fn tx_probability(&self, ctx: &JobCtx) -> Option<f64> {
        // A-priori per-slot probability: k/w (the quantity the paper sums
        // into C(t) when analysing UNIFORM).
        Some(self.attempts.min(ctx.window as usize) as f64 / ctx.window as f64)
    }

    fn cohort_tx(&self, ctx: &JobCtx) -> Option<CohortTx> {
        // The canonical k = 1 variant is exactly the engine's one-shot
        // aggregate model (one attempt, uniform over the window). k ≥ 2
        // draws distinct slots without replacement, which does not reduce
        // to one binomial per slot, so it stays on the exact path — as do
        // probed jobs, whose event streams must keep flowing.
        if ctx.probed || self.attempts != 1 {
            return None;
        }
        Some(CohortTx::OneShot)
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        // All attempt slots are drawn at activation, so the schedule is
        // fully known: sleep until the next chosen slot (or forever once
        // all attempts are spent or the message is delivered).
        if self.succeeded {
            return Some(u64::MAX);
        }
        let next = self.chosen.partition_point(|&s| s <= ctx.local_time);
        Some(self.chosen.get(next).copied().unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::run_trials;

    #[test]
    fn lone_uniform_job_always_succeeds() {
        for seed in 0..20 {
            let mut e = Engine::new(EngineConfig::default(), seed);
            e.add_job(JobSpec::new(0, 0, 16), Box::new(Uniform::single()));
            let r = e.run();
            assert!(r.outcome(0).is_success(), "seed {seed}");
        }
    }

    #[test]
    fn chosen_slots_are_distinct_and_in_window() {
        let mut e = Engine::new(EngineConfig::default(), 3);
        e.add_job(JobSpec::new(0, 0, 8), Box::new(Uniform::new(3)));
        let _ = e.run();
        // Behavioural check via success: with window 8 >= 3 attempts the
        // lone job must succeed (first attempt already does it).
    }

    #[test]
    fn attempts_capped_by_window() {
        // k = 10 attempts in a window of 4: must not panic or loop forever.
        let mut e = Engine::new(EngineConfig::default(), 5);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(Uniform::new(10)));
        let r = e.run();
        assert!(r.outcome(0).is_success());
    }

    #[test]
    fn two_jobs_large_window_usually_both_succeed() {
        // Collision probability is ~ k²/w; with w = 256 it is tiny.
        let (hits, total) = dcr_sim::runner::count_trials(200, 11, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            e.add_job(JobSpec::new(0, 0, 256), Box::new(Uniform::single()));
            e.add_job(JobSpec::new(1, 0, 256), Box::new(Uniform::single()));
            let r = e.run();
            r.successes() == 2
        });
        assert!(hits as f64 / total as f64 > 0.95, "{hits}/{total}");
    }

    #[test]
    fn batch_same_slot_count_collides_heavily() {
        // n jobs, window exactly n: contention 1 per slot; Lemma 4 regime
        // says Θ(n) succeed, but far from all.
        let n = 64u32;
        let fractions: Vec<f64> = run_trials(20, 13, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            for i in 0..n {
                e.add_job(
                    JobSpec::new(i, 0, u64::from(n)),
                    Box::new(Uniform::single()),
                );
            }
            e.run().success_fraction()
        })
        .into_iter()
        .map(|t| t.value)
        .collect();
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        // e^{-1} ≈ 0.37 of slots become singletons; empirically the success
        // fraction sits in a comfortably constant band.
        assert!(mean > 0.2 && mean < 0.6, "mean={mean}");
    }

    #[test]
    fn stops_after_success() {
        // After a success the job reports done and transmits no more; the
        // engine retires it, so a k=4 job in an otherwise empty channel
        // produces exactly one data success.
        let mut e = Engine::new(EngineConfig::default().with_trace(), 17);
        e.add_job(JobSpec::new(0, 0, 64), Box::new(Uniform::new(4)));
        let r = e.run();
        assert_eq!(r.counts.data_success, 1);
    }
}
