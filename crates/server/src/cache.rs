//! The content-addressed result cache.
//!
//! Finished experiments persist to `<dir>/<key>.json`, where `key` is
//! [`dcr_bench::runspec::cache_key`] — SHA-256 over the canonical JSON of
//! `(code version, spec)`. The key construction carries the whole cache
//! contract:
//!
//! * **stable under field reordering** — the spec is re-serialized from
//!   its typed form and canonicalized (keys sorted) before hashing, so
//!   two submissions of the same run hash identically no matter how the
//!   client ordered its JSON fields;
//! * **invalidated by any semantic change** — seed, trial count, `p_jam`,
//!   fidelity, every field of the spec feeds the hash;
//! * **invalidated by code changes** — the key includes the git revision
//!   (plus a dirty marker) captured at server start, so a rebuilt server
//!   never serves results computed by different code. Stale entries are
//!   simply never looked up again; they are garbage, not corruption.
//!
//! Writes go through a temp file and an atomic rename, so a crash
//! mid-write leaves no half-entry that a later lookup could trust.

use dcr_bench::runspec::ExperimentSpec;
use dcr_sim::prelude::ProbeRecord;
use dcr_stats::ExperimentReport;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Everything the server persists for one finished experiment — enough
/// to answer both `GET /experiments/:id` and an SSE replay without
/// re-executing a single slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The content key (also the experiment id and the file stem).
    pub key: String,
    /// Code version the result was computed under (diagnostic only; the
    /// key already commits to it).
    pub code_version: String,
    /// The spec as executed.
    pub spec: ExperimentSpec,
    /// The structured result.
    pub report: ExperimentReport,
    /// Probe events captured from trial 0.
    pub events: Vec<ProbeRecord>,
    /// Rendered human-readable summary.
    pub text: String,
}

/// A directory of [`CacheEntry`] files keyed by content hash.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Load the entry for `key`, if one exists and parses. A corrupt or
    /// unreadable file behaves as a miss: the run recomputes and the
    /// store overwrites it.
    pub fn load(&self, key: &str) -> Option<CacheEntry> {
        if !valid_key(key) {
            return None;
        }
        let raw = std::fs::read_to_string(self.path_of(key)).ok()?;
        serde_json::from_str(&raw).ok()
    }

    /// Persist `entry` under its key (atomic: temp file + rename).
    pub fn store(&self, entry: &CacheEntry) -> std::io::Result<()> {
        let json = serde_json::to_string(entry)
            .map_err(|e| std::io::Error::other(format!("serialize cache entry: {e:?}")))?;
        let tmp = self.dir.join(format!("{}.json.tmp", entry.key));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.path_of(&entry.key))
    }

    /// The cache directory (for log lines).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Keys are lowercase hex SHA-256 strings; anything else never touches
/// the filesystem (ids come in off the URL, so this is also the path
/// traversal guard).
pub fn valid_key(key: &str) -> bool {
    key.len() == 64
        && key
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_validated() {
        assert!(valid_key(&"a".repeat(64)));
        assert!(!valid_key(&"A".repeat(64)));
        assert!(!valid_key("../../etc/passwd"));
        assert!(!valid_key(&"a".repeat(63)));
    }
}
