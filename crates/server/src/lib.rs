//! # dcr-server — simulation as a service
//!
//! An HTTP front end over the trial arena: clients POST a declarative
//! [`ExperimentSpec`], a worker pool executes it through the same
//! [`dcr_bench::runspec`] code path the `experiments --spec` CLI uses,
//! progress and probe events stream back over Server-Sent Events, and
//! finished results are cached content-addressed by a canonical hash of
//! `(spec, code version)` — resubmitting an identical spec is served from
//! the cache without simulating a single slot.
//!
//! ## API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /experiments` | Submit a spec (JSON body). Returns `{id, status, cached}`; the id **is** the cache key. |
//! | `GET /experiments/:id` | Status, and the full report + text once done. |
//! | `GET /experiments/:id/events` | SSE stream: `progress` events while running, `probe` events from trial 0, then `done`/`failed`. Late subscribers get a full replay. |
//! | `POST /experiments/:id/cancel` | Cancel a queued/running experiment. |
//! | `GET /healthz` | Liveness + code version. |
//!
//! ## Concurrency model
//!
//! No async runtime is vendored, so the server is plain threads: an
//! accept loop spawns one short-lived thread per connection (SSE
//! subscribers hold theirs until the experiment finishes), and a fixed
//! pool of worker threads drains a FIFO of submitted experiments. Each
//! worker runs one experiment at a time; the Monte-Carlo batch inside it
//! already fans out across the machine via the trial arena, so the pool
//! shards *experiments*, not trials.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod http;

use cache::{CacheEntry, DiskCache};
use dcr_bench::runspec::{self, ExperimentSpec};
use dcr_sim::prelude::ProbeRecord;
use dcr_sim::CancelToken;
use dcr_stats::ExperimentReport;
use serde::{Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration (see [`Server::bind`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8787`. Port `0` binds ephemeral
    /// (the integration tests use this).
    pub addr: String,
    /// Directory for the content-addressed result cache.
    pub cache_dir: PathBuf,
    /// Worker threads draining the experiment queue (`0` = available
    /// parallelism, capped at 4 — each worker's Monte-Carlo batch already
    /// parallelizes internally).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".to_string(),
            cache_dir: PathBuf::from("target/dcr-cache"),
            workers: 0,
        }
    }
}

/// Lifecycle of one submitted experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Queued,
    Running { done: u64, total: u64 },
    Done,
    Failed { error: String },
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running { .. } => "running",
            Phase::Done => "done",
            Phase::Failed { .. } => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, Phase::Done | Phase::Failed { .. })
    }
}

/// Mutable half of an experiment, guarded by one mutex so SSE
/// subscribers can wait on a single condvar for "new event or phase
/// change".
struct ExpInner {
    phase: Phase,
    /// Pre-rendered SSE frames `(event name, single-line JSON data)`.
    /// Append-only; subscribers replay from index 0.
    events: Vec<(&'static str, String)>,
    report: Option<ExperimentReport>,
    text: Option<String>,
}

/// One experiment known to the server: submitted this process, or
/// rehydrated from the disk cache.
pub struct Experiment {
    id: String,
    spec: ExperimentSpec,
    /// Set when this entry was satisfied from the cache (never executed
    /// by this submission).
    from_cache: AtomicBool,
    cancel: CancelToken,
    inner: Mutex<ExpInner>,
    cv: Condvar,
}

impl Experiment {
    fn new(id: String, spec: ExperimentSpec) -> Arc<Self> {
        let total = spec.trials;
        let exp = Arc::new(Self {
            id,
            spec,
            from_cache: AtomicBool::new(false),
            cancel: CancelToken::new(),
            inner: Mutex::new(ExpInner {
                phase: Phase::Queued,
                events: Vec::new(),
                report: None,
                text: None,
            }),
            cv: Condvar::new(),
        });
        // Guarantee every subscriber sees at least one progress frame,
        // even for runs that finish inside the runner's first batch.
        exp.push_event("progress", progress_json(0, total));
        exp
    }

    /// Rehydrate a finished experiment from a cache entry: terminal from
    /// birth, with the full event stream ready for replay.
    fn from_cache_entry(entry: CacheEntry) -> Arc<Self> {
        let exp = Self::new(entry.key.clone(), entry.spec);
        exp.from_cache.store(true, Ordering::Relaxed);
        exp.finish_ok(entry.report, &entry.events, entry.text);
        exp
    }

    fn push_event(&self, name: &'static str, data: String) {
        let mut inner = self.inner.lock().expect("experiment lock");
        inner.events.push((name, data));
        self.cv.notify_all();
    }

    fn set_progress(&self, done: u64, total: u64) {
        let mut inner = self.inner.lock().expect("experiment lock");
        inner.phase = Phase::Running { done, total };
        inner.events.push(("progress", progress_json(done, total)));
        self.cv.notify_all();
    }

    fn finish_ok(&self, report: ExperimentReport, events: &[ProbeRecord], text: String) {
        let total = self.spec.trials;
        let mut inner = self.inner.lock().expect("experiment lock");
        for rec in events {
            let data = serde_json::to_string(rec).expect("serialize probe record");
            inner.events.push(("probe", data));
        }
        inner.events.push(("progress", progress_json(total, total)));
        inner
            .events
            .push(("done", format!("{{\"id\":\"{}\"}}", self.id)));
        inner.phase = Phase::Done;
        inner.report = Some(report);
        inner.text = Some(text);
        self.cv.notify_all();
    }

    fn finish_err(&self, error: String) {
        let mut inner = self.inner.lock().expect("experiment lock");
        let data = serde_json::to_string(&Value::Object(vec![(
            "error".to_string(),
            Value::String(error.clone()),
        )]))
        .expect("serialize failure event");
        inner.events.push(("failed", data));
        inner.phase = Phase::Failed { error };
        self.cv.notify_all();
    }

    /// Block until there are events past `from` or the phase is terminal;
    /// returns the new frames and whether the stream is complete.
    fn wait_events(&self, from: usize) -> (Vec<(&'static str, String)>, bool) {
        let mut inner = self.inner.lock().expect("experiment lock");
        loop {
            if inner.events.len() > from || inner.phase.is_terminal() {
                let fresh = inner.events[from.min(inner.events.len())..].to_vec();
                let complete = inner.phase.is_terminal();
                return (fresh, complete);
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(inner, Duration::from_secs(1))
                .expect("experiment lock");
            inner = guard;
        }
    }

    /// The `{id, status, cached, …}` JSON for POST responses and GETs.
    /// `full` additionally embeds the report and rendered text.
    fn status_json(&self, full: bool) -> String {
        let inner = self.inner.lock().expect("experiment lock");
        let mut fields = vec![
            ("id".to_string(), Value::String(self.id.clone())),
            (
                "status".to_string(),
                Value::String(inner.phase.name().to_string()),
            ),
            (
                "cached".to_string(),
                Value::Bool(self.from_cache.load(Ordering::Relaxed)),
            ),
            ("label".to_string(), Value::String(self.spec.label())),
        ];
        if let Phase::Running { done, total } = inner.phase {
            fields.push((
                "progress".to_string(),
                Value::Object(vec![
                    ("done".to_string(), u64_value(done)),
                    ("total".to_string(), u64_value(total)),
                ]),
            ));
        }
        if let Phase::Failed { error } = &inner.phase {
            fields.push(("error".to_string(), Value::String(error.clone())));
        }
        if full {
            if let Some(report) = &inner.report {
                fields.push(("report".to_string(), report.to_value()));
            }
            if let Some(text) = &inner.text {
                fields.push(("text".to_string(), Value::String(text.clone())));
            }
        }
        serde_json::to_string(&Value::Object(fields)).expect("serialize status")
    }
}

fn progress_json(done: u64, total: u64) -> String {
    format!("{{\"done\":{done},\"total\":{total}}}")
}

fn u64_value(v: u64) -> Value {
    Value::Number(serde::value::Number::U(v))
}

/// Shared server state: registry, queue, cache, identity.
struct AppState {
    code_version: String,
    cache: DiskCache,
    experiments: Mutex<HashMap<String, Arc<Experiment>>>,
    queue: Mutex<VecDeque<Arc<Experiment>>>,
    queue_cv: Condvar,
}

impl AppState {
    fn enqueue(&self, exp: Arc<Experiment>) {
        self.queue.lock().expect("queue lock").push_back(exp);
        self.queue_cv.notify_one();
    }

    fn dequeue(&self) -> Arc<Experiment> {
        let mut queue = self.queue.lock().expect("queue lock");
        loop {
            if let Some(exp) = queue.pop_front() {
                return exp;
            }
            queue = self.queue_cv.wait(queue).expect("queue lock");
        }
    }
}

/// The bound, not-yet-running server. [`Server::run`] blocks on the
/// accept loop; [`Server::run_background`] detaches it (tests, smoke
/// scripts).
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    workers: usize,
}

impl Server {
    /// Bind the listen socket, open the cache, and capture the code
    /// version that scopes every cache key this process computes.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = DiskCache::open(&config.cache_dir)?;
        let workers = match config.workers {
            0 => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
                .min(4),
            n => n,
        };
        Ok(Self {
            listener,
            state: Arc::new(AppState {
                code_version: runspec::code_version(),
                cache,
                experiments: Mutex::new(HashMap::new()),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
            }),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start the worker pool and serve connections forever.
    pub fn run(self) -> std::io::Result<()> {
        for _ in 0..self.workers {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || worker_loop(&state));
        }
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        // Client-side disconnects mid-stream are routine;
                        // nothing to do but drop the connection.
                        let _ = handle_connection(&mut stream, &state);
                    });
                }
                Err(e) => eprintln!("accept error: {e}"),
            }
        }
        Ok(())
    }

    /// Run the server on a detached thread; returns the bound address.
    pub fn run_background(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            if let Err(e) = self.run() {
                eprintln!("server error: {e}");
            }
        });
        Ok(addr)
    }
}

/// One worker: pull experiments off the queue and run them to a terminal
/// phase. A worker panic inside the Monte-Carlo batch is already mapped
/// to [`RunSpecError::Run`] by the runner, so the pool itself never dies
/// with an experiment.
fn worker_loop(state: &AppState) {
    loop {
        let exp = state.dequeue();
        if exp.cancel.is_cancelled() {
            exp.finish_err("cancelled before start".to_string());
            continue;
        }
        let total = exp.spec.trials;
        exp.set_progress(0, total);
        let progress = |done: u64, _total: u64| exp.set_progress(done, total);
        match runspec::run_spec_with(&exp.spec, progress, &exp.cancel) {
            Ok(out) => {
                let entry = CacheEntry {
                    key: exp.id.clone(),
                    code_version: state.code_version.clone(),
                    spec: exp.spec.clone(),
                    report: out.report.clone(),
                    events: out.events.clone(),
                    text: out.text.clone(),
                };
                if let Err(e) = state.cache.store(&entry) {
                    // A write failure degrades the cache, not the result.
                    eprintln!("cache store failed for {}: {e}", exp.id);
                }
                exp.finish_ok(out.report, &out.events, out.text);
            }
            Err(e) => exp.finish_err(e.to_string()),
        }
    }
}

/// Route one request.
fn handle_connection(stream: &mut TcpStream, state: &AppState) -> std::io::Result<()> {
    let req = match http::read_request(stream) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()),
        Err(e) => return http::respond_error(stream, 400, &e.to_string()),
    };
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let body = serde_json::to_string(&Value::Object(vec![
                ("status".to_string(), Value::String("ok".to_string())),
                (
                    "code_version".to_string(),
                    Value::String(state.code_version.clone()),
                ),
            ]))
            .expect("serialize healthz");
            http::respond_json(stream, 200, &body)
        }
        ("POST", ["experiments"]) => post_experiment(stream, state, &req.body),
        ("GET", ["experiments", id]) => match lookup(state, id) {
            Some(exp) => http::respond_json(stream, 200, &exp.status_json(true)),
            None => http::respond_error(stream, 404, "unknown experiment"),
        },
        ("GET", ["experiments", id, "events"]) => match lookup(state, id) {
            Some(exp) => stream_events(stream, &exp),
            None => http::respond_error(stream, 404, "unknown experiment"),
        },
        ("POST", ["experiments", id, "cancel"]) => match lookup(state, id) {
            Some(exp) => {
                exp.cancel.cancel();
                http::respond_json(stream, 202, &exp.status_json(false))
            }
            None => http::respond_error(stream, 404, "unknown experiment"),
        },
        ("POST" | "GET", _) => http::respond_error(stream, 404, "no such route"),
        _ => http::respond_error(stream, 405, "method not allowed"),
    }
}

/// Find an experiment by id: the in-process registry first, then the
/// disk cache (results computed by an earlier server process under the
/// same code version rehydrate transparently).
fn lookup(state: &AppState, id: &str) -> Option<Arc<Experiment>> {
    let mut map = state.experiments.lock().expect("experiments lock");
    if let Some(exp) = map.get(id) {
        return Some(Arc::clone(exp));
    }
    let entry = state.cache.load(id)?;
    let exp = Experiment::from_cache_entry(entry);
    map.insert(id.to_string(), Arc::clone(&exp));
    Some(exp)
}

/// `POST /experiments`: parse, validate, content-address, and either
/// serve from cache or enqueue.
fn post_experiment(stream: &mut TcpStream, state: &AppState, body: &[u8]) -> std::io::Result<()> {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return http::respond_error(stream, 400, "body is not UTF-8"),
    };
    let spec: ExperimentSpec = match serde_json::from_str(text) {
        Ok(s) => s,
        Err(e) => {
            return http::respond_error(stream, 400, &format!("invalid ExperimentSpec: {e:?}"))
        }
    };
    // Full submission-time validation (including spec/workload
    // compatibility, e.g. ALIGNED on an unaligned workload) so bad specs
    // are a 400, not a failed experiment.
    if let Err(e) = runspec::check(&spec) {
        return http::respond_error(stream, 400, &e.to_string());
    }

    let key = runspec::cache_key(&spec, &state.code_version);
    let mut map = state.experiments.lock().expect("experiments lock");
    if let Some(exp) = map.get(&key) {
        let exp = Arc::clone(exp);
        let failed = matches!(
            exp.inner.lock().expect("experiment lock").phase,
            Phase::Failed { .. }
        );
        if !failed {
            // Identical spec already known: completed runs are a cache
            // hit, in-flight runs attach the caller to the existing
            // execution. Either way nothing is re-simulated.
            {
                let inner = exp.inner.lock().expect("experiment lock");
                if inner.phase == Phase::Done {
                    exp.from_cache.store(true, Ordering::Relaxed);
                }
            }
            drop(map);
            return http::respond_json(stream, 202, &exp.status_json(false));
        }
        // A failed (or cancelled) run is not a result; resubmission
        // evicts it and executes fresh.
        map.remove(&key);
    }
    if let Some(entry) = state.cache.load(&key) {
        let exp = Experiment::from_cache_entry(entry);
        map.insert(key, Arc::clone(&exp));
        drop(map);
        return http::respond_json(stream, 202, &exp.status_json(false));
    }
    let exp = Experiment::new(key.clone(), spec);
    map.insert(key, Arc::clone(&exp));
    drop(map);
    state.enqueue(Arc::clone(&exp));
    http::respond_json(stream, 202, &exp.status_json(false))
}

/// `GET /experiments/:id/events`: replay the event log from the start,
/// then follow it live until the experiment reaches a terminal phase.
fn stream_events(stream: &mut TcpStream, exp: &Experiment) -> std::io::Result<()> {
    http::start_sse(stream)?;
    let mut cursor = 0usize;
    loop {
        let (fresh, complete) = exp.wait_events(cursor);
        let drained = fresh.len();
        for (name, data) in fresh {
            http::write_sse_event(stream, name, &data)?;
        }
        cursor += drained;
        if complete && drained == 0 {
            return Ok(());
        }
    }
}
