//! `dcr-server` binary: serve experiments over HTTP.
//!
//! ```text
//! dcr-server [--addr HOST:PORT] [--cache-dir DIR] [--workers N] [--threads N]
//! ```
//!
//! Defaults: `127.0.0.1:8787`, cache in `target/dcr-cache`, worker count
//! from available parallelism. `--threads` pins the Monte-Carlo worker
//! count inside each experiment (the same knob as `experiments
//! --threads`). See the crate docs for the API.

use dcr_server::{Server, ServerConfig};

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}; try --help");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--addr needs HOST:PORT"));
                config.addr = v.clone();
            }
            "--cache-dir" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--cache-dir needs a directory"));
                config.cache_dir = v.into();
            }
            "--workers" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--workers needs a count"));
                config.workers = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_error("--workers must be a positive integer"));
            }
            "--threads" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--threads needs a count"));
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_error("--threads must be a positive integer"));
                dcr_sim::runner::set_worker_override(Some(n));
            }
            "--help" | "-h" => {
                println!(
                    "usage: dcr-server [--addr HOST:PORT] [--cache-dir DIR] \
                     [--workers N] [--threads N]\n\n\
                     POST /experiments              submit an ExperimentSpec (JSON)\n\
                     GET  /experiments/:id          status + report when done\n\
                     GET  /experiments/:id/events   SSE progress/probe stream\n\
                     POST /experiments/:id/cancel   cancel a queued/running run\n\
                     GET  /healthz                  liveness + code version"
                );
                return;
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    let server = Server::bind(config.clone()).unwrap_or_else(|e| {
        eprintln!("error: cannot start server on {}: {e}", config.addr);
        std::process::exit(1);
    });
    let addr = server.local_addr().expect("bound listener has an address");
    println!(
        "dcr-server listening on http://{addr} (cache: {})",
        config.cache_dir.display()
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}
