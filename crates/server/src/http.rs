//! A deliberately small HTTP/1.1 server substrate.
//!
//! This workspace vendors every dependency and carries no async runtime
//! or web framework, so the experiment service speaks HTTP the way the
//! protocol was written: one blocking [`TcpStream`] per connection, a
//! request parser that understands exactly what the API needs (method,
//! target, headers, `Content-Length` bodies), and response writers for
//! JSON and Server-Sent Event streams. Connections are `close`-only —
//! one request per connection keeps the state machine trivial, and both
//! `curl` and the integration tests are fine with that.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body accepted, in bytes. Experiment specs are a few
/// hundred bytes; anything near this bound is not a spec.
pub const MAX_BODY: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target with any query string stripped (`/experiments/ab12`).
    pub path: String,
    /// Body bytes (empty when the request carried none).
    pub body: Vec<u8>,
}

/// Read and parse one request from `stream`. Returns `Ok(None)` for a
/// connection closed before a full request line arrived; protocol errors
/// surface as `Err` and the caller drops the connection.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_ascii_uppercase(), t.to_string()),
        _ => return Err(bad("malformed request line")),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("eof inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Some(Request { method, path, body }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// Write a complete JSON response and close-frame headers.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{body}",
        status_text(status),
        body.len(),
    )?;
    stream.flush()
}

/// Write an error response with a `{"error": …}` JSON body.
pub fn respond_error(stream: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    let body = serde_json::to_string(&serde::Value::Object(vec![(
        "error".to_string(),
        serde::Value::String(msg.to_string()),
    )]))
    .expect("serialize error body");
    respond_json(stream, status, &body)
}

/// Begin a Server-Sent Events response: headers only; events follow via
/// [`write_sse_event`] until the caller closes the stream.
pub fn start_sse(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\n\
         cache-control: no-store\r\nconnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Write one SSE event frame. `data` must be a single line (the JSON
/// payloads this server emits are compact, never pretty-printed).
pub fn write_sse_event(stream: &mut TcpStream, event: &str, data: &str) -> std::io::Result<()> {
    debug_assert!(!data.contains('\n'), "SSE data must be single-line");
    write!(stream, "event: {event}\ndata: {data}\n\n")?;
    stream.flush()
}
