//! End-to-end test of the experiment service: submit over HTTP, stream
//! SSE, compare the served report byte-for-byte against an in-process
//! run, and prove the content-addressed cache serves resubmissions
//! without executing a single engine slot.

use dcr_bench::runspec::{self, ExperimentSpec};
use dcr_server::{Server, ServerConfig};
use dcr_stats::ExperimentReport;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One blocking HTTP exchange (connection-per-request, like the server).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Read a full SSE stream (the server closes it after the terminal
/// event) and parse it into `(event, data)` frames.
fn read_sse(addr: SocketAddr, path: &str) -> Vec<(String, String)> {
    let (status, body) = request(addr, "GET", path, None);
    assert_eq!(status, 200, "SSE endpoint should answer 200: {body}");
    let mut frames = Vec::new();
    let mut event = String::new();
    for line in body.lines() {
        if let Some(name) = line.strip_prefix("event: ") {
            event = name.to_string();
        } else if let Some(data) = line.strip_prefix("data: ") {
            frames.push((event.clone(), data.to_string()));
        }
    }
    frames
}

fn field<'a>(json: &'a serde::Value, name: &str) -> &'a serde::Value {
    json.as_object()
        .and_then(|pairs| pairs.iter().find(|(k, _)| k == name))
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing field {name} in {json:?}"))
}

fn quick_spec() -> ExperimentSpec {
    serde_json::from_str(
        r#"{
            "protocol": {"Aligned": {"lambda": 1, "tau": 2, "min_class": 6}},
            "workload": {"Batch": {"n": 8, "w": 64}},
            "fidelity": "Exact",
            "scheduling": "EventDriven",
            "adversary": {"spec": {"Policy": "AllSuccesses"}, "p_jam": 0.25},
            "probe": {"sinks": ["Events"]},
            "max_slots": 100000,
            "seed": 7,
            "trials": 30
        }"#,
    )
    .expect("fixture spec parses")
}

fn start_server(tag: &str) -> SocketAddr {
    let cache_dir =
        std::env::temp_dir().join(format!("dcr-server-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir,
        workers: 1,
    })
    .expect("bind ephemeral port");
    server.run_background().expect("spawn server")
}

fn wait_done(addr: SocketAddr, id: &str) -> serde::Value {
    for _ in 0..600 {
        let (status, body) = request(addr, "GET", &format!("/experiments/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let json: serde::Value = serde_json::from_str(&body).expect("status json");
        match field(&json, "status").as_str().expect("status string") {
            "done" => return json,
            "failed" => panic!("experiment failed: {body}"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("experiment {id} did not finish in time");
}

/// The whole submit → stream → report → cache-hit flow, sequential in
/// one test so the process-wide engine slot counter can prove the cache
/// hit executed nothing.
#[test]
fn submit_stream_report_and_cache_hit() {
    let addr = start_server("flow");
    let spec = quick_spec();
    let spec_json = serde_json::to_string(&spec).expect("serialize spec");

    // Submit. The id is the content key.
    let (status, body) = request(addr, "POST", "/experiments", Some(&spec_json));
    assert_eq!(status, 202, "{body}");
    let posted: serde::Value = serde_json::from_str(&body).expect("post response");
    let id = field(&posted, "id").as_str().expect("id").to_string();
    assert_eq!(field(&posted, "cached"), &serde::Value::Bool(false));

    // The SSE stream delivers progress and probe events, then `done`.
    let frames = read_sse(addr, &format!("/experiments/{id}/events"));
    let count = |name: &str| frames.iter().filter(|(e, _)| e == name).count();
    assert!(count("progress") >= 1, "no progress events in {frames:?}");
    assert!(count("probe") >= 1, "no probe events in {frames:?}");
    assert_eq!(count("done"), 1, "missing done event in {frames:?}");

    // The served report matches a direct in-process run byte-for-byte
    // (modulo the volatile timing/provenance block, by contract).
    let done = wait_done(addr, &id);
    let served: ExperimentReport =
        serde_json::from_value(field(&done, "report")).expect("report parses");
    let direct = runspec::run_spec(&spec).expect("in-process run");
    assert_eq!(
        serde_json::to_string(&served.deterministic_view()).unwrap(),
        serde_json::to_string(&direct.report.deterministic_view()).unwrap(),
        "server must serve the same bytes the in-process path computes"
    );

    // Resubmitting the identical spec — with fields reordered, even — is
    // a cache hit that executes zero engine slots.
    let reordered = r#"{"trials": 30, "seed": 7, "max_slots": 100000, "probe": {"sinks": ["Events"]},
            "adversary": {"p_jam": 0.25, "spec": {"Policy": "AllSuccesses"}},
            "scheduling": "EventDriven", "fidelity": "Exact",
            "workload": {"Batch": {"w": 64, "n": 8}},
            "protocol": {"Aligned": {"min_class": 6, "tau": 2, "lambda": 1}}}"#;
    let slots_before = dcr_sim::engine::slots_executed_total();
    let (status, body) = request(addr, "POST", "/experiments", Some(reordered));
    assert_eq!(status, 202, "{body}");
    let reposted: serde::Value = serde_json::from_str(&body).expect("repost response");
    assert_eq!(
        field(&reposted, "id").as_str().expect("id"),
        id,
        "reordered fields must content-address to the same experiment"
    );
    assert_eq!(field(&reposted, "cached"), &serde::Value::Bool(true));
    assert_eq!(field(&reposted, "status").as_str(), Some("done"));
    assert_eq!(
        dcr_sim::engine::slots_executed_total(),
        slots_before,
        "a cache hit must not execute any engine slots"
    );

    // The replayed SSE stream for the cached run is complete too.
    let frames = read_sse(addr, &format!("/experiments/{id}/events"));
    assert!(frames.iter().any(|(e, _)| e == "probe"));
    assert!(frames.iter().any(|(e, _)| e == "done"));
}

/// Bad submissions are 400s with a reason, not failed experiments —
/// including spec/workload incompatibilities that only surface when the
/// workload is built.
#[test]
fn invalid_specs_are_rejected_at_submission() {
    let addr = start_server("reject");

    let (status, body) = request(addr, "POST", "/experiments", Some("{not json"));
    assert_eq!(status, 400, "{body}");

    let mut bad_trials = quick_spec();
    bad_trials.trials = 0;
    let json = serde_json::to_string(&bad_trials).unwrap();
    let (status, body) = request(addr, "POST", "/experiments", Some(&json));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("trials"), "unexpected error body: {body}");

    // ALIGNED on a non-power-of-two window: caught by the workload
    // compatibility check, before any slot is simulated.
    let unaligned = r#"{
        "protocol": {"Aligned": {"lambda": 1, "tau": 2, "min_class": 1}},
        "workload": {"Batch": {"n": 4, "w": 12}},
        "fidelity": "Exact", "scheduling": "EventDriven",
        "adversary": null, "probe": null, "max_slots": null,
        "seed": 1, "trials": 5
    }"#;
    let (status, body) = request(addr, "POST", "/experiments", Some(unaligned));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("aligned"), "unexpected error body: {body}");

    let (status, _) = request(addr, "GET", "/experiments/deadbeef", None);
    assert_eq!(status, 404);

    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("code_version"), "{body}");
}
