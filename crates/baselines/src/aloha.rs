//! Slotted ALOHA: transmit each slot with a fixed probability.
//!
//! The memoryless baseline — useful as a contention "dial" in experiment
//! E1 (measuring Lemma 2's contention/success relationship) and as a naive
//! comparator in the end-to-end shootout.

use dcr_sim::engine::{Action, CohortTx, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};

/// Transmit the data message with probability `p` in every slot until it
/// gets through.
#[derive(Debug, Clone)]
pub struct FixedProbability {
    p: f64,
    succeeded: bool,
}

impl FixedProbability {
    /// ALOHA with per-slot probability `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
        Self {
            p,
            succeeded: false,
        }
    }

    /// Per-slot probability scaled to the job's window at activation:
    /// `min(1/2, c/w)` — transmitting an expected `c` times per window.
    pub fn per_window(c: f64) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |spec| {
            let p = (c / spec.window() as f64).min(0.5);
            Box::new(Self::new(p.max(f64::MIN_POSITIVE)))
        }
    }

    /// Factory closure with a fixed `p` for every job.
    pub fn factory(p: f64) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(Self::new(p))
    }
}

impl Protocol for FixedProbability {
    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        if !self.succeeded && rng.gen_bool(self.p) {
            Action::Transmit(Payload::Data(ctx.id))
        } else {
            // Memoryless and non-adaptive: no need to listen between
            // attempts.
            Action::Sleep
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
        if let Feedback::Success { src, payload } = fb {
            if *src == ctx.id && payload.is_data() {
                self.succeeded = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.succeeded
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        Some(if self.succeeded { 0.0 } else { self.p })
    }

    fn cohort_tx(&self, ctx: &JobCtx) -> Option<CohortTx> {
        // ALOHA is *exactly* the cohort model: Bernoulli(p) every slot,
        // never listening, until delivery. Probed jobs stay on the exact
        // path so their event streams keep flowing.
        if ctx.probed {
            None
        } else {
            Some(CohortTx::Constant { p: self.p })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::count_trials;

    #[test]
    fn lone_job_eventually_succeeds() {
        let (hits, total) = count_trials(50, 3, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            e.add_job(
                JobSpec::new(0, 0, 256),
                Box::new(FixedProbability::new(0.1)),
            );
            e.run().outcome(0).is_success()
        });
        assert_eq!(hits, total);
    }

    #[test]
    fn contention_one_gives_constant_throughput() {
        // n jobs at p = 1/n: C = 1, so per-slot success ≈ 1/e. Over many
        // slots the throughput should be visibly constant.
        let n = 32u32;
        let mut e = Engine::new(EngineConfig::default().with_trace(), 5);
        for i in 0..n {
            // Window long enough that nobody leaves early skews little.
            e.add_job(
                JobSpec::new(i, 0, 100),
                Box::new(FixedProbability::new(1.0 / f64::from(n))),
            );
        }
        let r = e.run();
        let rate = r.counts.success as f64 / r.slots_run as f64;
        assert!(rate > 0.2 && rate < 0.55, "rate={rate}");
    }

    #[test]
    fn per_window_scaling() {
        let mut factory = FixedProbability::per_window(4.0);
        let spec = JobSpec::new(0, 0, 400);
        let proto = factory(&spec);
        let ctx = dcr_sim::engine::JobCtx {
            id: 0,
            window: 400,
            local_time: 0,
            aligned_time: None,
            probed: false,
        };
        assert!((proto.tx_probability(&ctx).unwrap() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn zero_probability_rejected() {
        let _ = FixedProbability::new(0.0);
    }
}
