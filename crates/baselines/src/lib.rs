//! # dcr-baselines — comparator protocols
//!
//! The protocols the paper positions itself against (and an offline
//! optimum), implemented on the same [`dcr_sim`] substrate so the
//! experiment harness can compare deadline-miss behaviour apples-to-apples:
//!
//! * [`beb::BinaryExponentialBackoff`] — the classic 802.11-style protocol:
//!   transmit, and on each collision double the backoff window;
//! * [`sawtooth::Sawtooth`] — the asymptotically makespan-optimal
//!   non-monotonic backoff (Geréb-Graus–Tsantilas / Greenberg–Leiserson
//!   style): repeatedly sweep window sizes downward inside doubling runs;
//! * [`aloha::FixedProbability`] — slotted-ALOHA: transmit each slot with a
//!   fixed probability;
//! * [`windowed::WindowedBackoff`] — the general *windowed* family
//!   (geometric, linear, quadratic, fixed schedules) that the monotone-
//!   backoff lower bounds in the paper's related work quantify over;
//! * [`scheduled::ScheduledSlot`] — a genie-scheduled protocol given its
//!   slot by an offline EDF schedule; the collision-free upper bound.
//!
//! None of these are deadline-aware (that is the paper's point); jobs
//! simply run until the engine retires them at their deadline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aloha;
pub mod beb;
pub mod sawtooth;
pub mod scheduled;
pub mod windowed;

pub use aloha::FixedProbability;
pub use beb::BinaryExponentialBackoff;
pub use sawtooth::Sawtooth;
pub use scheduled::ScheduledSlot;
pub use windowed::{Schedule, WindowedBackoff};
