//! The *windowed backoff* family (Bender et al., "Adversarial contention
//! resolution for simple channels"; the paper's refs [13, 14, 91]).
//!
//! A windowed protocol runs through a fixed sequence of windows
//! `W_1, W_2, …`; in each window of size `s` the job transmits in one
//! uniformly random slot, then moves to the next window if it failed.
//! Binary exponential backoff is the `s_{i+1} = 2·s_i` member; the paper's
//! related-work section rests on the classical fact that **every monotone
//! schedule is makespan-suboptimal** (`Θ(n log n)` or worse for a batch of
//! `n`) while the non-monotone sawtooth achieves `Θ(n)` — experiment E14
//! reproduces that separation.

use dcr_sim::engine::{Action, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// A window-size schedule: `size(i)` is the size of the `i`-th window
/// (0-based), capped at `2^40` to avoid overflow in degenerate sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// `s_i = base^i · s_0` — geometric growth (`Geometric { base: 2, first: 1 }`
    /// is classic binary exponential backoff in windowed form).
    Geometric {
        /// Growth factor (≥ 2).
        base: u64,
        /// First window size (≥ 1).
        first: u64,
    },
    /// `s_i = first + step·i` — linear growth ("polynomial backoff" with
    /// exponent 1; known to be stable but slow).
    Linear {
        /// First window size (≥ 1).
        first: u64,
        /// Additive increment per window.
        step: u64,
    },
    /// `s_i = first · (i+1)^2` — quadratic growth.
    Quadratic {
        /// First window size (≥ 1).
        first: u64,
    },
    /// All windows the same size (slotted-ALOHA-like; never adapts).
    Fixed {
        /// The window size (≥ 1).
        size: u64,
    },
}

impl Schedule {
    /// Size of the `i`-th window.
    pub fn size(&self, i: u32) -> u64 {
        const CAP: u64 = 1 << 40;
        match *self {
            Schedule::Geometric { base, first } => {
                let mut s = first.max(1);
                for _ in 0..i {
                    s = s.saturating_mul(base.max(2));
                    if s >= CAP {
                        return CAP;
                    }
                }
                s
            }
            Schedule::Linear { first, step } => first
                .max(1)
                .saturating_add(step.saturating_mul(u64::from(i)))
                .min(CAP),
            Schedule::Quadratic { first } => {
                let k = u64::from(i) + 1;
                first.max(1).saturating_mul(k.saturating_mul(k)).min(CAP)
            }
            Schedule::Fixed { size } => size.max(1),
        }
    }

    /// Classic binary exponential backoff in windowed form.
    pub fn beb() -> Self {
        Schedule::Geometric { base: 2, first: 1 }
    }
}

/// A windowed-backoff protocol for one job.
///
/// The attempt slot of each window is drawn *when the window is entered*
/// (one `gen_range` per window), so the whole window is known in advance:
/// `next_wake` can tell the engine to sleep straight to the attempt slot
/// and then to the next window boundary.
#[derive(Debug, Clone)]
pub struct WindowedBackoff {
    schedule: Schedule,
    /// Current window index.
    window_idx: u32,
    /// Local slot one past the current window's last slot.
    window_end: u64,
    /// Local slot of the current window's transmission attempt.
    fire_at: u64,
    started: bool,
    succeeded: bool,
}

impl WindowedBackoff {
    /// Build a windowed backoff with the given schedule.
    pub fn new(schedule: Schedule) -> Self {
        Self {
            schedule,
            window_idx: 0,
            window_end: 0,
            fire_at: 0,
            started: false,
            succeeded: false,
        }
    }

    /// Factory closure for [`dcr_sim::engine::Engine::add_jobs`].
    pub fn factory(schedule: Schedule) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(Self::new(schedule))
    }

    fn next_window(&mut self, now: u64, rng: &mut dyn RngCore) {
        if self.started {
            self.window_idx += 1;
        }
        self.started = true;
        let size = self.schedule.size(self.window_idx);
        let draw = rng.gen_range(1..=size);
        self.window_end = now + size;
        self.fire_at = now + size - draw;
    }

    /// The index of the window currently being executed.
    pub fn window_index(&self) -> u32 {
        self.window_idx
    }
}

impl Protocol for WindowedBackoff {
    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        if self.succeeded {
            return Action::Sleep;
        }
        if !self.started || ctx.local_time >= self.window_end {
            self.next_window(ctx.local_time, rng);
        }
        if ctx.local_time == self.fire_at {
            Action::Transmit(Payload::Data(ctx.id))
        } else {
            // Non-adaptive schedule: sleep between attempts.
            Action::Sleep
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
        if let Feedback::Success { src, payload } = fb {
            if *src == ctx.id && payload.is_data() {
                self.succeeded = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.succeeded
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        if self.succeeded {
            Some(0.0)
        } else {
            Some(1.0 / self.schedule.size(self.window_idx).max(1) as f64)
        }
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        if self.succeeded {
            return Some(u64::MAX);
        }
        if !self.started {
            return None;
        }
        if self.fire_at > ctx.local_time {
            Some(self.fire_at)
        } else {
            // Attempt made (and failed, or the engine would have retired
            // us): next event is the roll at the window boundary.
            Some(self.window_end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::count_trials;

    #[test]
    fn schedule_arithmetic() {
        let g = Schedule::beb();
        assert_eq!(g.size(0), 1);
        assert_eq!(g.size(3), 8);
        let l = Schedule::Linear { first: 4, step: 3 };
        assert_eq!(l.size(0), 4);
        assert_eq!(l.size(5), 19);
        let q = Schedule::Quadratic { first: 2 };
        assert_eq!(q.size(0), 2);
        assert_eq!(q.size(2), 18);
        let f = Schedule::Fixed { size: 7 };
        assert_eq!(f.size(0), 7);
        assert_eq!(f.size(100), 7);
    }

    #[test]
    fn schedule_growth_saturates_instead_of_overflowing() {
        let g = Schedule::Geometric { base: 2, first: 1 };
        assert_eq!(g.size(63), 1 << 40);
        let l = Schedule::Linear {
            first: u64::MAX - 1,
            step: 10,
        };
        assert_eq!(l.size(3), 1 << 40);
    }

    #[test]
    fn lone_job_succeeds_immediately() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(
            JobSpec::new(0, 0, 16),
            Box::new(WindowedBackoff::new(Schedule::beb())),
        );
        let r = e.run();
        assert_eq!(r.outcome(0).slot(), Some(0), "first window has size 1");
    }

    #[test]
    fn batch_resolves_under_every_schedule() {
        for schedule in [
            Schedule::beb(),
            Schedule::Linear { first: 1, step: 4 },
            Schedule::Quadratic { first: 1 },
            Schedule::Fixed { size: 64 },
        ] {
            let (hits, total) = count_trials(20, 7, |_, seed| {
                let mut e = Engine::new(EngineConfig::default(), seed);
                for i in 0..16 {
                    e.add_job(
                        JobSpec::new(i, 0, 1 << 14),
                        Box::new(WindowedBackoff::new(schedule)),
                    );
                }
                e.run().successes() == 16
            });
            assert!(
                hits as f64 / total as f64 > 0.85,
                "{schedule:?}: {hits}/{total}"
            );
        }
    }

    #[test]
    fn fixed_small_window_livelocks_a_batch() {
        // Fixed windows of size 2 with 16 jobs: contention 8 per slot,
        // essentially nobody ever gets through — the degenerate end of the
        // family.
        let mut e = Engine::new(EngineConfig::default(), 3);
        for i in 0..16 {
            e.add_job(
                JobSpec::new(i, 0, 2048),
                Box::new(WindowedBackoff::new(Schedule::Fixed { size: 2 })),
            );
        }
        let r = e.run();
        assert!(r.successes() <= 2, "{}", r.successes());
    }
}
