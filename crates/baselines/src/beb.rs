//! Binary exponential backoff (the classic randomized backoff of
//! Metcalfe–Boggs Ethernet and IEEE 802.11).
//!
//! On activation the job transmits immediately. After its `k`-th failed
//! attempt it draws a uniform delay from `{0, …, min(2^k, cap) − 1}` slots
//! and retries. The engine retires the job at its deadline — BEB itself has
//! no notion of one, which is exactly the unfairness the paper targets:
//! "a newly-arrived player may get to send its message quickly, ahead of
//! players that arrived previously … and ratcheted down their broadcast
//! probabilities."

use dcr_sim::engine::{Action, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};

/// The BEB protocol for one job.
///
/// The retry slot is drawn the moment a collision is reported, so the job
/// knows its next attempt in advance and `next_wake` lets the engine sleep
/// it through the backoff gap.
#[derive(Debug, Clone)]
pub struct BinaryExponentialBackoff {
    /// Number of failed attempts so far.
    attempts: u32,
    /// Local slot of the next transmission attempt.
    next_tx: u64,
    /// Cap on the backoff window (802.11 uses 1024; `u64::MAX/2` ≈ none).
    cap: u64,
    transmitted_this_slot: bool,
    succeeded: bool,
}

impl BinaryExponentialBackoff {
    /// BEB with the given backoff-window cap (must be a power of two).
    pub fn with_cap(cap: u64) -> Self {
        assert!(cap.is_power_of_two());
        Self {
            attempts: 0,
            next_tx: 0,
            cap,
            transmitted_this_slot: false,
            succeeded: false,
        }
    }

    /// 802.11-flavoured default: window capped at 1024.
    pub fn new() -> Self {
        Self::with_cap(1024)
    }

    /// Failed attempts so far (for tests).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Current backoff window size `min(2^attempts, cap)`.
    fn window(&self) -> u64 {
        1u64.checked_shl(self.attempts)
            .map_or(self.cap, |w| w.min(self.cap))
    }

    /// Factory closure for [`dcr_sim::engine::Engine::add_jobs`].
    pub fn factory(cap: u64) -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(Self::with_cap(cap))
    }
}

impl Default for BinaryExponentialBackoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for BinaryExponentialBackoff {
    fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
        self.transmitted_this_slot = false;
        if self.succeeded || ctx.local_time < self.next_tx {
            // BEB reacts only to its own collisions; it sleeps through the
            // backoff gap (no carrier sensing in this model).
            return Action::Sleep;
        }
        self.transmitted_this_slot = true;
        Action::Transmit(Payload::Data(ctx.id))
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, rng: &mut dyn RngCore) {
        if !self.transmitted_this_slot {
            return;
        }
        match fb {
            Feedback::Success { src, payload } if *src == ctx.id && payload.is_data() => {
                self.succeeded = true;
            }
            _ => {
                // Collision (or jam): back off. Draw the retry delay now so
                // the next attempt slot is known in advance.
                self.attempts += 1;
                let w = self.window();
                self.next_tx = ctx.local_time + 1 + rng.gen_range(0..w);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.succeeded
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        // Expected a-priori probability of transmitting in a slot of the
        // current backoff window.
        if self.succeeded {
            Some(0.0)
        } else if self.attempts == 0 {
            Some(1.0)
        } else {
            Some(1.0 / self.window() as f64)
        }
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        if self.succeeded {
            Some(u64::MAX)
        } else if self.next_tx > ctx.local_time {
            Some(self.next_tx)
        } else {
            // An attempt is due this slot or just happened; its feedback
            // (and any re-draw) lands before the next poll.
            Some(ctx.local_time + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::count_trials;

    #[test]
    fn lone_job_succeeds_in_first_slot() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(
            JobSpec::new(0, 0, 8),
            Box::new(BinaryExponentialBackoff::new()),
        );
        let r = e.run();
        assert_eq!(r.outcome(0).slot(), Some(0));
    }

    #[test]
    fn two_jobs_collide_then_resolve() {
        // Both transmit at slot 0 and collide; backoff separates them
        // quickly in a roomy window.
        let (hits, total) = count_trials(100, 5, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            e.add_job(
                JobSpec::new(0, 0, 64),
                Box::new(BinaryExponentialBackoff::new()),
            );
            e.add_job(
                JobSpec::new(1, 0, 64),
                Box::new(BinaryExponentialBackoff::new()),
            );
            e.run().successes() == 2
        });
        assert!(hits as f64 / total as f64 > 0.95, "{hits}/{total}");
    }

    #[test]
    fn batch_resolves_with_enough_room() {
        let (hits, total) = count_trials(30, 9, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            for i in 0..16 {
                e.add_job(
                    JobSpec::new(i, 0, 4096),
                    Box::new(BinaryExponentialBackoff::new()),
                );
            }
            e.run().successes() == 16
        });
        assert!(hits as f64 / total as f64 > 0.9, "{hits}/{total}");
    }

    #[test]
    fn attempts_grow_under_continuous_collision() {
        // Two jobs with cap 1: they re-collide every slot (window stays 1,
        // countdown always 0) — attempts must climb, nobody succeeds.
        let mut e = Engine::new(EngineConfig::default(), 3);
        e.add_job(
            JobSpec::new(0, 0, 32),
            Box::new(BinaryExponentialBackoff::with_cap(1)),
        );
        e.add_job(
            JobSpec::new(1, 0, 32),
            Box::new(BinaryExponentialBackoff::with_cap(1)),
        );
        let r = e.run();
        assert_eq!(r.successes(), 0);
        assert_eq!(r.counts.collision, 32);
    }

    #[test]
    #[should_panic]
    fn cap_must_be_power_of_two() {
        let _ = BinaryExponentialBackoff::with_cap(3);
    }
}
