//! A genie-scheduled protocol: the offline optimum.
//!
//! [`ScheduledSlot`] is handed the slot it should transmit in (relative to
//! its release) by an offline scheduler — e.g. an EDF assignment computed
//! by `dcr_workloads::feasibility`. On a feasible instance every job
//! succeeds, which makes this the collision-free upper bound against which
//! the distributed protocols are scored, and [`edf_assignment`] computes
//! exactly that assignment for unit messages.

use dcr_sim::engine::{Action, JobCtx, Protocol};
use dcr_sim::job::JobSpec;
use dcr_sim::message::Payload;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Transmit the data message exactly once, in the given local slot.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledSlot {
    local_slot: u64,
    fired: bool,
}

impl ScheduledSlot {
    /// Transmit at `local_slot` (relative to release).
    pub fn new(local_slot: u64) -> Self {
        Self {
            local_slot,
            fired: false,
        }
    }
}

impl Protocol for ScheduledSlot {
    fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
        if !self.fired && ctx.local_time == self.local_slot {
            self.fired = true;
            Action::Transmit(Payload::Data(ctx.id))
        } else {
            // The schedule is fixed offline; nothing on the channel can
            // change it, so the radio stays off outside the assigned slot.
            Action::Sleep
        }
    }

    fn is_done(&self) -> bool {
        self.fired
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        if !self.fired && self.local_slot > ctx.local_time {
            Some(self.local_slot)
        } else {
            Some(u64::MAX)
        }
    }
}

/// Compute an EDF slot assignment for unit-length messages: each job gets
/// one distinct slot inside its window, or `None` if the instance is
/// infeasible. Returned as local (release-relative) slots indexed by job
/// id position in `jobs`.
pub fn edf_assignment(jobs: &[JobSpec]) -> Option<Vec<u64>> {
    let mut order: Vec<(usize, &JobSpec)> = jobs.iter().enumerate().collect();
    order.sort_by_key(|(_, j)| j.release);

    let mut assignment = vec![0u64; jobs.len()];
    // Min-heap of (deadline, original index) for released jobs.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut now = 0u64;
    let mut next = 0usize;
    while next < order.len() || !heap.is_empty() {
        if heap.is_empty() {
            now = now.max(order[next].1.release);
        }
        while next < order.len() && order[next].1.release <= now {
            let (idx, j) = order[next];
            heap.push(Reverse((j.deadline, idx)));
            next += 1;
        }
        let Reverse((deadline, idx)) = heap.pop().expect("non-empty");
        if now >= deadline {
            return None;
        }
        assignment[idx] = now - jobs[idx].release;
        now += 1;
    }
    Some(assignment)
}

/// Build `(spec, protocol)` pairs for a genie-scheduled run. `None` if the
/// instance is infeasible even for the offline scheduler.
pub fn scheduled_protocols(jobs: &[JobSpec]) -> Option<Vec<ScheduledSlot>> {
    let assignment = edf_assignment(jobs)?;
    Some(assignment.into_iter().map(ScheduledSlot::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};

    fn j(id: u32, r: u64, d: u64) -> JobSpec {
        JobSpec::new(id, r, d)
    }

    #[test]
    fn assignment_fits_windows_and_is_distinct() {
        let jobs = vec![j(0, 0, 4), j(1, 0, 2), j(2, 1, 3), j(3, 0, 8)];
        let a = edf_assignment(&jobs).unwrap();
        let mut absolute: Vec<u64> = a
            .iter()
            .zip(&jobs)
            .map(|(local, spec)| spec.release + local)
            .collect();
        for (abs, spec) in absolute.iter().zip(&jobs) {
            assert!(spec.contains(*abs), "slot {abs} outside {spec:?}");
        }
        absolute.sort_unstable();
        absolute.dedup();
        assert_eq!(absolute.len(), jobs.len(), "slots must be distinct");
    }

    #[test]
    fn infeasible_detected() {
        let jobs: Vec<_> = (0..5).map(|i| j(i, 0, 4)).collect();
        assert!(edf_assignment(&jobs).is_none());
    }

    #[test]
    fn genie_run_delivers_everything() {
        let jobs = vec![j(0, 0, 4), j(1, 0, 4), j(2, 2, 6), j(3, 5, 9)];
        let protos = scheduled_protocols(&jobs).unwrap();
        let mut e = Engine::new(EngineConfig::default(), 1);
        for (spec, proto) in jobs.iter().zip(protos) {
            e.add_job(*spec, Box::new(proto));
        }
        let r = e.run();
        assert_eq!(r.successes(), 4);
        assert_eq!(r.counts.collision, 0);
    }

    #[test]
    fn empty_instance() {
        assert_eq!(edf_assignment(&[]), Some(vec![]));
    }
}
