//! Sawtooth backoff — the asymptotically makespan-optimal non-monotone
//! backoff (see the paper's Related Work: "a non-monotone algorithm called
//! *sawtooth* is asymptotically optimal [8, 45, 52]").
//!
//! The schedule proceeds in doubling **runs** `r = 1, 2, 3, …`. Run `r`
//! sweeps window sizes `2^r, 2^{r-1}, …, 1` downward (the sawtooth); in a
//! window of size `s` the job transmits in one uniformly random slot. The
//! downward sweep is what fixes monotone backoff's flaw: whatever the true
//! contention `n` is, every run of size `2^r ≥ n` contains a window whose
//! size is within a factor 2 of the remaining contention.

use dcr_sim::engine::{Action, JobCtx, Protocol};
use dcr_sim::message::Payload;
use dcr_sim::probe::{EventBuf, ProbeEvent};
use dcr_sim::slot::Feedback;
use rand::{Rng, RngCore};

/// The sawtooth backoff protocol for one job.
///
/// Each window's attempt slot is drawn when the window is entered, so the
/// window is known in advance and `next_wake` lets the engine sleep the job
/// to its attempt slot and then to the next window boundary.
#[derive(Debug, Clone)]
pub struct Sawtooth {
    /// Current run index (window sizes go up to `2^run`).
    run: u32,
    /// Exponent of the current window within the run (`size = 2^exp`).
    exp: u32,
    /// Local slot one past the current window's last slot.
    window_end: u64,
    /// Local slot of the current window's transmission attempt.
    fire_at: u64,
    succeeded: bool,
    primed: bool,
    probe: EventBuf,
}

impl Sawtooth {
    /// A fresh sawtooth starting at run 1.
    pub fn new() -> Self {
        Self {
            run: 1,
            exp: 1,
            window_end: 0,
            fire_at: 0,
            succeeded: false,
            primed: false,
            probe: EventBuf::default(),
        }
    }

    /// Factory closure for [`dcr_sim::engine::Engine::add_jobs`].
    pub fn factory() -> impl FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol> {
        move |_spec| Box::new(Self::new())
    }

    /// Advance to the next window in the sawtooth schedule, entered at
    /// local slot `now`.
    fn next_window(&mut self, now: u64, rng: &mut dyn RngCore) {
        if !self.primed {
            self.primed = true;
        } else if self.exp == 0 {
            // Run finished: next run, starting from its largest window.
            self.run += 1;
            self.exp = self.run.min(62);
        } else {
            self.exp -= 1;
        }
        let size = 1u64 << self.exp;
        let draw = rng.gen_range(1..=size);
        self.window_end = now + size;
        self.fire_at = now + size - draw;
        // Window entry happens at the same local slot in dense and
        // event-driven runs (`next_wake` targets `window_end` exactly), so
        // the phase stream is scheduling-mode independent.
        if self.probe.enabled() {
            self.probe.phase(&format!("run{}-w{size}", self.run));
        }
    }

    /// Current window size (for tests).
    pub fn window_size(&self) -> u64 {
        1u64 << self.exp
    }
}

impl Default for Sawtooth {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Sawtooth {
    fn on_activate(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) {
        if ctx.probed {
            self.probe.arm();
        }
    }

    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        if self.succeeded {
            return Action::Sleep;
        }
        if !self.primed || ctx.local_time >= self.window_end {
            self.next_window(ctx.local_time, rng);
        }
        if ctx.local_time == self.fire_at {
            Action::Transmit(Payload::Data(ctx.id))
        } else {
            // Non-adaptive schedule: sleep between attempts.
            Action::Sleep
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
        if let Feedback::Success { src, payload } = fb {
            if *src == ctx.id && payload.is_data() {
                self.succeeded = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.succeeded
    }

    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        self.probe.drain_into(out);
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        if self.succeeded {
            Some(0.0)
        } else {
            Some(1.0 / self.window_size() as f64)
        }
    }

    fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
        if self.succeeded {
            return Some(u64::MAX);
        }
        if !self.primed {
            return None;
        }
        if self.fire_at > ctx.local_time {
            Some(self.fire_at)
        } else {
            Some(self.window_end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::engine::{Engine, EngineConfig};
    use dcr_sim::job::JobSpec;
    use dcr_sim::runner::count_trials;

    #[test]
    fn lone_job_succeeds_quickly() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 16), Box::new(Sawtooth::new()));
        let r = e.run();
        assert!(r.outcome(0).is_success());
        // First window has size 2: success within the first 2 slots.
        assert!(r.outcome(0).slot().unwrap() < 2);
    }

    #[test]
    fn window_sweep_shape() {
        // Drive next_window directly and observe the sawtooth sequence
        // 2, 1, | 4, 2, 1, | 8, 4, 2, 1 …
        let mut s = Sawtooth::new();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut sizes = Vec::new();
        let mut now = 0;
        for _ in 0..9 {
            s.next_window(now, &mut rng);
            sizes.push(s.window_size());
            now = s.window_end; // pretend the window elapsed
        }
        assert_eq!(sizes, vec![2, 1, 4, 2, 1, 8, 4, 2, 1]);
    }

    #[test]
    fn batch_resolves() {
        let (hits, total) = count_trials(30, 11, |_, seed| {
            let mut e = Engine::new(EngineConfig::default(), seed);
            for i in 0..16 {
                e.add_job(JobSpec::new(i, 0, 4096), Box::new(Sawtooth::new()));
            }
            e.run().successes() == 16
        });
        assert!(hits as f64 / total as f64 > 0.9, "{hits}/{total}");
    }

    #[test]
    fn stops_after_success() {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 7);
        e.add_job(JobSpec::new(0, 0, 128), Box::new(Sawtooth::new()));
        let r = e.run();
        assert_eq!(r.counts.data_success, 1);
    }
}
