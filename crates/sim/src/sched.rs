//! Wake-slot calendar for the event-driven engine.
//!
//! Protocols that know their next active slot (see
//! [`crate::engine::Protocol::next_wake`]) are *parked*: the engine removes
//! them from the per-slot polling set and records the slot at which they next
//! need an `act()` call here.
//!
//! The structure is a hierarchical timing wheel: wakes within the next
//! [`WHEEL`] slots land in a ring of per-slot buckets (plain `Vec`s whose
//! allocations are reused forever — pushing and popping a job is a couple of
//! array writes, no ordering work at all), while the rare distant wake goes
//! to a binary-heap overflow that migrates into the ring as the wheel turns.
//! This shape is dictated by the workloads: duty-cycled protocols like
//! PUNCTUAL park and wake several times per *round* (`ROUND_LEN` = 10 slots,
//! so horizons of 1–9 slots, millions of operations per run, and many jobs
//! sharing each wake slot), while one-shot protocols like UNIFORM park once
//! for up to a whole window. A comparison-based queue pays `O(log n)` per
//! job for the punctual traffic; the wheel pays `O(1)` and keeps the
//! grouped, insertion-ordered pops that make wake order deterministic. The
//! wheel is robust under the engine's arbitrary fast-forward jumps (idle
//! gaps and all-parked stretches can skip millions of slots at once).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ring size in slots. Wakes within `WHEEL` slots of the queue's current
/// base take the O(1) bucket path; anything farther overflows to the heap.
/// 64 comfortably covers PUNCTUAL's round length (10) and the other
/// duty-cycled protocols' short hops, while keeping `next_wake`'s worst-case
/// ring scan trivial.
const WHEEL: usize = 64;

/// One overflow entry, packed for cheap heap comparisons: wake slot in the
/// high bits, then insertion sequence, then the job index.
type FarEntry = Reverse<(u64, u64, u32)>;

/// A calendar of parked jobs keyed by absolute wake slot.
///
/// Values are indices into the engine's job table. Within one wake slot,
/// jobs pop in insertion order, so wake order is deterministic.
#[derive(Debug)]
pub struct WakeQueue {
    /// Ring of per-slot buckets; slot `s` lives in `buckets[s % WHEEL]`.
    /// Invariant: every bucketed entry's slot is in `[base, base + WHEEL)`.
    buckets: Vec<Vec<u32>>,
    /// Lower edge of the ring's horizon; advances monotonically with
    /// [`WakeQueue::pop_due`]. All live entries are at slots `>= base`.
    base: u64,
    /// Entries currently in the ring.
    near: usize,
    /// Overflow for wakes at `base + WHEEL` or beyond. Invariant restored
    /// after every base advance by migrating newly-near entries into the
    /// ring, so `near > 0` implies the earliest wake is in the ring.
    far: BinaryHeap<FarEntry>,
    seq: u64,
    pushes: u64,
    peak: usize,
}

impl Default for WakeQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WakeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            buckets: (0..WHEEL).map(|_| Vec::new()).collect(),
            base: 0,
            near: 0,
            far: BinaryHeap::new(),
            seq: 0,
            pushes: 0,
            peak: 0,
        }
    }

    /// Park `job` until `slot`. `slot` must not precede slots already
    /// processed by [`WakeQueue::pop_due`] (the engine only parks forward).
    pub fn push(&mut self, slot: u64, job: u32) {
        debug_assert!(slot >= self.base, "park into the past");
        if slot - self.base < WHEEL as u64 {
            self.buckets[(slot % WHEEL as u64) as usize].push(job);
            self.near += 1;
        } else {
            self.far.push(Reverse((slot, self.seq, job)));
            self.seq += 1;
        }
        self.pushes += 1;
        self.peak = self.peak.max(self.len());
    }

    /// The earliest wake slot, if any job is parked.
    pub fn next_wake(&self) -> Option<u64> {
        if self.near > 0 {
            // The far heap only holds entries past the ring's horizon, so
            // a non-empty ring always contains the minimum.
            for off in 0..WHEEL as u64 {
                let s = self.base + off;
                if !self.buckets[(s % WHEEL as u64) as usize].is_empty() {
                    return Some(s);
                }
            }
            unreachable!("near count positive but no occupied bucket");
        }
        self.far.peek().map(|Reverse((slot, _, _))| *slot)
    }

    /// Move every job due at or before `slot` into `out`, in ascending slot
    /// order (insertion order within a slot).
    pub fn pop_due(&mut self, slot: u64, out: &mut Vec<u32>) {
        if slot < self.base {
            return;
        }
        if self.near == 0 && self.far.is_empty() {
            self.base = slot + 1;
            return;
        }
        if self.near > 0 {
            // Usually `base == slot` and this inspects a single bucket; a
            // fast-forward jump sweeps at most the whole ring once.
            let hi = slot.min(self.base.saturating_add(WHEEL as u64 - 1));
            let mut s = self.base;
            while s <= hi && self.near > 0 {
                let bucket = &mut self.buckets[(s % WHEEL as u64) as usize];
                if !bucket.is_empty() {
                    self.near -= bucket.len();
                    out.append(bucket);
                }
                s += 1;
            }
        }
        // Ring slots all precede far slots, so draining the heap second
        // keeps `out` in ascending slot order.
        while let Some(Reverse((due, _, job))) = self.far.peek() {
            if *due > slot {
                break;
            }
            out.push(*job);
            self.far.pop();
        }
        self.base = slot + 1;
        // Restore the horizon invariant: far entries the advance brought
        // within the ring move into their buckets now, before any same-slot
        // push can land behind them (far entries are always older).
        while let Some(Reverse((due, _, _))) = self.far.peek() {
            if *due - self.base >= WHEEL as u64 {
                break;
            }
            let Reverse((due, _, job)) = self.far.pop().expect("peeked");
            self.buckets[(due % WHEEL as u64) as usize].push(job);
            self.near += 1;
        }
    }

    /// Number of parked jobs.
    pub fn len(&self) -> usize {
        self.near + self.far.len()
    }

    /// True when no job is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total park operations over the queue's lifetime (one job can park
    /// many times; feeds [`crate::metrics::SchedStats::parks`]).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Peak simultaneous occupancy over the queue's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Empty the queue and reset the lifetime counters, keeping every
    /// bucket's and the heap's allocation for the next run (the trial
    /// arena's reset contract).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.far.clear();
        self.base = 0;
        self.near = 0;
        self.seq = 0;
        self.pushes = 0;
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_slot_then_insertion_order() {
        let mut q = WakeQueue::new();
        q.push(7, 2);
        q.push(3, 1);
        q.push(7, 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_wake(), Some(3));

        let mut out = Vec::new();
        q.pop_due(2, &mut out);
        assert!(out.is_empty());
        q.pop_due(3, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(q.next_wake(), Some(7));

        out.clear();
        // A fast-forward past several wake slots drains all of them.
        q.pop_due(100, &mut out);
        assert_eq!(out, vec![2, 0]);
        assert!(q.is_empty());
        assert_eq!(q.next_wake(), None);
    }

    #[test]
    fn lifetime_counters_survive_pops() {
        let mut q = WakeQueue::new();
        q.push(3, 0);
        q.push(5, 1);
        let mut out = Vec::new();
        q.pop_due(10, &mut out);
        q.push(20, 0);
        // Counters are cumulative: emptying the queue does not reset them.
        assert_eq!(q.pushes(), 3);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_wakes_cross_the_ring_horizon() {
        let mut q = WakeQueue::new();
        // Two distant wakes on the same slot plus one near wake on that
        // slot, pushed after the wheel turned: pops stay insertion-ordered.
        q.push(1_000_000, 7);
        q.push(1_000_000, 8);
        q.push(2, 1);
        assert_eq!(q.next_wake(), Some(2));

        let mut out = Vec::new();
        q.pop_due(999_990, &mut out);
        assert_eq!(out, vec![1]);
        // The far entries are now within the ring horizon; a same-slot push
        // must land behind them.
        q.push(1_000_000, 9);
        assert_eq!(q.next_wake(), Some(1_000_000));
        out.clear();
        q.pop_due(1_000_000, &mut out);
        assert_eq!(out, vec![7, 8, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn giant_jump_drains_near_then_far_in_slot_order() {
        let mut q = WakeQueue::new();
        q.push(5, 0);
        q.push(1_000, 1);
        q.push(1_000_000, 2);
        q.push(6, 3);
        let mut out = Vec::new();
        q.pop_due(1_000_000_000_000, &mut out);
        assert_eq!(out, vec![0, 3, 1, 2]);
        assert!(q.is_empty());
        // Still usable after the jump.
        q.push(1_000_000_000_010, 4);
        assert_eq!(q.next_wake(), Some(1_000_000_000_010));
    }

    #[test]
    fn wheel_wraps_across_many_rounds() {
        // Exercise ring reuse: repeated short-horizon park/pop cycles far
        // beyond the ring size, mimicking PUNCTUAL's round train.
        let mut q = WakeQueue::new();
        let mut out = Vec::new();
        for slot in 0..10_000u64 {
            q.pop_due(slot, &mut out);
            for (j, step) in [(0u32, 2u64), (1, 3), (2, 9)] {
                if (slot + step) % (step + 1) == 0 {
                    q.push(slot + step, j);
                }
            }
            out.clear();
        }
        assert_eq!(q.pushes(), {
            let mut n = 0;
            for slot in 0..10_000u64 {
                for step in [2u64, 3, 9] {
                    if (slot + step) % (step + 1) == 0 {
                        n += 1;
                    }
                }
            }
            n
        });
    }

    #[test]
    fn clear_resets_counters_and_contents() {
        let mut q = WakeQueue::new();
        q.push(3, 0);
        q.push(500, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pushes(), 0);
        assert_eq!(q.peak(), 0);
        assert_eq!(q.next_wake(), None);
        // Reusable after a clear, with counters starting over.
        q.push(9, 4);
        let mut out = Vec::new();
        q.pop_due(9, &mut out);
        assert_eq!(out, vec![4]);
        assert_eq!(q.pushes(), 1);
    }

    /// Randomized cross-check against a straightforward ordered-map model:
    /// same pops, same order, same counters, under interleaved pushes,
    /// per-slot pops, and occasional fast-forward jumps.
    #[test]
    fn matches_btreemap_model_under_random_traffic() {
        use std::collections::BTreeMap;
        let mut q = WakeQueue::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        // Tiny deterministic LCG so the test needs no rng dependency wiring.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut slot = 0u64;
        let mut out = Vec::new();
        let mut expect = Vec::new();
        for step in 0..50_000u64 {
            // Mostly +1 advances, occasionally a big jump.
            slot += match rand() % 100 {
                0 => 1_000 + rand() % 10_000,
                1..=9 => 2 + rand() % 60,
                _ => 1,
            };
            out.clear();
            q.pop_due(slot, &mut out);
            expect.clear();
            let due: Vec<u64> = model.range(..=slot).map(|(s, _)| *s).collect();
            for s in due {
                expect.extend(model.remove(&s).unwrap());
            }
            assert_eq!(out, expect, "step {step} slot {slot}");
            assert_eq!(q.len(), model.values().map(Vec::len).sum::<usize>());
            assert_eq!(q.next_wake(), model.keys().next().copied());
            for _ in 0..rand() % 4 {
                let horizon = match rand() % 10 {
                    0 => 100 + rand() % 100_000, // far
                    _ => 2 + rand() % 12,        // punctual-style near
                };
                let job = (rand() % 500) as u32;
                q.push(slot + horizon, job);
                model.entry(slot + horizon).or_default().push(job);
            }
        }
    }
}
