//! Wake-slot calendar for the event-driven engine.
//!
//! Protocols that know their next active slot (see
//! [`crate::engine::Protocol::next_wake`]) are *parked*: the engine removes
//! them from the per-slot polling set and records the slot at which they next
//! need an `act()` call here. The queue is a calendar keyed by absolute slot;
//! a `BTreeMap` keeps `peek`/`pop` cheap and stays robust under the engine's
//! arbitrary fast-forward jumps (idle gaps and all-parked stretches can skip
//! millions of slots at once).

use std::collections::BTreeMap;

/// A calendar of parked jobs keyed by absolute wake slot.
///
/// Values are indices into the engine's job table. Within one wake slot,
/// jobs pop in insertion order, so wake order is deterministic.
#[derive(Debug, Default)]
pub struct WakeQueue {
    calendar: BTreeMap<u64, Vec<usize>>,
    parked: usize,
    pushes: u64,
    peak: usize,
}

impl WakeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park `job` until `slot`.
    pub fn push(&mut self, slot: u64, job: usize) {
        self.calendar.entry(slot).or_default().push(job);
        self.parked += 1;
        self.pushes += 1;
        self.peak = self.peak.max(self.parked);
    }

    /// The earliest wake slot, if any job is parked.
    pub fn next_wake(&self) -> Option<u64> {
        self.calendar.keys().next().copied()
    }

    /// Move every job due at or before `slot` into `out`.
    pub fn pop_due(&mut self, slot: u64, out: &mut Vec<usize>) {
        while let Some((&due, _)) = self.calendar.first_key_value() {
            if due > slot {
                break;
            }
            let jobs = self.calendar.remove(&due).expect("key just observed");
            self.parked -= jobs.len();
            out.extend(jobs);
        }
    }

    /// Number of parked jobs.
    pub fn len(&self) -> usize {
        self.parked
    }

    /// True when no job is parked.
    pub fn is_empty(&self) -> bool {
        self.parked == 0
    }

    /// Total park operations over the queue's lifetime (one job can park
    /// many times; feeds [`crate::metrics::SchedStats::parks`]).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Peak simultaneous occupancy over the queue's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_slot_then_insertion_order() {
        let mut q = WakeQueue::new();
        q.push(7, 2);
        q.push(3, 1);
        q.push(7, 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_wake(), Some(3));

        let mut out = Vec::new();
        q.pop_due(2, &mut out);
        assert!(out.is_empty());
        q.pop_due(3, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(q.next_wake(), Some(7));

        out.clear();
        // A fast-forward past several wake slots drains all of them.
        q.pop_due(100, &mut out);
        assert_eq!(out, vec![2, 0]);
        assert!(q.is_empty());
        assert_eq!(q.next_wake(), None);
    }

    #[test]
    fn lifetime_counters_survive_pops() {
        let mut q = WakeQueue::new();
        q.push(3, 0);
        q.push(5, 1);
        let mut out = Vec::new();
        q.pop_due(10, &mut out);
        q.push(20, 0);
        // Counters are cumulative: emptying the queue does not reset them.
        assert_eq!(q.pushes(), 3);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.len(), 1);
    }
}
