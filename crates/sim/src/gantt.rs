//! ASCII Gantt rendering of execution traces.
//!
//! A debugging and presentation aid: given a traced [`SimReport`], render
//! one row per job showing its window, transmissions, and delivery, plus a
//! channel row summarizing each slot. Used by the Figure-1 regeneration
//! and handy when stepping through protocol behaviour.
//!
//! ```text
//! channel |  ·xx·S··S·······
//! job 0   |  [--T----D    ]
//! job 1   |     [T--D  ]
//! ```
//!
//! Legend: `S` success, `x` collision, `!` jam, `·` silence; per job:
//! `[`/`]` window bounds, `T` transmission attempt, `D` delivery, `-`
//! in-window idle.

use crate::metrics::SimReport;
use crate::trace::{SlotOutcome, SlotRecord};

/// Options for [`render_gantt`].
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// First slot to render.
    pub from: u64,
    /// One past the last slot to render.
    pub to: u64,
    /// Render at most this many jobs (in id order).
    pub max_jobs: usize,
}

impl GanttOptions {
    /// Render the whole report (clamped to 240 columns and 32 jobs).
    pub fn whole(report: &SimReport) -> Self {
        Self {
            from: 0,
            to: report.slots_run.min(240),
            max_jobs: 32,
        }
    }
}

fn channel_char(rec: &SlotRecord) -> char {
    match rec.outcome {
        SlotOutcome::Silent => '·',
        SlotOutcome::Success { .. } => 'S',
        SlotOutcome::Collision { .. } => 'x',
        SlotOutcome::Jammed { .. } => '!',
        // Only the gap's first slot carries a record; the rest of the run
        // keeps the channel row's silent default. A `··×N` label is
        // overlaid afterwards when the visible span has room for it.
        SlotOutcome::SilentGap { .. } => '·',
    }
}

/// Render the trace as an ASCII Gantt chart. Returns an error string if
/// the report carries no trace.
pub fn render_gantt(report: &SimReport, opts: GanttOptions) -> Result<String, String> {
    let trace = report
        .trace
        .as_ref()
        .ok_or("report has no trace; run with EngineConfig::record_trace")?;
    let from = opts.from;
    let to = opts.to.min(report.slots_run);
    if to <= from {
        return Err(format!("empty slot range [{from}, {to})"));
    }
    let width = (to - from) as usize;

    // Channel row. The trace may be sparse at the tail (engine stops when
    // all jobs finish), so index by slot.
    let mut channel = vec!['·'; width];
    // Per-slot transmitter (successes only — collisions don't identify
    // sources on a real channel, and the trace honours that).
    let mut success_src: Vec<Option<u32>> = vec![None; width];
    for rec in trace {
        if rec.slot < from || rec.slot >= to {
            continue;
        }
        let i = (rec.slot - from) as usize;
        channel[i] = channel_char(rec);
        if let SlotOutcome::Success { src, .. } = rec.outcome {
            success_src[i] = Some(src);
        }
    }
    // Collapse fast-forwarded gaps into a visible `··×N` run-length label.
    // The gap still occupies exactly its covered columns (clamped to the
    // render range), so column alignment with the job rows is preserved;
    // gaps whose visible span is too narrow for the label stay plain `·`s.
    for rec in trace {
        let SlotOutcome::SilentGap { len } = rec.outcome else {
            continue;
        };
        let start = rec.slot.max(from);
        let end = (rec.slot + len).min(to);
        if end <= start {
            continue;
        }
        let label: Vec<char> = format!("··×{len}").chars().collect();
        let span = (end - start) as usize;
        if span >= label.len() {
            let base = (start - from) as usize;
            channel[base..base + label.len()].copy_from_slice(&label);
        }
    }

    let mut out = String::new();
    let label_w = 8;
    out.push_str(&format!(
        "{:<label_w$}|{}\n",
        "channel",
        channel.iter().collect::<String>()
    ));

    for (spec, outcome) in report.per_job().take(opts.max_jobs) {
        let mut row = vec![' '; width];
        for (i, cell) in row.iter_mut().enumerate() {
            let slot = from + i as u64;
            if spec.contains(slot) {
                *cell = '-';
            }
        }
        let mark = |row: &mut Vec<char>, slot: u64, c: char| {
            if slot >= from && slot < to {
                row[(slot - from) as usize] = c;
            }
        };
        mark(&mut row, spec.release, '[');
        if spec.deadline > 0 {
            mark(&mut row, spec.deadline - 1, ']');
        }
        // Mark this job's successful delivery.
        if let Some(slot) = outcome.slot() {
            mark(&mut row, slot, 'D');
        }
        // Mark observable transmissions (successes attributed to this job).
        for (i, src) in success_src.iter().enumerate() {
            if *src == Some(spec.id) && row[i] != 'D' {
                row[i] = 'T';
            }
        }
        out.push_str(&format!(
            "{:<label_w$}|{}\n",
            format!("job {}", spec.id),
            row.iter().collect::<String>()
        ));
    }
    if report.jobs.len() > opts.max_jobs {
        out.push_str(&format!(
            "… {} more jobs not shown\n",
            report.jobs.len() - opts.max_jobs
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Action, Engine, EngineConfig, JobCtx, Protocol};
    use crate::job::JobSpec;
    use crate::message::Payload;

    struct AtLocal(u64);
    impl Protocol for AtLocal {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
            if ctx.local_time == self.0 {
                Action::Transmit(Payload::Data(ctx.id))
            } else {
                Action::Listen
            }
        }
    }

    fn traced_report() -> SimReport {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        e.add_job(JobSpec::new(0, 0, 8), Box::new(AtLocal(2)));
        e.add_job(JobSpec::new(1, 3, 12), Box::new(AtLocal(4)));
        e.run()
    }

    #[test]
    fn renders_channel_and_jobs() {
        let r = traced_report();
        let g = render_gantt(&r, GanttOptions::whole(&r)).unwrap();
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("channel"));
        assert_eq!(lines.len(), 3);
        // Job 0 delivered at slot 2.
        let job0 = lines[1];
        assert_eq!(job0.chars().nth("job 0   |".len() + 2), Some('D'));
        // Job 1's window starts at slot 3.
        let job1 = lines[2];
        assert_eq!(job1.chars().nth("job 1   |".len() + 3), Some('['));
    }

    #[test]
    fn success_marks_match_outcomes() {
        let r = traced_report();
        let g = render_gantt(&r, GanttOptions::whole(&r)).unwrap();
        assert_eq!(g.matches('D').count(), r.successes());
    }

    #[test]
    fn no_trace_is_an_error() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(0)));
        let r = e.run();
        assert!(render_gantt(
            &r,
            GanttOptions {
                from: 0,
                to: 4,
                max_jobs: 4
            }
        )
        .is_err());
    }

    #[test]
    fn empty_range_is_an_error() {
        let r = traced_report();
        assert!(render_gantt(
            &r,
            GanttOptions {
                from: 5,
                to: 5,
                max_jobs: 4
            }
        )
        .is_err());
    }

    #[test]
    fn silent_gaps_render_as_collapsed_runs() {
        // Two event-driven jobs far apart: the engine fast-forwards the gap
        // into a single SilentGap record.
        struct WakeAt(u64);
        impl Protocol for WakeAt {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
                if ctx.local_time == self.0 {
                    Action::Transmit(Payload::Data(ctx.id))
                } else {
                    Action::Sleep
                }
            }
            fn next_wake(&self, ctx: &JobCtx) -> Option<u64> {
                Some(if ctx.local_time < self.0 {
                    self.0
                } else {
                    u64::MAX
                })
            }
        }
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(WakeAt(0)));
        e.add_job(JobSpec::new(1, 100, 104), Box::new(WakeAt(0)));
        let r = e.run();
        let gap_len = r
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .find_map(|rec| match rec.outcome {
                SlotOutcome::SilentGap { len } => Some(len),
                _ => None,
            })
            .expect("fast-forwarded stretch must be traced as a gap");
        let g = render_gantt(
            &r,
            GanttOptions {
                from: 0,
                to: 101,
                max_jobs: 4,
            },
        )
        .unwrap();
        let channel = g.lines().next().unwrap();
        assert!(
            channel.contains(&format!("··×{gap_len}")),
            "gap must render as a collapsed run: {channel}"
        );
        // The label overlays the gap's columns; width is unchanged.
        assert_eq!(channel.chars().count(), "channel ".len() + 1 + 101);
    }

    #[test]
    fn narrow_gaps_stay_plain_silence() {
        // A 2-slot visible span cannot hold "··×N"; it must not overflow
        // into neighbouring columns.
        let rec = |slot, outcome| SlotRecord {
            slot,
            outcome,
            live_jobs: 0,
            declared_contention: 0.0,
            payload: None,
        };
        let trace = vec![
            rec(
                0,
                SlotOutcome::Success {
                    src: 0,
                    was_data: true,
                },
            ),
            rec(1, SlotOutcome::SilentGap { len: 2 }),
            rec(
                3,
                SlotOutcome::Success {
                    src: 0,
                    was_data: false,
                },
            ),
        ];
        use crate::metrics::{ContentionStats, JamStats, JobOutcome, SchedStats, SlotCounts};
        let report = SimReport::new(
            vec![JobSpec::new(0, 0, 4)],
            vec![JobOutcome::Success { slot: 0 }],
            SlotCounts::default(),
            vec![Default::default()],
            4,
            JamStats::default(),
            1,
            0,
            SchedStats::default(),
            ContentionStats::default(),
            Some(trace),
            None,
        );
        let g = render_gantt(
            &report,
            GanttOptions {
                from: 0,
                to: 4,
                max_jobs: 1,
            },
        )
        .unwrap();
        let channel = g.lines().next().unwrap();
        assert_eq!(channel, "channel |S··S");
    }

    #[test]
    fn job_cap_is_reported() {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        for i in 0..5 {
            e.add_job(
                JobSpec::new(i, u64::from(i) * 10, u64::from(i) * 10 + 5),
                Box::new(AtLocal(1)),
            );
        }
        let r = e.run();
        let g = render_gantt(
            &r,
            GanttOptions {
                from: 0,
                to: 40,
                max_jobs: 2,
            },
        )
        .unwrap();
        assert!(g.contains("3 more jobs not shown"));
    }
}
