//! Job identities and deadline windows.

use serde::{Deserialize, Serialize};

/// Identifier of a job within one simulation.
///
/// Job IDs exist for bookkeeping and for tagging data messages; the paper's
/// jobs "do not have distinct IDs" in the sense that protocols must not use
/// the numeric value for coordination (and none of the protocols in this
/// workspace do — IDs only ever travel *inside* transmitted messages, which
/// is permitted since a successful transmission delivers its content).
pub type JobId = u32;

/// A unit-length message with a delivery window.
///
/// The window is the half-open slot interval `[release, deadline)`; the job
/// is activated at `release`, may touch the channel only during its window,
/// and must deliver its data message strictly before `deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobSpec {
    /// Identifier, unique within one instance.
    pub id: JobId,
    /// First slot of the window (the job's arrival / activation slot).
    pub release: u64,
    /// One past the last slot of the window.
    pub deadline: u64,
}

impl JobSpec {
    /// Create a job spec. Panics if `deadline <= release` (empty window).
    pub fn new(id: JobId, release: u64, deadline: u64) -> Self {
        assert!(
            deadline > release,
            "job {id}: window [{release}, {deadline}) is empty"
        );
        Self {
            id,
            release,
            deadline,
        }
    }

    /// Window size `w = deadline - release`.
    #[inline]
    pub fn window(&self) -> u64 {
        self.deadline - self.release
    }

    /// True if `slot` lies inside the window `[release, deadline)`.
    #[inline]
    pub fn contains(&self, slot: u64) -> bool {
        slot >= self.release && slot < self.deadline
    }

    /// The job class `ℓ = log2(w)` used by ALIGNED, valid when the window
    /// size is a power of two.
    #[inline]
    pub fn class(&self) -> u32 {
        debug_assert!(self.window().is_power_of_two());
        self.window().trailing_zeros()
    }

    /// True if the window is power-of-2 sized *and* starts at a multiple of
    /// its size (the paper's "power-of-2-aligned" condition).
    pub fn is_aligned(&self) -> bool {
        let w = self.window();
        w.is_power_of_two() && self.release.is_multiple_of(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_size_and_contains() {
        let j = JobSpec::new(3, 8, 16);
        assert_eq!(j.window(), 8);
        assert!(j.contains(8));
        assert!(j.contains(15));
        assert!(!j.contains(16));
        assert!(!j.contains(7));
    }

    #[test]
    fn alignment() {
        assert!(JobSpec::new(0, 0, 8).is_aligned());
        assert!(JobSpec::new(0, 16, 24).is_aligned());
        assert!(!JobSpec::new(0, 4, 12).is_aligned()); // start not multiple of 8
        assert!(!JobSpec::new(0, 0, 6).is_aligned()); // size not a power of 2
    }

    #[test]
    fn class_of_aligned_window() {
        assert_eq!(JobSpec::new(0, 0, 1).class(), 0);
        assert_eq!(JobSpec::new(0, 32, 64).class(), 5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_window_rejected() {
        let _ = JobSpec::new(0, 5, 5);
    }
}
