//! Optional per-slot execution traces.
//!
//! Traces are off by default (the hot path only bumps counters); enable them
//! via [`crate::engine::EngineConfig::record_trace`] to regenerate Figure 1
//! of the paper or to debug a protocol slot by slot.

use crate::job::JobId;
use crate::message::Payload;
use serde::{Deserialize, Serialize};

/// How one slot resolved, with enough detail to reconstruct schedules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// No transmissions, not jammed.
    Silent,
    /// A delivered transmission.
    Success {
        /// Transmitting job.
        src: JobId,
        /// Whether the delivered message was a data message.
        was_data: bool,
    },
    /// `n_tx >= 2` transmissions collided.
    Collision {
        /// Number of simultaneous transmissions.
        n_tx: u32,
    },
    /// The adversary jammed the slot (hiding `n_tx` underlying transmissions,
    /// possibly zero or one).
    Jammed {
        /// Number of transmissions the jam obscured.
        n_tx: u32,
    },
    /// A run of `len >= 2` consecutive silent slots starting at the record's
    /// `slot`, emitted by the engine's fast-forward over stretches where no
    /// job needed polling (idle gaps between arrivals, or every live job
    /// parked). Run-length encoding keeps trace memory proportional to
    /// *active* slots rather than the horizon.
    SilentGap {
        /// Number of consecutive silent slots covered.
        len: u64,
    },
}

/// A full record of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Global slot index.
    pub slot: u64,
    /// Channel resolution.
    pub outcome: SlotOutcome,
    /// Number of jobs live (activated, window not yet over, not finished)
    /// during the slot.
    pub live_jobs: u32,
    /// Sum of the transmission probabilities the live protocols *declared*
    /// for this slot (the paper's contention `C(t)`), where available.
    /// Protocols that do not implement [`crate::engine::Protocol::tx_probability`]
    /// contribute their realized action (1.0 if they transmitted, else 0.0).
    pub declared_contention: f64,
    /// The payload delivered, if the slot was a success. Kept out of
    /// `SlotOutcome` so the common case stays `Copy`-cheap to filter on.
    pub payload: Option<Payload>,
}

impl SlotRecord {
    /// True if the slot delivered a data message.
    pub fn is_data_success(&self) -> bool {
        matches!(self.outcome, SlotOutcome::Success { was_data: true, .. })
    }

    /// Number of consecutive slots this record covers, starting at `slot`:
    /// 1 for every outcome except [`SlotOutcome::SilentGap`].
    pub fn covered_slots(&self) -> u64 {
        match self.outcome {
            SlotOutcome::SilentGap { len } => len,
            _ => 1,
        }
    }

    /// True if the record carries no transmission (a single silent slot or a
    /// silent gap).
    pub fn is_silent(&self) -> bool {
        matches!(
            self.outcome,
            SlotOutcome::Silent | SlotOutcome::SilentGap { .. }
        )
    }
}

/// Summary statistics computable from a trace; used by tests and the
/// experiment harness to cross-check the engine's running counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTally {
    /// Silent slots.
    pub silent: u64,
    /// Successful slots.
    pub success: u64,
    /// Collision slots.
    pub collision: u64,
    /// Jammed slots.
    pub jammed: u64,
    /// Successful slots that carried a data message (subset of `success`,
    /// mirroring [`crate::metrics::SlotCounts::data_success`]).
    pub data_success: u64,
}

/// Tally a trace's slot outcomes.
pub fn tally(trace: &[SlotRecord]) -> TraceTally {
    let mut t = TraceTally::default();
    for rec in trace {
        match rec.outcome {
            SlotOutcome::Silent => t.silent += 1,
            SlotOutcome::Success { was_data, .. } => {
                t.success += 1;
                if was_data {
                    t.data_success += 1;
                }
            }
            SlotOutcome::Collision { .. } => t.collision += 1,
            SlotOutcome::Jammed { .. } => t.jammed += 1,
            SlotOutcome::SilentGap { len } => t.silent += len,
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: u64, outcome: SlotOutcome) -> SlotRecord {
        SlotRecord {
            slot,
            outcome,
            live_jobs: 0,
            declared_contention: 0.0,
            payload: None,
        }
    }

    #[test]
    fn tally_counts_each_kind() {
        let trace = vec![
            rec(0, SlotOutcome::Silent),
            rec(
                1,
                SlotOutcome::Success {
                    src: 1,
                    was_data: true,
                },
            ),
            rec(2, SlotOutcome::Collision { n_tx: 3 }),
            rec(3, SlotOutcome::Jammed { n_tx: 1 }),
            rec(4, SlotOutcome::Silent),
            rec(5, SlotOutcome::SilentGap { len: 1000 }),
        ];
        let t = tally(&trace);
        assert_eq!(
            t,
            TraceTally {
                silent: 1002,
                success: 1,
                collision: 1,
                jammed: 1,
                data_success: 1
            }
        );
    }

    #[test]
    fn control_success_does_not_count_as_data() {
        let trace = vec![rec(
            0,
            SlotOutcome::Success {
                src: 0,
                was_data: false,
            },
        )];
        let t = tally(&trace);
        assert_eq!(t.success, 1);
        assert_eq!(t.data_success, 0);
    }

    #[test]
    fn gap_records_cover_their_run_length() {
        let gap = rec(10, SlotOutcome::SilentGap { len: 42 });
        assert_eq!(gap.covered_slots(), 42);
        assert!(gap.is_silent());
        assert!(!gap.is_data_success());
        let plain = rec(0, SlotOutcome::Silent);
        assert_eq!(plain.covered_slots(), 1);
        assert!(plain.is_silent());
        assert!(!rec(1, SlotOutcome::Collision { n_tx: 2 }).is_silent());
    }

    #[test]
    fn data_success_detection() {
        let mut r = rec(
            0,
            SlotOutcome::Success {
                src: 2,
                was_data: true,
            },
        );
        assert!(r.is_data_success());
        r.outcome = SlotOutcome::Success {
            src: 2,
            was_data: false,
        };
        assert!(!r.is_data_success());
    }
}
