//! Simulation outcomes and aggregate metrics.

use crate::job::{JobId, JobSpec};
use crate::probe::ProbeReport;
use crate::trace::SlotRecord;
use serde::{Deserialize, Serialize};

/// The fate of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The job's data message was delivered in `slot` (inside its window).
    Success {
        /// The slot of the successful delivery.
        slot: u64,
    },
    /// The window closed without a successful delivery.
    Missed,
}

impl JobOutcome {
    /// True if the deadline was met.
    #[inline]
    pub fn is_success(&self) -> bool {
        matches!(self, JobOutcome::Success { .. })
    }

    /// Delivery slot, if successful.
    #[inline]
    pub fn slot(&self) -> Option<u64> {
        match self {
            JobOutcome::Success { slot } => Some(*slot),
            JobOutcome::Missed => None,
        }
    }
}

/// Per-slot channel activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotCounts {
    /// Slots with no transmission and no jam. Slots the engine fast-forwards
    /// over (idle gaps between arrivals, stretches where every live job is
    /// parked on a wake hint) are accumulated here in O(1), so `total()`
    /// always equals the number of slots the run covered.
    pub silent: u64,
    /// Slots that delivered a message.
    pub success: u64,
    /// Slots with a genuine collision (>= 2 transmissions).
    pub collision: u64,
    /// Slots the adversary jammed.
    pub jammed: u64,
    /// Successful slots that carried a data message (subset of `success`).
    pub data_success: u64,
}

impl SlotCounts {
    /// Total slots accounted for.
    pub fn total(&self) -> u64 {
        self.silent + self.success + self.collision + self.jammed
    }
}

/// Per-job channel-access counters — the "energy" complexity that much of
/// the contention-resolution literature optimizes (transmitting and
/// listening both cost radio power; sleeping is free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Slots in which the job transmitted.
    pub transmissions: u64,
    /// Slots in which the job listened without transmitting.
    pub listens: u64,
}

impl AccessCounts {
    /// Total radio-active slots.
    pub fn total(&self) -> u64 {
        self.transmissions + self.listens
    }
}

/// Adversary-side counters for one run: how often the jammer *attempted* a
/// jam and how often the `p_jam` coin let the attempt succeed. Successful
/// jams also appear as [`SlotCounts::jammed`]; attempts that failed their
/// coin flip are visible only here, which is what makes attack efficacy
/// (`succeeded / attempted` vs the configured `p_jam`) measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct JamStats {
    /// Slots in which the adversary attempted a jam.
    pub attempted: u64,
    /// Attempts that succeeded (equals [`SlotCounts::jammed`]).
    pub succeeded: u64,
}

// Manual impl so a missing `jam_stats` field (surfaced as `Null` by the
// field lookup) falls back to all-zero counters: artifacts archived
// before the adversary counters existed must still deserialize.
impl<'de> serde::Deserialize<'de> for JamStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            attempted: u64::from_value(serde::field(v, "attempted")?)?,
            succeeded: u64::from_value(serde::field(v, "succeeded")?)?,
        })
    }
}

impl JamStats {
    /// Empirical jam success rate `succeeded / attempted`, or `None` when
    /// the adversary never attempted (avoids manufacturing a NaN).
    pub fn efficacy(&self) -> Option<f64> {
        (self.attempted > 0).then(|| self.succeeded as f64 / self.attempted as f64)
    }
}

/// Scheduler-side counters for one run: how much work the event-driven
/// engine avoided. Sits next to [`SimReport::engine_nanos`] so throughput
/// numbers (the `slotloop` bench) can be attributed to skipped slots.
/// Scheduling-dependent by nature — like `engine_nanos`, excluded from
/// cross-mode equivalence comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SchedStats {
    /// All-parked/idle stretches fast-forwarded in O(1).
    pub gap_skips: u64,
    /// Total slots covered by those stretches (subset of
    /// [`SlotCounts::silent`]).
    pub gap_slots: u64,
    /// Jobs parked on a wake hint (total [`crate::sched::WakeQueue`]
    /// insertions over the run).
    pub parks: u64,
    /// Peak number of simultaneously parked jobs.
    pub peak_parked: u64,
}

// Manual impl so a missing `sched_stats` field (surfaced as `Null` by the
// field lookup) falls back to all-zero counters: artifacts archived before
// the scheduler counters existed must still deserialize.
impl<'de> serde::Deserialize<'de> for SchedStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            gap_skips: u64::from_value(serde::field(v, "gap_skips")?)?,
            gap_slots: u64::from_value(serde::field(v, "gap_slots")?)?,
            parks: u64::from_value(serde::field(v, "parks")?)?,
            peak_parked: u64::from_value(serde::field(v, "peak_parked")?)?,
        })
    }
}

impl SchedStats {
    /// Fraction of the run's slots covered by O(1) gap skips (0.0 for an
    /// empty run) — the share of the timeline the slot loop never walked.
    pub fn skipped_fraction(&self, slots_run: u64) -> f64 {
        if slots_run == 0 {
            return 0.0;
        }
        self.gap_slots as f64 / slots_run as f64
    }
}

/// Declared-contention accounting for one run: the paper's contention
/// `C(t) = Σ_j p_j(t)` summed over every measured slot. Populated only
/// while some sink records slot traces (the per-slot sum is diagnostic and
/// skipped otherwise, exactly like `SlotRecord::declared_contention`);
/// gap-skipped silent stretches contribute zero but still count as
/// measured. Exact-path jobs contribute their `tx_probability`, cohorts
/// and aggregate classes their aggregate `m·p`, duty groups their standing
/// counts; parked event-driven jobs and kernel one-shots are not polled
/// for diagnostics, so like `declared_contention` itself this is
/// comparable across fidelities only statistically (and exactly under
/// dense scheduling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ContentionStats {
    /// Sum of per-slot declared contention over all measured slots.
    pub declared_sum: f64,
    /// Slots covered while measurement was on (0 when tracing was off).
    pub measured_slots: u64,
}

// Manual impl so a missing `contention_stats` field (surfaced as `Null` by
// the field lookup) falls back to zeros: artifacts archived before the
// contention counters existed must still deserialize.
impl<'de> serde::Deserialize<'de> for ContentionStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            declared_sum: f64::from_value(serde::field(v, "declared_sum")?)?,
            measured_slots: u64::from_value(serde::field(v, "measured_slots")?)?,
        })
    }
}

impl ContentionStats {
    /// Mean declared contention per measured slot, or `None` when nothing
    /// was measured (avoids manufacturing a NaN).
    pub fn mean(&self) -> Option<f64> {
        (self.measured_slots > 0).then(|| self.declared_sum / self.measured_slots as f64)
    }
}

/// The result of running one simulation to completion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The jobs that were simulated, in the order they were added.
    pub jobs: Vec<JobSpec>,
    /// Outcome per job, indexed by job id.
    outcomes: Vec<JobOutcome>,
    /// Channel activity counters.
    pub counts: SlotCounts,
    /// Per-job channel-access counters, indexed by job id.
    pub accesses: Vec<AccessCounts>,
    /// Number of slots simulated.
    pub slots_run: u64,
    /// Adversary attempt/success counters (all zero on a clean channel).
    /// Defaults on deserialization so pre-existing artifacts still load.
    #[serde(default)]
    pub jam_stats: JamStats,
    /// The master seed used (for replay).
    pub seed: u64,
    /// Wall-clock nanoseconds the engine spent in its slot loop. Volatile
    /// across runs of identical code — exclude it from determinism
    /// comparisons (everything else in the report is a pure function of
    /// the instance and seed).
    pub engine_nanos: u64,
    /// Scheduler work-avoidance counters (gap skips, parked jobs).
    /// Scheduling-dependent like `engine_nanos`; defaults on
    /// deserialization so pre-existing artifacts still load.
    #[serde(default)]
    pub sched_stats: SchedStats,
    /// Declared-contention totals (see [`ContentionStats`]); zero unless
    /// the run recorded slot traces. Defaults on deserialization so
    /// pre-existing artifacts still load.
    #[serde(default)]
    pub contention_stats: ContentionStats,
    /// Full per-slot trace if `EngineConfig::record_trace` was set.
    pub trace: Option<Vec<SlotRecord>>,
    /// Probe sink outputs if `EngineConfig::probe` was set (see
    /// [`crate::probe`]).
    pub probes: Option<ProbeReport>,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        jobs: Vec<JobSpec>,
        outcomes: Vec<JobOutcome>,
        counts: SlotCounts,
        accesses: Vec<AccessCounts>,
        slots_run: u64,
        jam_stats: JamStats,
        seed: u64,
        engine_nanos: u64,
        sched_stats: SchedStats,
        contention_stats: ContentionStats,
        trace: Option<Vec<SlotRecord>>,
        probes: Option<ProbeReport>,
    ) -> Self {
        Self {
            jobs,
            outcomes,
            counts,
            accesses,
            slots_run,
            jam_stats,
            seed,
            engine_nanos,
            sched_stats,
            contention_stats,
            trace,
            probes,
        }
    }

    /// Engine slot throughput in slots per wall-clock second (0.0 when the
    /// run was too fast to time).
    pub fn slots_per_sec(&self) -> f64 {
        if self.engine_nanos == 0 {
            return 0.0;
        }
        self.slots_run as f64 / (self.engine_nanos as f64 / 1e9)
    }

    /// Outcome of job `id`. Panics if `id` was not simulated.
    pub fn outcome(&self, id: JobId) -> JobOutcome {
        self.outcomes[id as usize]
    }

    /// All outcomes, indexed by job id.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Number of jobs that met their deadline.
    pub fn successes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_success()).count()
    }

    /// Number of jobs that missed their deadline.
    pub fn misses(&self) -> usize {
        self.outcomes.len() - self.successes()
    }

    /// Fraction of jobs that met their deadline (1.0 for an empty instance).
    pub fn success_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.successes() as f64 / self.outcomes.len() as f64
    }

    /// Success fraction restricted to jobs with window size exactly `w`.
    pub fn success_fraction_for_window(&self, w: u64) -> Option<f64> {
        let mut total = 0usize;
        let mut ok = 0usize;
        for job in &self.jobs {
            if job.window() == w {
                total += 1;
                if self.outcome(job.id).is_success() {
                    ok += 1;
                }
            }
        }
        (total > 0).then(|| ok as f64 / total as f64)
    }

    /// Iterator over `(spec, outcome)` pairs.
    pub fn per_job(&self) -> impl Iterator<Item = (&JobSpec, JobOutcome)> + '_ {
        self.jobs.iter().map(|j| (j, self.outcome(j.id)))
    }

    /// Latency (delivery slot − release) of each successful job.
    pub fn latencies(&self) -> Vec<u64> {
        self.per_job()
            .filter_map(|(j, o)| o.slot().map(|s| s - j.release))
            .collect()
    }

    /// Channel accesses of job `id`.
    pub fn accesses_of(&self, id: JobId) -> AccessCounts {
        self.accesses[id as usize]
    }

    /// Mean transmissions per job (NaN for an empty instance).
    pub fn mean_transmissions(&self) -> f64 {
        if self.accesses.is_empty() {
            return f64::NAN;
        }
        self.accesses
            .iter()
            .map(|a| a.transmissions as f64)
            .sum::<f64>()
            / self.accesses.len() as f64
    }

    /// Mean radio-active (transmit + listen) slots per job.
    pub fn mean_accesses(&self) -> f64 {
        if self.accesses.is_empty() {
            return f64::NAN;
        }
        self.accesses.iter().map(|a| a.total() as f64).sum::<f64>() / self.accesses.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let jobs = vec![
            JobSpec::new(0, 0, 8),
            JobSpec::new(1, 0, 8),
            JobSpec::new(2, 4, 8),
        ];
        let outcomes = vec![
            JobOutcome::Success { slot: 3 },
            JobOutcome::Missed,
            JobOutcome::Success { slot: 5 },
        ];
        SimReport::new(
            jobs,
            outcomes,
            SlotCounts {
                silent: 4,
                success: 2,
                collision: 1,
                jammed: 1,
                data_success: 2,
            },
            vec![
                AccessCounts {
                    transmissions: 1,
                    listens: 3,
                },
                AccessCounts {
                    transmissions: 8,
                    listens: 0,
                },
                AccessCounts {
                    transmissions: 1,
                    listens: 1,
                },
            ],
            8,
            JamStats {
                attempted: 2,
                succeeded: 1,
            },
            42,
            4_000,
            SchedStats {
                gap_skips: 1,
                gap_slots: 4,
                parks: 2,
                peak_parked: 2,
            },
            ContentionStats {
                declared_sum: 4.0,
                measured_slots: 8,
            },
            None,
            None,
        )
    }

    #[test]
    fn success_accounting() {
        let r = report();
        assert_eq!(r.successes(), 2);
        assert_eq!(r.misses(), 1);
        assert!((r.success_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_window_fraction() {
        let r = report();
        assert_eq!(r.success_fraction_for_window(8), Some(0.5));
        assert_eq!(r.success_fraction_for_window(4), Some(1.0));
        assert_eq!(r.success_fraction_for_window(16), None);
    }

    #[test]
    fn latencies_are_relative_to_release() {
        let r = report();
        assert_eq!(r.latencies(), vec![3, 1]);
    }

    #[test]
    fn counts_total() {
        assert_eq!(report().counts.total(), 8);
    }

    fn empty() -> SimReport {
        SimReport::new(
            vec![],
            vec![],
            SlotCounts::default(),
            vec![],
            0,
            JamStats::default(),
            0,
            0,
            SchedStats::default(),
            ContentionStats::default(),
            None,
            None,
        )
    }

    #[test]
    fn empty_instance_success_fraction_is_one() {
        let r = empty();
        assert_eq!(r.success_fraction(), 1.0);
        assert!(r.mean_accesses().is_nan());
    }

    #[test]
    fn slot_throughput() {
        // 8 slots in 4000 ns -> 2e6 slots/s.
        let r = report();
        assert!((r.slots_per_sec() - 2e6).abs() < 1e-6);
        // Untimed run reports zero rather than dividing by zero.
        assert_eq!(empty().slots_per_sec(), 0.0);
    }

    #[test]
    fn jam_stats_efficacy() {
        let r = report();
        assert_eq!(r.jam_stats.efficacy(), Some(0.5));
        // A clean channel has no attempts and therefore no efficacy.
        assert_eq!(empty().jam_stats.efficacy(), None);
    }

    #[test]
    fn sched_stats_skipped_fraction() {
        let r = report();
        assert!((r.sched_stats.skipped_fraction(r.slots_run) - 0.5).abs() < 1e-12);
        // Empty run reports zero rather than dividing by zero.
        assert_eq!(empty().sched_stats.skipped_fraction(0), 0.0);
    }

    #[test]
    fn contention_stats_mean() {
        let r = report();
        assert_eq!(r.contention_stats.mean(), Some(0.5));
        // An unmeasured run has no mean rather than a NaN.
        assert_eq!(empty().contention_stats.mean(), None);
    }

    #[test]
    fn access_accounting() {
        let r = report();
        assert_eq!(r.accesses_of(1).transmissions, 8);
        assert!((r.mean_transmissions() - 10.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_accesses() - 14.0 / 3.0).abs() < 1e-12);
    }
}
