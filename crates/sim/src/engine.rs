//! The slot-synchronized simulation engine.
//!
//! The engine owns a set of jobs, each driven by a [`Protocol`]
//! implementation, and advances the channel slot by slot:
//!
//! 1. jobs whose release slot arrived are **activated**;
//! 2. every live job chooses an [`Action`] (transmit / listen / sleep) —
//!    seeing only its *local* context, per the paper's model;
//! 3. the channel resolves the slot (silence / success / noise), the
//!    [`crate::jamming::Jammer`] gets a chance to create noise;
//! 4. listeners receive the slot's [`Feedback`];
//! 5. jobs whose data message was delivered, whose protocol reports done, or
//!    whose window closed are retired.
//!
//! The engine is the *only* component with a global view; protocols are
//! handed a [`JobCtx`] that deliberately omits the global slot index unless
//! [`EngineConfig::expose_aligned_clock`] is set (valid only for the
//! power-of-2-aligned special case of Section 3, where window alignment
//! makes a shared clock implicitly available).

use crate::jamming::{Jammer, SlotView};
use crate::job::{JobId, JobSpec};
use crate::message::Payload;
use crate::metrics::{AccessCounts, JamStats, JobOutcome, SchedStats, SimReport, SlotCounts};
use crate::probe::{ProbeBus, ProbeEvent, ProbeRecord, ProbeReport, ProbeSpec, VecSink};
use crate::rng::{SeedSeq, StreamLabel};
use crate::sched::WakeQueue;
use crate::slot::Feedback;
use crate::trace::{SlotOutcome, SlotRecord};
use rand::RngCore;
use rand_chacha::ChaCha8Rng;

/// A job's decision for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Broadcast `Payload` in this slot.
    Transmit(Payload),
    /// Stay quiet but observe the slot's feedback.
    Listen,
    /// Neither transmit nor observe (no feedback is delivered).
    Sleep,
}

/// The local context a protocol sees each slot.
///
/// Contains nothing a real station could not know: its own id (used only to
/// tag its data message), its window size, how many slots have elapsed since
/// its own activation, and — in the aligned special case only — the shared
/// clock.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// This job's id (for tagging its data payload).
    pub id: JobId,
    /// Window size `w` in slots.
    pub window: u64,
    /// Slots since activation: `0` in the release slot, `w - 1` in the last
    /// slot of the window.
    pub local_time: u64,
    /// The shared global clock, present only when the engine is configured
    /// for the power-of-2-aligned special case.
    pub aligned_time: Option<u64>,
    /// True when some probe sink consumes protocol events: the protocol
    /// should arm its [`crate::probe::EventBuf`] at activation. Purely an
    /// observability flag — it must never influence protocol decisions.
    pub probed: bool,
}

impl JobCtx {
    /// Slots remaining in the window *including* the current slot.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.window - self.local_time
    }

    /// The aligned global clock; panics if the engine did not expose one.
    #[inline]
    pub fn aligned_now(&self) -> u64 {
        self.aligned_time
            .expect("protocol requires EngineConfig::expose_aligned_clock")
    }
}

/// A contention-resolution protocol driving a single job.
///
/// One value of this trait is instantiated per job; all coordination happens
/// through the channel.
pub trait Protocol {
    /// Called once, in the job's release slot, before the first `act`.
    fn on_activate(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) {}

    /// Decide this slot's action.
    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action;

    /// Observe the feedback for the slot just completed. Not called if the
    /// job slept or has been retired.
    fn on_feedback(&mut self, _ctx: &JobCtx, _fb: &Feedback, _rng: &mut dyn RngCore) {}

    /// True once the job will take no further useful action; the engine
    /// retires it early. (Delivery of the job's data message retires it
    /// automatically regardless.)
    fn is_done(&self) -> bool {
        false
    }

    /// The probability with which this protocol intended to transmit in the
    /// current slot, if it can report one. Used for measuring the paper's
    /// contention `C(t) = Σ_j p_j(t)`; purely diagnostic.
    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        None
    }

    /// Scheduling hint: the next *local* slot at which this job needs an
    /// `act()` call, given that the slot described by `ctx` just completed.
    ///
    /// Returning `Some(w)` with `w > ctx.local_time + 1` promises that for
    /// every local slot in `(ctx.local_time, w)` the protocol would have
    /// returned [`Action::Sleep`] *without drawing randomness or changing
    /// state*. Under [`Scheduling::EventDriven`] the engine then parks the
    /// job and skips those `act()` calls entirely — no ctx construction, no
    /// virtual dispatch — waking it at local slot `w` (possibly earlier,
    /// never later; hints past the window are clamped to its last slot, and
    /// `u64::MAX` means "never again"). Because the skipped calls are
    /// exactly the ones with no observable effect, results are bit-identical
    /// to dense polling.
    ///
    /// The default (`None`) opts out: the job is polled every slot, which is
    /// always correct (legacy behavior).
    fn next_wake(&self, _ctx: &JobCtx) -> Option<u64> {
        None
    }

    /// Move any buffered [`ProbeEvent`]s into `out`. Called once per slot
    /// (after feedback delivery) for every polled job while a sink wants
    /// events; the engine stamps each event with the slot and job id.
    ///
    /// Protocols may emit only from slots they attend (`act`/`on_feedback`),
    /// so per-job event streams are identical across scheduling modes (see
    /// [`crate::probe`] for the full contract). The default is a no-op for
    /// protocols with nothing to report.
    fn drain_events(&mut self, _out: &mut Vec<ProbeEvent>) {}
}

/// How the engine visits live jobs each slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// Park jobs whose protocol reports a [`Protocol::next_wake`] hint and
    /// skip their `act()` calls until the wake slot; stretches where *every*
    /// live job is parked are fast-forwarded in O(1). Protocols without
    /// hints are still polled densely, so this is safe for any mix.
    #[default]
    EventDriven,
    /// Poll every live job every slot (legacy behavior). Wake hints are
    /// never consulted; useful as the reference in equivalence tests.
    Dense,
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Hard cap on simulated slots (safety net against livelock). When
    /// `None`, the engine runs until the last deadline.
    pub max_slots: Option<u64>,
    /// Record a full [`SlotRecord`] trace (off for large Monte-Carlo runs).
    pub record_trace: bool,
    /// Expose the global slot index to protocols via
    /// [`JobCtx::aligned_time`]. Only legitimate for the aligned special
    /// case (Section 3); PUNCTUAL must run with this off.
    pub expose_aligned_clock: bool,
    /// How live jobs are visited each slot (see [`Scheduling`]).
    pub scheduling: Scheduling,
    /// Probe sinks to attach (see [`crate::probe`]). `None` disables the
    /// probe layer entirely; with `record_trace` also off, the slot loop
    /// does no observability work beyond two branch checks.
    pub probe: Option<ProbeSpec>,
}

impl EngineConfig {
    /// Config for the aligned special case (shared clock exposed).
    pub fn aligned() -> Self {
        Self {
            expose_aligned_clock: true,
            ..Self::default()
        }
    }

    /// Enable trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Force dense polling (ignore wake hints).
    pub fn dense(mut self) -> Self {
        self.scheduling = Scheduling::Dense;
        self
    }

    /// Attach probe sinks (see [`crate::probe`]).
    pub fn with_probe(mut self, spec: ProbeSpec) -> Self {
        self.probe = Some(spec);
        self
    }
}

struct JobState {
    spec: JobSpec,
    protocol: Box<dyn Protocol>,
    rng: ChaCha8Rng,
    outcome: Option<JobOutcome>,
    accesses: AccessCounts,
}

/// The simulation engine. See the [module docs](self) for the slot loop.
pub struct Engine {
    config: EngineConfig,
    seeds: SeedSeq,
    jobs: Vec<JobState>,
    jammer: Jammer,
}

/// Scratch buffers reused across slots so the hot loop stays allocation-free.
#[derive(Default)]
struct SlotScratch {
    /// Indices (into `jobs`) of jobs that transmitted, with their payloads.
    transmitters: Vec<(usize, Payload)>,
    /// Indices of jobs that listened (receive feedback).
    listeners: Vec<usize>,
}

impl Engine {
    /// Create an engine with the given configuration and master seed.
    pub fn new(config: EngineConfig, seed: u64) -> Self {
        Self {
            config,
            seeds: SeedSeq::new(seed),
            jobs: Vec::new(),
            jammer: Jammer::none(),
        }
    }

    /// Install a jamming adversary (default: none).
    pub fn set_jammer(&mut self, jammer: Jammer) {
        self.jammer = jammer;
    }

    /// Add a job. Jobs must be added with ids `0, 1, 2, …` in order; this
    /// keeps outcome lookup an index and catches instance-construction bugs.
    pub fn add_job(&mut self, spec: JobSpec, protocol: Box<dyn Protocol>) {
        assert_eq!(
            spec.id as usize,
            self.jobs.len(),
            "jobs must be added in id order"
        );
        let rng = self.seeds.rng(StreamLabel::Job, u64::from(spec.id));
        self.jobs.push(JobState {
            spec,
            protocol,
            rng,
            outcome: None,
            accesses: AccessCounts::default(),
        });
    }

    /// Add every job in `specs`, building each protocol with `factory`.
    pub fn add_jobs<F>(&mut self, specs: &[JobSpec], mut factory: F)
    where
        F: FnMut(&JobSpec) -> Box<dyn Protocol>,
    {
        for spec in specs {
            let protocol = factory(spec);
            self.add_job(*spec, protocol);
        }
    }

    /// Number of jobs registered.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Run the simulation to completion and return the report.
    pub fn run(mut self) -> SimReport {
        let started = std::time::Instant::now();
        let horizon = self.jobs.iter().map(|j| j.spec.deadline).max().unwrap_or(0);
        // Running past the last deadline is pointless (all jobs retired), so
        // the horizon caps the configured limit rather than the reverse.
        let max_slots = match self.config.max_slots {
            Some(cap) => cap.min(horizon),
            None => horizon,
        };

        // Activation order: job indices sorted by release slot.
        let mut by_release: Vec<usize> = (0..self.jobs.len()).collect();
        by_release.sort_by_key(|&i| (self.jobs[i].spec.release, self.jobs[i].spec.id));
        let mut next_pending = 0usize;

        // `polled` holds live jobs visited every slot; `parked` holds live
        // jobs waiting for their wake slot (event-driven scheduling only).
        let mut polled: Vec<usize> = Vec::with_capacity(self.jobs.len());
        let mut parked = WakeQueue::new();
        let event_driven = self.config.scheduling == Scheduling::EventDriven;
        // An adversary that can strike silent slots draws randomness every
        // slot, so all-parked stretches cannot be skipped without
        // desynchronizing (and silencing) it; such slots run one by one.
        // This keys off the `Adversary` trait's declaration, not any
        // concrete policy, so new idle-striking adversaries gate correctly.
        let jammer_strikes_idle = self.jammer.strikes_idle();
        let mut scratch = SlotScratch::default();
        let mut counts = SlotCounts::default();
        // All observability flows through the probe bus. The legacy
        // `record_trace` flag is a `VecSink` attached first, so its output
        // is bit-identical to the old unconditional trace Vec.
        let mut bus = ProbeBus::new();
        if self.config.record_trace {
            bus.push(Box::new(VecSink::new()));
        }
        if let Some(spec) = &self.config.probe {
            for sink in &spec.sinks {
                bus.push(sink.build());
            }
        }
        let wants_slots = bus.wants_slots();
        let probed = bus.wants_events();
        let mut event_scratch: Vec<ProbeEvent> = Vec::new();
        let mut sched_stats = SchedStats::default();
        let mut jam_rng = self.seeds.rng(StreamLabel::Jammer, 0);

        let mut slot: u64 = 0;
        while slot < max_slots {
            // Nothing live and nothing pending: the channel is idle forever.
            if polled.is_empty() && parked.is_empty() && next_pending == by_release.len() {
                break;
            }
            // Fast-forward through stretches where no job needs polling:
            // idle gaps between arrival bursts, and stretches where every
            // live job is parked. The skipped slots really are silent, so
            // they stay accounted (and traced, when tracing, as a single
            // run-length record): `counts.total()` always equals the number
            // of slots the run covered.
            if polled.is_empty() && (parked.is_empty() || !jammer_strikes_idle) {
                let mut next_event = u64::MAX;
                if next_pending < by_release.len() {
                    next_event = self.jobs[by_release[next_pending]].spec.release;
                }
                if let Some(wake) = parked.next_wake() {
                    next_event = next_event.min(wake);
                }
                if next_event > slot {
                    let until = next_event.min(max_slots);
                    let gap = until - slot;
                    counts.silent += gap;
                    sched_stats.gap_skips += 1;
                    sched_stats.gap_slots += gap;
                    // Stateful adversaries observe the skipped silence in
                    // bulk (contract: identical to per-slot rejections).
                    self.jammer.on_silent_gap(gap);
                    if wants_slots {
                        bus.on_slot(&SlotRecord {
                            slot,
                            outcome: if gap == 1 {
                                SlotOutcome::Silent
                            } else {
                                SlotOutcome::SilentGap { len: gap }
                            },
                            live_jobs: parked.len() as u32,
                            declared_contention: 0.0,
                            payload: None,
                        });
                    }
                    if probed {
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: None,
                            event: ProbeEvent::GapSkip { len: gap },
                        });
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: None,
                            event: ProbeEvent::WakeQueueStats {
                                parked: parked.len() as u32,
                            },
                        });
                    }
                    slot = until;
                    if slot == max_slots {
                        break;
                    }
                }
            }

            // 0. Wake parked jobs whose slot arrived.
            parked.pop_due(slot, &mut polled);

            // 1. Activate arrivals.
            while next_pending < by_release.len()
                && self.jobs[by_release[next_pending]].spec.release == slot
            {
                let idx = by_release[next_pending];
                next_pending += 1;
                let ctx = Self::ctx_of(&self.config, &self.jobs[idx].spec, slot, probed);
                let job = &mut self.jobs[idx];
                job.protocol.on_activate(&ctx, &mut job.rng);
                polled.push(idx);
            }

            // 2. Collect actions. `tx_probability` is purely diagnostic, so
            // its virtual call (and the contention sum) is skipped entirely
            // when no trace records it.
            scratch.transmitters.clear();
            scratch.listeners.clear();
            let recording = wants_slots;
            let mut declared_contention = 0.0f64;
            for &idx in &polled {
                let ctx = Self::ctx_of(&self.config, &self.jobs[idx].spec, slot, probed);
                let job = &mut self.jobs[idx];
                let action = job.protocol.act(&ctx, &mut job.rng);
                let declared = if recording {
                    job.protocol.tx_probability(&ctx)
                } else {
                    None
                };
                match action {
                    Action::Transmit(payload) => {
                        if recording {
                            declared_contention += declared.unwrap_or(1.0);
                        }
                        job.accesses.transmissions += 1;
                        scratch.transmitters.push((idx, payload));
                        // Transmitters also observe the slot (they learn
                        // whether their own broadcast succeeded).
                        scratch.listeners.push(idx);
                    }
                    Action::Listen => {
                        if recording {
                            declared_contention += declared.unwrap_or(0.0);
                        }
                        job.accesses.listens += 1;
                        scratch.listeners.push(idx);
                    }
                    Action::Sleep => {
                        if recording {
                            declared_contention += declared.unwrap_or(0.0);
                        }
                    }
                }
            }

            // 3. Resolve the channel and give the adversary its shot.
            let n_tx = scratch.transmitters.len();
            let view = match n_tx {
                0 => SlotView::Silent,
                1 => {
                    let (idx, payload) = scratch.transmitters[0];
                    SlotView::Single {
                        src: self.jobs[idx].spec.id,
                        payload,
                    }
                }
                _ => SlotView::Collision { n_tx },
            };
            let jammed = self.jammer.jams(view, &mut jam_rng);

            let feedback = if jammed {
                Feedback::Noise
            } else {
                match view {
                    SlotView::Silent => Feedback::Silent,
                    SlotView::Single { src, payload } => Feedback::Success { src, payload },
                    SlotView::Collision { .. } => Feedback::Noise,
                }
            };

            // 4. Account the slot.
            let mut delivered_data: Option<JobId> = None;
            match (jammed, n_tx) {
                (true, _) => counts.jammed += 1,
                (false, 0) => counts.silent += 1,
                (false, 1) => {
                    counts.success += 1;
                    let (_, payload) = scratch.transmitters[0];
                    if let Some(owner) = payload.data_owner() {
                        counts.data_success += 1;
                        delivered_data = Some(owner);
                    }
                }
                (false, _) => counts.collision += 1,
            }

            if wants_slots {
                let outcome = if jammed {
                    SlotOutcome::Jammed { n_tx: n_tx as u32 }
                } else {
                    match view {
                        SlotView::Silent => SlotOutcome::Silent,
                        SlotView::Single { src, payload } => SlotOutcome::Success {
                            src,
                            was_data: payload.is_data(),
                        },
                        SlotView::Collision { n_tx } => {
                            SlotOutcome::Collision { n_tx: n_tx as u32 }
                        }
                    }
                };
                bus.on_slot(&SlotRecord {
                    slot,
                    outcome,
                    live_jobs: (polled.len() + parked.len()) as u32,
                    declared_contention,
                    payload: feedback.payload().copied(),
                });
            }

            // 5. Deliver feedback to listeners.
            for &idx in &scratch.listeners {
                let ctx = Self::ctx_of(&self.config, &self.jobs[idx].spec, slot, probed);
                let job = &mut self.jobs[idx];
                job.protocol.on_feedback(&ctx, &feedback, &mut job.rng);
            }

            // 5b. Drain protocol-emitted probe events, stamping slot/job and
            // enriching `SizeEstimate` with ground truth (the engine is the
            // only component entitled to a global view).
            if probed {
                for &idx in &polled {
                    self.jobs[idx].protocol.drain_events(&mut event_scratch);
                    if event_scratch.is_empty() {
                        continue;
                    }
                    let id = self.jobs[idx].spec.id;
                    for mut event in event_scratch.drain(..) {
                        if let ProbeEvent::SizeEstimate { class, n_true, .. } = &mut event {
                            *n_true = Self::live_class_size(&self.jobs, *class, slot);
                        }
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: Some(id),
                            event,
                        });
                    }
                }
            }

            // 6. Record delivery and retire finished jobs.
            if let Some(owner) = delivered_data {
                let job = &mut self.jobs[owner as usize];
                // First delivery inside the window wins; protocols built in
                // this workspace never transmit data outside their window
                // (the engine retires them at the deadline), so `slot` is
                // necessarily inside it.
                if job.outcome.is_none() {
                    job.outcome = Some(JobOutcome::Success { slot });
                }
            }
            polled.retain(|&idx| {
                let job = &mut self.jobs[idx];
                let window_over = slot + 1 >= job.spec.deadline;
                let finished = job.outcome.is_some() || job.protocol.is_done() || window_over;
                if finished {
                    if job.outcome.is_none() {
                        job.outcome = Some(JobOutcome::Missed);
                    }
                    return false;
                }
                if event_driven {
                    let ctx = Self::ctx_of(&self.config, &job.spec, slot, probed);
                    if let Some(wake_local) = job.protocol.next_wake(&ctx) {
                        // Clamp into the window so the job is awake for its
                        // last slot and retires through the normal deadline
                        // check, exactly as under dense polling.
                        let wake = job
                            .spec
                            .release
                            .saturating_add(wake_local)
                            .min(job.spec.deadline - 1);
                        if wake > slot + 1 {
                            parked.push(wake, idx);
                            return false;
                        }
                    }
                }
                true
            });

            slot += 1;
        }

        // Anything still pending or live when the horizon hit missed.
        for job in &mut self.jobs {
            job.outcome.get_or_insert(JobOutcome::Missed);
        }

        // Retirement events, in job-id order. Outcomes and access counters
        // are pure functions of the instance and seed (the equivalence
        // suite's invariant), so this stream is identical across scheduling
        // modes despite being assembled after the loop.
        if probed {
            for job in &self.jobs {
                let outcome = job.outcome.expect("outcome just defaulted");
                let end = match outcome {
                    JobOutcome::Success { slot } => slot,
                    JobOutcome::Missed => job.spec.deadline.min(slot).max(job.spec.release),
                };
                bus.on_event(&ProbeRecord {
                    slot: end,
                    job: Some(job.spec.id),
                    event: ProbeEvent::JobRetired {
                        success: outcome.is_success(),
                        latency: end - job.spec.release,
                        window: job.spec.window(),
                        transmissions: job.accesses.transmissions,
                        listens: job.accesses.listens,
                    },
                });
            }
        }

        sched_stats.parks = parked.pushes();
        sched_stats.peak_parked = parked.peak() as u64;

        let mut outputs = bus.finish();
        let trace = if self.config.record_trace {
            match outputs.remove(0) {
                crate::probe::ProbeOutput::Trace(t) => Some(t),
                other => unreachable!("VecSink is attached first, got {other:?}"),
            }
        } else {
            None
        };
        let probes = if self.config.probe.is_some() {
            Some(ProbeReport { outputs })
        } else {
            None
        };

        let specs: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec).collect();
        let outcomes: Vec<JobOutcome> = self.jobs.iter().map(|j| j.outcome.unwrap()).collect();
        let accesses: Vec<AccessCounts> = self.jobs.iter().map(|j| j.accesses).collect();
        SimReport::new(
            specs,
            outcomes,
            counts,
            accesses,
            slot,
            JamStats {
                attempted: self.jammer.attempted(),
                succeeded: self.jammer.succeeded(),
            },
            self.seeds.master(),
            started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            sched_stats,
            trace,
            probes,
        )
    }

    #[inline]
    fn ctx_of(config: &EngineConfig, spec: &JobSpec, slot: u64, probed: bool) -> JobCtx {
        JobCtx {
            id: spec.id,
            window: spec.window(),
            local_time: slot - spec.release,
            aligned_time: config.expose_aligned_clock.then_some(slot),
            probed,
        }
    }

    /// Ground truth for [`ProbeEvent::SizeEstimate`]: the number of class-ℓ
    /// jobs (window exactly `2^class`) whose window contains `slot`.
    fn live_class_size(jobs: &[JobState], class: u32, slot: u64) -> u64 {
        let w = 1u64 << class;
        jobs.iter()
            .filter(|j| j.spec.window() == w && j.spec.release <= slot && slot < j.spec.deadline)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jamming::JamPolicy;

    /// Transmit the data message in a fixed local slot.
    struct AtLocal(u64);
    impl Protocol for AtLocal {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
            if ctx.local_time == self.0 {
                Action::Transmit(Payload::Data(ctx.id))
            } else {
                Action::Listen
            }
        }
    }

    /// Record every feedback observed.
    struct Recorder {
        seen: Vec<Feedback>,
        when: u64,
    }
    impl Protocol for Recorder {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
            if ctx.local_time == self.when {
                Action::Transmit(Payload::Data(ctx.id))
            } else {
                Action::Listen
            }
        }
        fn on_feedback(&mut self, _ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
            self.seen.push(*fb);
        }
    }

    #[test]
    fn lone_transmitter_succeeds() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(2)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Success { slot: 2 });
        assert_eq!(r.counts.success, 1);
        assert_eq!(r.counts.data_success, 1);
    }

    #[test]
    fn two_transmitters_collide() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(1)));
        let r = e.run();
        assert!(!r.outcome(0).is_success());
        assert!(!r.outcome(1).is_success());
        assert_eq!(r.counts.collision, 1);
    }

    #[test]
    fn staggered_transmitters_both_succeed() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(3)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Success { slot: 1 });
        assert_eq!(r.outcome(1), JobOutcome::Success { slot: 3 });
    }

    #[test]
    fn listener_observes_success_and_noise() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        // Jobs 0 and 1 collide at slot 1; job 2 transmits alone at slot 2.
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(1)));
        e.add_job(
            JobSpec::new(2, 0, 4),
            Box::new(Recorder {
                seen: vec![],
                when: 2,
            }),
        );
        let r = e.run();
        assert!(r.outcome(2).is_success());
        // Recorder saw: silent(0), noise(1), own success(2); retired after 2.
        // We can't reach the recorder anymore, but the trace confirms.
        assert_eq!(r.counts.collision, 1);
        assert_eq!(r.counts.success, 1);
    }

    #[test]
    fn deadline_miss_is_recorded() {
        struct Mute;
        impl Protocol for Mute {
            fn act(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                Action::Listen
            }
        }
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 3), Box::new(Mute));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Missed);
        assert_eq!(r.slots_run, 3);
    }

    #[test]
    fn job_cannot_act_after_window() {
        // A protocol that would transmit at local_time 5, but window is 3.
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 3), Box::new(AtLocal(5)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Missed);
        assert_eq!(r.counts.success, 0);
    }

    #[test]
    fn jammer_turns_success_into_noise() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 1.0));
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Missed);
        assert_eq!(r.counts.jammed, 1);
        assert_eq!(r.counts.success, 0);
    }

    #[test]
    fn jam_attempts_surface_in_report() {
        // p_jam = 0 means every attempt fails: counts.jammed stays 0, yet
        // the attempt is still visible in jam_stats (the whole point of
        // surfacing adversary counters).
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 0.0));
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        let r = e.run();
        assert!(r.outcome(0).is_success());
        assert_eq!(r.counts.jammed, 0);
        assert_eq!(r.jam_stats.attempted, 1);
        assert_eq!(r.jam_stats.succeeded, 0);
    }

    #[test]
    fn jam_stats_agree_with_slot_counts() {
        let mut e = Engine::new(EngineConfig::default(), 7);
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 1.0));
        for id in 0..4 {
            e.add_job(
                JobSpec::new(id, u64::from(id) * 8, u64::from(id) * 8 + 8),
                Box::new(AtLocal(2)),
            );
        }
        let r = e.run();
        assert_eq!(r.jam_stats.succeeded, r.counts.jammed);
        assert_eq!(r.jam_stats.attempted, 4);
    }

    #[test]
    fn budgeted_adversary_respects_budget() {
        use crate::jamming::BudgetedJammer;
        // Four lone transmitters, budget 2, p_jam 1: exactly the first two
        // successes are destroyed, then the ammunition is gone.
        let mut e = Engine::new(EngineConfig::default(), 3);
        e.set_jammer(Jammer::adaptive(
            Box::new(BudgetedJammer::new(2, false)),
            1.0,
        ));
        for id in 0..4 {
            e.add_job(
                JobSpec::new(id, u64::from(id) * 8, u64::from(id) * 8 + 8),
                Box::new(AtLocal(1)),
            );
        }
        let r = e.run();
        assert_eq!(r.counts.jammed, 2);
        assert_eq!(r.jam_stats.attempted, 2);
        assert!(!r.outcome(0).is_success());
        assert!(!r.outcome(1).is_success());
        assert!(r.outcome(2).is_success());
        assert!(r.outcome(3).is_success());
    }

    #[test]
    fn trace_matches_counts() {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(2, 0, 6), Box::new(AtLocal(4)));
        let r = e.run();
        let t = crate::trace::tally(r.trace.as_ref().unwrap());
        assert_eq!(t.success, r.counts.success);
        assert_eq!(t.collision, r.counts.collision);
        assert_eq!(t.silent, r.counts.silent);
        assert_eq!(t.jammed, r.counts.jammed);
        assert_eq!(t.data_success, r.counts.data_success);
        assert!(t.data_success > 0, "the lone slot-4 transmitter delivers");
    }

    #[test]
    fn idle_gap_fast_forward() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 2), Box::new(AtLocal(0)));
        e.add_job(JobSpec::new(1, 1_000_000, 1_000_002), Box::new(AtLocal(0)));
        let r = e.run();
        assert!(r.outcome(0).is_success());
        assert!(r.outcome(1).is_success());
        // The gap is skipped in O(1), but stays accounted as silence:
        // the books always balance. (That this test completes instantly
        // is itself the evidence the loop did not walk a million slots.)
        assert_eq!(r.counts.total(), r.slots_run);
        assert!(r.counts.silent >= 999_000);
    }

    #[test]
    fn aligned_clock_exposure() {
        struct NeedsClock;
        impl Protocol for NeedsClock {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                // With alignment, global time is release + local_time.
                assert_eq!(ctx.aligned_now(), 8 + ctx.local_time);
                Action::Listen
            }
        }
        let mut e = Engine::new(EngineConfig::aligned(), 1);
        e.add_job(JobSpec::new(0, 8, 16), Box::new(NeedsClock));
        let _ = e.run();
    }

    #[test]
    fn unaligned_ctx_hides_global_clock() {
        struct AssertHidden;
        impl Protocol for AssertHidden {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                assert!(ctx.aligned_time.is_none());
                Action::Listen
            }
        }
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 3, 7), Box::new(AssertHidden));
        let _ = e.run();
    }

    #[test]
    fn probe_report_present_only_when_configured() {
        use crate::probe::{ProbeSpec, SinkSpec};
        let run = |probe: Option<ProbeSpec>| {
            let config = EngineConfig {
                probe,
                ..EngineConfig::default()
            };
            let mut e = Engine::new(config, 5);
            e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
            e.run()
        };
        assert!(run(None).probes.is_none());
        let r = run(Some(ProbeSpec::new().with(SinkSpec::Events)));
        let probes = r.probes.expect("probe spec configured");
        let events = probes.events().expect("events sink configured");
        // No protocol emissions from AtLocal, but the engine retires the job.
        assert!(events
            .iter()
            .any(|rec| matches!(rec.event, ProbeEvent::JobRetired { success: true, .. })));
    }

    #[test]
    fn gap_skip_events_reach_sinks_and_sched_stats() {
        use crate::probe::{ProbeSpec, SinkSpec};
        let mut e = Engine::new(
            EngineConfig::default().with_probe(ProbeSpec::new().with(SinkSpec::Events)),
            1,
        );
        e.add_job(JobSpec::new(0, 0, 2), Box::new(AtLocal(0)));
        e.add_job(JobSpec::new(1, 10_000, 10_002), Box::new(AtLocal(0)));
        let r = e.run();
        assert!(r.sched_stats.gap_skips >= 1);
        assert!(r.sched_stats.gap_slots >= 9_000);
        let probes = r.probes.unwrap();
        let events = probes.events().unwrap();
        assert!(events
            .iter()
            .any(|rec| matches!(rec.event, ProbeEvent::GapSkip { len } if len >= 9_000)));
    }

    #[test]
    fn legacy_trace_identical_with_extra_sinks_attached() {
        // The record_trace path must be bit-identical whether or not other
        // probe sinks ride along on the bus.
        use crate::probe::{ProbeSpec, SinkSpec};
        let run = |probe: Option<ProbeSpec>| {
            let config = EngineConfig {
                probe,
                ..EngineConfig::default().with_trace()
            };
            let mut e = Engine::new(config, 77);
            e.add_job(JobSpec::new(0, 0, 8), Box::new(AtLocal(1)));
            e.add_job(JobSpec::new(1, 0, 8), Box::new(AtLocal(1)));
            e.add_job(JobSpec::new(2, 4, 12), Box::new(AtLocal(3)));
            e.run()
        };
        let plain = run(None);
        let probed = run(Some(
            ProbeSpec::new()
                .with(SinkSpec::Ring { capacity: 2 })
                .with(SinkSpec::Events),
        ));
        assert_eq!(plain.trace, probed.trace);
        assert_eq!(plain.counts, probed.counts);
        // And the ring holds the trace's tail.
        let (ring, _) = probed.probes.as_ref().unwrap().ring().unwrap();
        let trace = plain.trace.as_ref().unwrap();
        assert_eq!(ring, &trace[trace.len() - 2..]);
    }

    #[test]
    fn declared_contention_in_trace() {
        struct HalfProb;
        impl Protocol for HalfProb {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                Action::Transmit(Payload::Data(ctx.id))
            }
            fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
                Some(0.5)
            }
        }
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        e.add_job(JobSpec::new(0, 0, 2), Box::new(HalfProb));
        e.add_job(JobSpec::new(1, 0, 2), Box::new(HalfProb));
        let r = e.run();
        let trace = r.trace.as_ref().unwrap();
        assert!((trace[0].declared_contention - 1.0).abs() < 1e-12);
    }
}
