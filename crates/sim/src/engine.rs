//! The slot-synchronized simulation engine.
//!
//! The engine owns a set of jobs, each driven by a [`Protocol`]
//! implementation, and advances the channel slot by slot:
//!
//! 1. jobs whose release slot arrived are **activated**;
//! 2. every live job chooses an [`Action`] (transmit / listen / sleep) —
//!    seeing only its *local* context, per the paper's model;
//! 3. the channel resolves the slot (silence / success / noise), the
//!    [`crate::jamming::Jammer`] gets a chance to create noise;
//! 4. listeners receive the slot's [`Feedback`];
//! 5. jobs whose data message was delivered, whose protocol reports done, or
//!    whose window closed are retired.
//!
//! The engine is the *only* component with a global view; protocols are
//! handed a [`JobCtx`] that deliberately omits the global slot index unless
//! [`EngineConfig::expose_aligned_clock`] is set (valid only for the
//! power-of-2-aligned special case of Section 3, where window alignment
//! makes a shared clock implicitly available).
//!
//! ## Hot-path layout
//!
//! Job state is a struct-of-arrays [`JobTable`]: specs, protocol objects,
//! RNG streams, outcomes, and access counters live in parallel vectors
//! indexed by job id. The per-slot loop walks an **active set** of indices
//! and retires or parks jobs by `swap_remove`, so retired and not-yet-released
//! jobs cost nothing per slot. The visiting *order* of the active set is
//! therefore arbitrary — which is sound because every observable outcome
//! depends only on per-job private RNG streams and the slot's aggregate
//! transmission count, never on the order jobs were polled in.
//!
//! ## Trial arena
//!
//! Engines are reusable: [`Engine::reset`] returns a used engine to its
//! just-constructed state while keeping every internal allocation (job
//! table, wake queue, scratch buffers), and a dropped engine donates those
//! allocations to a thread-local pool that the next [`Engine::new`] on the
//! same thread drains. Monte-Carlo workers therefore allocate their
//! simulation state once per thread, not once per trial, with bit-identical
//! results (the reset contract is exactly "everything derived from the seed
//! and the jobs is cleared").

use crate::classes::{class_stream_index, ClassCtx, ClassDriver, ClassEntry, ClassEvent, ClassSet};
use crate::crng::{CounterRng, Phase};
use crate::jamming::{Jammer, SlotView};
use crate::job::{JobId, JobSpec};
use crate::kernel::SlotKernel;
use crate::message::Payload;
use crate::metrics::{
    AccessCounts, ContentionStats, JamStats, JobOutcome, SchedStats, SimReport, SlotCounts,
};
use crate::probe::{ProbeBus, ProbeEvent, ProbeRecord, ProbeReport, ProbeSpec, VecSink};
use crate::rng::{sample_binomial, SeedSeq, StreamLabel};
use crate::sched::WakeQueue;
use crate::slot::Feedback;
use crate::trace::{SlotOutcome, SlotRecord};
use rand::{Rng, RngCore};

/// A job's decision for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Broadcast `Payload` in this slot.
    Transmit(Payload),
    /// Stay quiet but observe the slot's feedback.
    Listen,
    /// Neither transmit nor observe (no feedback is delivered).
    Sleep,
}

/// The local context a protocol sees each slot.
///
/// Contains nothing a real station could not know: its own id (used only to
/// tag its data message), its window size, how many slots have elapsed since
/// its own activation, and — in the aligned special case only — the shared
/// clock.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// This job's id (for tagging its data payload).
    pub id: JobId,
    /// Window size `w` in slots.
    pub window: u64,
    /// Slots since activation: `0` in the release slot, `w - 1` in the last
    /// slot of the window.
    pub local_time: u64,
    /// The shared global clock, present only when the engine is configured
    /// for the power-of-2-aligned special case.
    pub aligned_time: Option<u64>,
    /// True when some probe sink consumes protocol events: the protocol
    /// should arm its [`crate::probe::EventBuf`] at activation. Purely an
    /// observability flag — it must never influence protocol decisions.
    pub probed: bool,
}

impl JobCtx {
    /// Slots remaining in the window *including* the current slot.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.window - self.local_time
    }

    /// The aligned global clock; panics if the engine did not expose one.
    #[inline]
    pub fn aligned_now(&self) -> u64 {
        self.aligned_time
            .expect("protocol requires EngineConfig::expose_aligned_clock")
    }
}

/// A transmission profile a protocol can expose so the engine may simulate
/// the job in aggregate under [`Fidelity::Cohort`] or via the vectorized
/// kernel under [`Fidelity::Vectorized`].
///
/// The common contract: from activation until delivery or deadline the job
/// never listens, never finishes early ([`Protocol::is_done`] stays false
/// until delivery), and its transmissions follow the declared model
/// exactly (in distribution). Jobs with the same profile and deadline form
/// one cohort whose per-slot transmitter *count* is a single binomial draw
/// instead of one Bernoulli draw per job — so both models below are exact,
/// not approximations.
///
/// [`Fidelity::Vectorized`] additionally relies on a *bit-level draw
/// schedule*, because the kernel reproduces the exact path's draws
/// verbatim rather than resampling in aggregate:
///
/// - [`CohortTx::Constant`]: `act` consumes **exactly one** `gen_bool(p)`
///   per call and transmits iff it lands; `on_activate` and `on_feedback`
///   consume no randomness and have no observable effect.
/// - [`CohortTx::OneShot`]: `on_activate` consumes **exactly one**
///   `gen_range(0..window)` naming the local transmission slot; `act`
///   consumes nothing (transmit at the chosen slot, sleep otherwise);
///   `on_feedback` consumes no randomness and has no observable effect.
///
/// Under the counter-based RNG each of those draws is the *first word* of
/// a known `(job_key, slot, phase)` position, which is what lets the
/// kernel batch them (and anyone replay them — see
/// [`crate::crng::replay_bernoulli`] / [`crate::crng::replay_oneshot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CohortTx {
    /// "Transmit the data message with probability `p` in every slot,
    /// independently" — the memoryless model (slotted ALOHA).
    Constant {
        /// Per-slot transmission probability, constant for the lifetime.
        p: f64,
    },
    /// "Transmit exactly once, in a slot chosen uniformly over the
    /// window" — UNIFORM `k = 1`'s one-shot draw. Simulated exactly via
    /// its sequential decomposition: a member that has not yet attempted
    /// transmits at slot `t` with hazard `1/(deadline − t)`, so the count
    /// is `Binomial(not-yet-attempted, 1/(deadline − t))` per slot.
    OneShot,
    /// A phase-synchronized aggregate class (ALIGNED, PUNCTUAL): jobs with
    /// the same `tag`, release, and deadline share one protocol state and
    /// advance as a [`crate::classes::ClassDriver`] supplied via
    /// [`Protocol::class_driver`]. `tag` must commit to the protocol kind
    /// and its parameters, so differently-configured populations never
    /// share a class. Cohort fidelity only; under [`Fidelity::Vectorized`]
    /// these jobs take the exact per-job path (the kernel's bit-identity
    /// contract does not cover class aggregates).
    Class {
        /// Protocol-chosen discriminant committing to kind + parameters.
        tag: u64,
    },
}

/// A periodic duty schedule (see [`Protocol::duty_cycle`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Pattern length in slots (`0 < period ≤ 64`).
    pub period: u8,
    /// Positions (bit `i` = position `i`) needing a real `act()` call.
    pub wake_mask: u64,
    /// Positions with an unconditional, state-free transmission of
    /// `tx_payload`. Must be disjoint from `wake_mask`.
    pub tx_mask: u64,
    /// The payload broadcast at `tx_mask` positions. Never a data message.
    pub tx_payload: Payload,
    /// Positions where the job always listens, consumes no randomness, and
    /// — for the overwhelmingly common feedback — changes no state. Must be
    /// disjoint from both other masks. The engine resolves these positions
    /// per *group*: one representative member is asked, via
    /// [`Protocol::duty_listen`], whether the slot's feedback is
    /// group-invariant; only when it is not does every member get an
    /// individual `on_feedback` call. Per-member listen counters are
    /// settled lazily in closed form, like standing transmissions.
    pub listen_mask: u64,
    /// The *local* slot that is position 0 of the pattern.
    pub anchor_local: u64,
}

/// A contention-resolution protocol driving a single job.
///
/// One value of this trait is instantiated per job; all coordination happens
/// through the channel.
pub trait Protocol {
    /// Called once, in the job's release slot, before the first `act`.
    fn on_activate(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) {}

    /// Decide this slot's action.
    fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action;

    /// Observe the feedback for the slot just completed. Not called if the
    /// job slept or has been retired.
    fn on_feedback(&mut self, _ctx: &JobCtx, _fb: &Feedback, _rng: &mut dyn RngCore) {}

    /// True once the job will take no further useful action; the engine
    /// retires it early. (Delivery of the job's data message retires it
    /// automatically regardless.)
    fn is_done(&self) -> bool {
        false
    }

    /// The probability with which this protocol intended to transmit in the
    /// current slot, if it can report one. Used for measuring the paper's
    /// contention `C(t) = Σ_j p_j(t)`; purely diagnostic.
    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        None
    }

    /// Scheduling hint: the next *local* slot at which this job needs an
    /// `act()` call, given that the slot described by `ctx` just completed.
    ///
    /// Returning `Some(w)` with `w > ctx.local_time + 1` promises that for
    /// every local slot in `(ctx.local_time, w)` the protocol would have
    /// returned [`Action::Sleep`] *without drawing randomness or changing
    /// state*. Under [`Scheduling::EventDriven`] the engine then parks the
    /// job and skips those `act()` calls entirely — no ctx construction, no
    /// virtual dispatch — waking it at local slot `w` (possibly earlier,
    /// never later; hints past the window are clamped to its last slot, and
    /// `u64::MAX` means "never again"). Because the skipped calls are
    /// exactly the ones with no observable effect, results are bit-identical
    /// to dense polling.
    ///
    /// The default (`None`) opts out: the job is polled every slot, which is
    /// always correct (legacy behavior).
    fn next_wake(&self, _ctx: &JobCtx) -> Option<u64> {
        None
    }

    /// Stronger scheduling hint for protocols whose wake pattern is
    /// *periodic*: a duty cycle declares, relative to a protocol-chosen
    /// anchor, a repeating pattern of **wake positions** (slots needing a
    /// real `act()` call) and **standing-transmission positions** (slots
    /// where the protocol would deterministically transmit `tx_payload`
    /// with probability 1, drawing no randomness and changing no state, and
    /// where the slot's feedback would change no state either). Every other
    /// position promises [`Action::Sleep`] exactly as under
    /// [`Protocol::next_wake`].
    ///
    /// Under [`Scheduling::EventDriven`] the engine keeps such jobs in
    /// per-schedule **duty groups**: wake positions are visited by group
    /// membership with no wake-queue traffic, and standing positions are
    /// resolved in aggregate — the transmissions still occupy the channel
    /// (colliding, getting jammed, and being heard by listeners exactly as
    /// if `act` had run) while per-member transmission counters are settled
    /// lazily in closed form. Results stay bit-identical to dense polling.
    ///
    /// Contract: `0 < period ≤ 64`; the masks index positions
    /// `(local_time - anchor_local) % period` and must be disjoint;
    /// `tx_payload` must not be a data message; and a protocol that returns
    /// `Some` must keep returning `Some` until it is done (the schedule
    /// itself may change between calls) — for a registered job, returning
    /// `None` *is* the completion signal: the engine retires the job
    /// exactly as it would on [`Protocol::is_done`], which is not polled
    /// separately on this path. Takes precedence over `next_wake`; the
    /// default (`None`) opts out.
    fn duty_cycle(&self, _ctx: &JobCtx) -> Option<DutyCycle> {
        None
    }

    /// Group-invariance check for [`DutyCycle::listen_mask`] positions.
    ///
    /// Called on **one representative member** of a duty group whose
    /// pattern has a listen bit at the current position, after the slot
    /// resolved. Returning `true` asserts that *every* job registered under
    /// this member's duty schedule would, on observing `fb` at this
    /// position, neither change state nor emit probe events — so the engine
    /// skips the per-member `on_feedback` fan-out entirely (listen counters
    /// are settled lazily). Returning `false` (the default) makes the
    /// engine deliver `fb` to every member individually, which is always
    /// correct.
    ///
    /// The answer must be derivable from group-uniform information: the
    /// feedback itself plus state that the schedule key forces all members
    /// to share. A protocol whose members can disagree on the answer must
    /// not declare listen positions. The engine additionally forces the
    /// fan-out whenever `fb` delivers a member's own data message, so
    /// implementations need not handle that case.
    fn duty_listen(&self, _ctx: &JobCtx, _fb: &Feedback) -> bool {
        false
    }

    /// Aggregate-simulation hint: a constant per-slot transmission profile
    /// for this job, if its whole lifetime is statistically equivalent to
    /// one (see [`CohortTx`]). Consulted once, at the job's release slot,
    /// and only under [`Fidelity::Cohort`]; a cohort-managed job receives
    /// **no** protocol callbacks at all — the engine samples its behavior in
    /// aggregate. Protocols whose behavior depends on feedback, phase, or
    /// any evolving state must return `None` (the default), which keeps the
    /// job on the exact per-job path even in cohort mode.
    fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
        None
    }

    /// Open a phase-synchronized aggregate class (see
    /// [`CohortTx::Class`]). Called once per distinct `(tag, release,
    /// deadline)` class, at the first member's release slot, with that
    /// member's [`JobCtx`] and the class-level [`ClassCtx`] (global window
    /// bounds plus the class's counter-RNG seed). Subsequent members are
    /// [`ClassDriver::admit`]ted to the returned driver without further
    /// protocol callbacks. Returning `None` (the default) keeps the job on
    /// the exact per-job path.
    fn class_driver(&self, _ctx: &JobCtx, _cctx: &ClassCtx) -> Option<Box<dyn ClassDriver>> {
        None
    }

    /// Move any buffered [`ProbeEvent`]s into `out`. Called once per slot
    /// (after feedback delivery) for every polled job while a sink wants
    /// events; the engine stamps each event with the slot and job id.
    ///
    /// Protocols may emit only from slots they attend (`act`/`on_feedback`),
    /// so per-job event streams are identical across scheduling modes (see
    /// [`crate::probe`] for the full contract). The default is a no-op for
    /// protocols with nothing to report.
    fn drain_events(&mut self, _out: &mut Vec<ProbeEvent>) {}
}

/// How the engine visits live jobs each slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// Park jobs whose protocol reports a [`Protocol::next_wake`] hint and
    /// skip their `act()` calls until the wake slot; stretches where *every*
    /// live job is parked are fast-forwarded in O(1). Protocols without
    /// hints are still polled densely, so this is safe for any mix.
    #[default]
    EventDriven,
    /// Poll every live job every slot (legacy behavior). Wake hints are
    /// never consulted; useful as the reference in equivalence tests.
    Dense,
}

/// How faithfully individual jobs are simulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Fidelity {
    /// Every job is simulated individually. Bit-exact and the default.
    #[default]
    Exact,
    /// Jobs whose protocol reports a [`Protocol::cohort_tx`] profile are
    /// grouped by `(probability, deadline)` and the *number* of transmitters
    /// each cohort contributes per slot is drawn from a binomial; an
    /// individual member is materialized only when it is the slot's sole
    /// transmitter. O(cohorts) per slot instead of O(jobs), which unlocks
    /// populations of 10⁵ and beyond. Results are statistically equivalent
    /// to [`Fidelity::Exact`] (same distributions), not bit-identical; jobs
    /// whose protocol returns `None` still take the exact path.
    Cohort,
    /// Jobs whose protocol reports a [`Protocol::cohort_tx`] profile are
    /// managed by the vectorized slot kernel: constant-probability jobs
    /// are probability-bucketed and drawn as wide batched Bernoulli
    /// passes over a liveness bitmask (64 lanes per word); one-shot jobs
    /// have their single transmission slot precomputed into a calendar.
    /// Because every draw is counter-based (`crate::crng`), the kernel
    /// is **bit-identical** to [`Fidelity::Exact`] — same outcomes, same
    /// counters, same trace tallies — while skipping per-job dispatch,
    /// and independent of [`EngineConfig::kernel_shards`]. Jobs whose
    /// protocol returns `None` still take the exact path.
    Vectorized,
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Hard cap on simulated slots (safety net against livelock). When
    /// `None`, the engine runs until the last deadline.
    pub max_slots: Option<u64>,
    /// Record a full [`SlotRecord`] trace (off for large Monte-Carlo runs).
    pub record_trace: bool,
    /// Expose the global slot index to protocols via
    /// [`JobCtx::aligned_time`]. Only legitimate for the aligned special
    /// case (Section 3); PUNCTUAL must run with this off.
    pub expose_aligned_clock: bool,
    /// How live jobs are visited each slot (see [`Scheduling`]).
    pub scheduling: Scheduling,
    /// How faithfully jobs are simulated (see [`Fidelity`]).
    pub fidelity: Fidelity,
    /// Probe sinks to attach (see [`crate::probe`]). `None` disables the
    /// probe layer entirely; with `record_trace` also off, the slot loop
    /// does no observability work beyond two branch checks.
    pub probe: Option<ProbeSpec>,
    /// Worker shards for the vectorized kernel's Bernoulli pass
    /// (`0`/`1` = single-threaded). Counter-based draws make the result
    /// bit-identical for every shard count; only wall-clock changes.
    pub kernel_shards: usize,
}

impl EngineConfig {
    /// Config for the aligned special case (shared clock exposed).
    pub fn aligned() -> Self {
        Self {
            expose_aligned_clock: true,
            ..Self::default()
        }
    }

    /// Enable trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Force dense polling (ignore wake hints).
    pub fn dense(mut self) -> Self {
        self.scheduling = Scheduling::Dense;
        self
    }

    /// Enable the cohort binomial fast path (see [`Fidelity::Cohort`]).
    pub fn cohort(mut self) -> Self {
        self.fidelity = Fidelity::Cohort;
        self
    }

    /// Attach probe sinks (see [`crate::probe`]).
    pub fn with_probe(mut self, spec: ProbeSpec) -> Self {
        self.probe = Some(spec);
        self
    }

    /// Enable the vectorized slot kernel (see [`Fidelity::Vectorized`]).
    pub fn vectorized(mut self) -> Self {
        self.fidelity = Fidelity::Vectorized;
        self
    }

    /// Set the kernel's worker-shard count (see
    /// [`EngineConfig::kernel_shards`]).
    pub fn with_kernel_shards(mut self, shards: usize) -> Self {
        self.kernel_shards = shards;
        self
    }
}

/// Struct-of-arrays job storage, indexed by job id.
///
/// Splitting the old per-job struct into parallel vectors keeps the data
/// the per-slot loop actually touches (specs, outcomes) densely packed, and
/// lets the borrow checker hand out disjoint mutable borrows of a job's
/// protocol and RNG without runtime cost.
///
/// Since PR 6 jobs carry no RNG *stream* at all — only a 64-bit counter
/// key. Every protocol-visible draw comes from a stack-built
/// [`CounterRng`] positioned at `(key, slot, phase)`, so a draw is a pure
/// function of its position (see `crate::crng` and DESIGN.md §3f).
#[derive(Default)]
struct JobTable {
    specs: Vec<JobSpec>,
    protocols: Vec<Box<dyn Protocol>>,
    /// Per-job counter-RNG keys ([`SeedSeq::job_key`]).
    keys: Vec<u64>,
    outcomes: Vec<Option<JobOutcome>>,
    accesses: Vec<AccessCounts>,
}

impl JobTable {
    fn len(&self) -> usize {
        self.specs.len()
    }

    fn push(&mut self, spec: JobSpec, protocol: Box<dyn Protocol>, key: u64) {
        self.specs.push(spec);
        self.protocols.push(protocol);
        self.keys.push(key);
        self.outcomes.push(None);
        self.accesses.push(AccessCounts::default());
    }

    fn clear(&mut self) {
        self.specs.clear();
        self.protocols.clear();
        self.keys.clear();
        self.outcomes.clear();
        self.accesses.clear();
    }
}

/// Scratch buffers reused across slots so the hot loop stays allocation-free.
#[derive(Default)]
struct SlotScratch {
    /// Indices (into the job table) of jobs that transmitted, with payloads.
    transmitters: Vec<(u32, Payload)>,
    /// Every job given an `act()` call this slot: the active set first
    /// (mirroring its order), then due duty-group members.
    polled: Vec<u32>,
    /// The action each polled job took (`CODE_*`), parallel to `polled`.
    codes: Vec<u8>,
    /// The ctx each polled job acted under, parallel to `polled`, so the
    /// fused feedback pass reuses it instead of rebuilding.
    ctxs: Vec<JobCtx>,
    /// Indices (into `DutySet::groups`) of groups with a listen bit at the
    /// current position, resolved per group after the slot's feedback.
    listen_groups: Vec<u32>,
    /// Per-slot cohort draws: `(cohort index, transmitter count)`.
    cohort_hits: Vec<(u32, u64)>,
    /// Polled indices in job-id order, for deterministic probe drains.
    probe_order: Vec<u32>,
    /// Job indices the vectorized kernel says transmit this slot.
    kernel_tx: Vec<u32>,
    /// Outbox for aggregate-class state changes settled after feedback.
    class_outbox: Vec<ClassEvent>,
}

impl SlotScratch {
    fn clear(&mut self) {
        self.transmitters.clear();
        self.polled.clear();
        self.codes.clear();
        self.ctxs.clear();
        self.listen_groups.clear();
        self.cohort_hits.clear();
        self.probe_order.clear();
        self.kernel_tx.clear();
        self.class_outbox.clear();
    }
}

/// Compact [`Action`] tags recorded during the act pass so the fused
/// feedback/retire/reschedule pass needs no second dispatch.
const CODE_SLEEP: u8 = 0;
const CODE_LISTEN: u8 = 1;
const CODE_TX: u8 = 2;

/// One duty group: every member shares the same [`DutyCycle`] schedule
/// aligned to the same global phase, so the group is visited (and its
/// standing transmissions are counted) as a unit.
struct DutyGroup {
    period: u8,
    /// Global round position of pattern position 0:
    /// `(release + anchor_local) % period`.
    anchor_mod: u8,
    wake_mask: u64,
    tx_mask: u64,
    listen_mask: u64,
    payload: Payload,
    /// Live member job indices; `swap_remove` removal, order arbitrary.
    members: Vec<u32>,
}

/// Number of slots in `[from, to)` whose position `(s - anchor_mod) % period`
/// has its bit set in `mask` — the closed form behind lazy standing-
/// transmission accounting.
fn covered_count(from: u64, to: u64, period: u8, anchor_mod: u8, mask: u64) -> u64 {
    if to <= from || mask == 0 {
        return 0;
    }
    let period = u64::from(period);
    let len = to - from;
    let mut n = (len / period) * u64::from(mask.count_ones());
    let mut pos = (from + period - u64::from(anchor_mod)) % period;
    for _ in 0..len % period {
        n += mask >> pos & 1;
        pos += 1;
        if pos == period {
            pos = 0;
        }
    }
    n
}

/// All duty groups of one run, plus per-job membership bookkeeping.
#[derive(Default)]
struct DutySet {
    groups: Vec<DutyGroup>,
    /// Total live members across all groups.
    total: usize,
    /// Per-job `(group index + 1, position in members)`; group 0 = none.
    where_of: Vec<(u32, u32)>,
    /// Per-job: the exact `DutyCycle` value the job registered with, so the
    /// per-visit re-query is one struct compare (the `key_matches` fallback
    /// handles equivalent-but-unequal values, e.g. a shifted anchor).
    reg_dc: Vec<Option<DutyCycle>>,
    /// Per-job first slot from which standing positions count as
    /// transmissions (settled lazily at deregistration).
    reg_slot: Vec<u64>,
    /// Per-job: a deadline backstop entry exists in the wake queue.
    backstopped: Vec<bool>,
    /// Backstop wake-queue entries whose job already left the duty layer.
    /// Queue entries are not removable, so they are discarded when popped —
    /// and discounted from live-job accounting until then.
    dead_backstops: u64,
}

impl DutySet {
    /// Reset for a run over `n` jobs, keeping allocations.
    fn prepare(&mut self, n: usize) {
        self.groups.clear();
        self.total = 0;
        self.where_of.clear();
        self.where_of.resize(n, (0, 0));
        self.reg_dc.clear();
        self.reg_dc.resize(n, None);
        self.reg_slot.clear();
        self.reg_slot.resize(n, 0);
        self.backstopped.clear();
        self.backstopped.resize(n, false);
        self.dead_backstops = 0;
    }

    fn clear(&mut self) {
        self.groups.clear();
        self.total = 0;
        self.where_of.clear();
        self.reg_dc.clear();
        self.reg_slot.clear();
        self.backstopped.clear();
        self.dead_backstops = 0;
    }

    fn anchor_mod(dc: &DutyCycle, release: u64) -> u8 {
        ((release + dc.anchor_local) % u64::from(dc.period)) as u8
    }

    /// Is `idx` registered under exactly the schedule `dc` resolves to?
    fn key_matches(&self, idx: usize, dc: &DutyCycle, release: u64) -> bool {
        let (g1, _) = self.where_of[idx];
        if g1 == 0 {
            return false;
        }
        let g = &self.groups[g1 as usize - 1];
        g.period == dc.period
            && g.wake_mask == dc.wake_mask
            && g.tx_mask == dc.tx_mask
            && g.listen_mask == dc.listen_mask
            && g.payload == dc.tx_payload
            && g.anchor_mod == Self::anchor_mod(dc, release)
    }

    /// Enter `idx` into the group for `dc` (creating it if needed).
    /// Standing accounting starts at the slot after `slot` (the current
    /// slot was acted normally).
    fn register(&mut self, idx: usize, dc: &DutyCycle, release: u64, slot: u64) {
        debug_assert!(dc.period > 0 && dc.period <= 64, "period out of range");
        debug_assert_eq!(dc.wake_mask & dc.tx_mask, 0, "masks must be disjoint");
        debug_assert_eq!(
            (dc.wake_mask | dc.tx_mask) & dc.listen_mask,
            0,
            "listen mask must be disjoint from wake and tx masks"
        );
        debug_assert!(
            !dc.tx_payload.is_data(),
            "standing transmissions cannot carry data"
        );
        let anchor_mod = Self::anchor_mod(dc, release);
        let gi = self
            .groups
            .iter()
            .position(|g| {
                g.period == dc.period
                    && g.anchor_mod == anchor_mod
                    && g.wake_mask == dc.wake_mask
                    && g.tx_mask == dc.tx_mask
                    && g.listen_mask == dc.listen_mask
                    && g.payload == dc.tx_payload
            })
            .unwrap_or_else(|| {
                self.groups.push(DutyGroup {
                    period: dc.period,
                    anchor_mod,
                    wake_mask: dc.wake_mask,
                    tx_mask: dc.tx_mask,
                    listen_mask: dc.listen_mask,
                    payload: dc.tx_payload,
                    members: Vec::new(),
                });
                self.groups.len() - 1
            });
        let pos = self.groups[gi].members.len();
        self.groups[gi].members.push(idx as u32);
        self.where_of[idx] = (gi as u32 + 1, pos as u32);
        self.reg_dc[idx] = Some(*dc);
        self.reg_slot[idx] = slot + 1;
        self.total += 1;
    }

    /// Remove `idx` from its group, if registered, returning how many
    /// standing transmissions and aggregate listens it made in
    /// `[reg_slot, now)`.
    fn deregister(&mut self, idx: usize, now: u64) -> Option<(u64, u64)> {
        let (g1, pos) = self.where_of[idx];
        if g1 == 0 {
            return None;
        }
        let g = &mut self.groups[g1 as usize - 1];
        let pos = pos as usize;
        g.members.swap_remove(pos);
        if let Some(&moved) = g.members.get(pos) {
            self.where_of[moved as usize].1 = pos as u32;
        }
        self.where_of[idx] = (0, 0);
        self.reg_dc[idx] = None;
        self.total -= 1;
        Some((
            covered_count(self.reg_slot[idx], now, g.period, g.anchor_mod, g.tx_mask),
            covered_count(
                self.reg_slot[idx],
                now,
                g.period,
                g.anchor_mod,
                g.listen_mask,
            ),
        ))
    }

    /// Earliest slot ≥ `slot` at which any group wakes, transmits, or
    /// listens.
    fn next_event(&self, slot: u64) -> u64 {
        let mut best = u64::MAX;
        let mut memo = (0u64, 0u64);
        for g in &self.groups {
            let bits = g.wake_mask | g.tx_mask | g.listen_mask;
            if g.members.is_empty() || bits == 0 {
                continue;
            }
            let period = u64::from(g.period);
            if memo.0 != period {
                memo = (period, slot % period);
            }
            let mut pos = memo.1 + period - u64::from(g.anchor_mod);
            if pos >= period {
                pos -= period;
            }
            // Distance to the next set bit at or after `pos`, cyclically:
            // rotate the pattern right by `pos` and count trailing zeros.
            let rot = if period == 64 {
                bits.rotate_right(pos as u32)
            } else {
                ((bits >> pos) | (bits << (period - pos))) & !(u64::MAX << period)
            };
            debug_assert_ne!(rot, 0);
            best = best.min(slot + u64::from(rot.trailing_zeros()));
        }
        best
    }
}

/// A cohort's sampling model — also its grouping key, alongside the
/// deadline.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CohortModel {
    /// Bernoulli(`p`) per slot; keyed by the exact bit pattern of `p`
    /// (no epsilon — distinct floats are distinct cohorts).
    Constant {
        /// `p.to_bits()`.
        p_bits: u64,
    },
    /// One attempt at a slot uniform over the window (hazard
    /// `1/(deadline − t)` among not-yet-attempted members).
    OneShot,
}

/// One group of cohort-managed jobs: same model, same deadline, simulated
/// in aggregate under [`Fidelity::Cohort`].
struct Cohort {
    model: CohortModel,
    /// The constant per-slot probability (`Constant` only; 0 otherwise).
    p: f64,
    deadline: u64,
    /// Live member job indices. Members are exchangeable by construction,
    /// so removal is `swap_remove` and winner selection is a uniform index
    /// draw.
    members: Vec<u32>,
    /// `OneShot` only: `members[..fresh]` have not yet spent their single
    /// attempt; spent members sit behind `fresh` awaiting their Missed
    /// outcome at the deadline. (Which *particular* members are spent is
    /// never decided unless one must be materialized — exchangeability
    /// makes the prefix split sufficient.)
    fresh: usize,
}

/// All cohorts of one run.
#[derive(Default)]
struct CohortSet {
    cohorts: Vec<Cohort>,
    /// Total live members across all cohorts.
    total: usize,
}

impl CohortSet {
    fn insert(&mut self, profile: CohortTx, deadline: u64, idx: u32) {
        let (model, p) = match profile {
            CohortTx::Constant { p } => (
                CohortModel::Constant {
                    p_bits: p.to_bits(),
                },
                p,
            ),
            CohortTx::OneShot => (CohortModel::OneShot, 0.0),
            CohortTx::Class { .. } => {
                unreachable!("class profiles are routed to ClassSet, never to CohortSet")
            }
        };
        match self
            .cohorts
            .iter_mut()
            .find(|c| c.model == model && c.deadline == deadline)
        {
            Some(c) => {
                c.members.push(idx);
                if c.model == CohortModel::OneShot {
                    // Keep the new member inside the fresh prefix.
                    let last = c.members.len() - 1;
                    c.members.swap(c.fresh, last);
                    c.fresh += 1;
                }
            }
            None => self.cohorts.push(Cohort {
                model,
                p,
                deadline,
                members: vec![idx],
                fresh: 1,
            }),
        }
        self.total += 1;
    }

    fn clear(&mut self) {
        self.cohorts.clear();
        self.total = 0;
    }
}

/// Thread-local pool of cleared engine internals, so Monte-Carlo workers
/// that build one engine per trial still reuse one set of allocations per
/// thread. Donation happens in [`Engine::drop`]; [`Engine::new`] drains it.
mod arena {
    use super::{CohortSet, DutySet, JobTable, SlotScratch, WakeQueue};
    use crate::classes::ClassSet;
    use crate::kernel::SlotKernel;
    use crate::probe::ProbeEvent;
    use std::cell::{Cell, RefCell};

    /// The reusable allocations of a dead engine, already cleared.
    #[derive(Default)]
    pub(super) struct Carcass {
        pub jobs: JobTable,
        pub active: Vec<u32>,
        pub by_release: Vec<u32>,
        pub parked: WakeQueue,
        pub scratch: SlotScratch,
        pub event_scratch: Vec<ProbeEvent>,
        pub cohorts: CohortSet,
        pub classes: ClassSet,
        pub duty: DutySet,
        pub kernel: SlotKernel,
    }

    impl Carcass {
        pub fn clear(&mut self) {
            self.jobs.clear();
            self.active.clear();
            self.by_release.clear();
            self.parked.clear();
            self.scratch.clear();
            self.event_scratch.clear();
            self.cohorts.clear();
            self.classes.clear();
            self.duty.clear();
            self.kernel.clear();
        }
    }

    thread_local! {
        static POOL: RefCell<Option<Carcass>> = const { RefCell::new(None) };
        static REUSES: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn take() -> Option<Carcass> {
        let c = POOL.with(|p| p.borrow_mut().take());
        if c.is_some() {
            REUSES.with(|r| r.set(r.get() + 1));
        }
        c
    }

    pub(super) fn stash(c: Carcass) {
        POOL.with(|p| {
            let mut slot = p.borrow_mut();
            if slot.is_none() {
                *slot = Some(c);
            }
        });
    }

    pub(super) fn reuses() -> u64 {
        REUSES.with(|r| r.get())
    }
}

/// Process-lifetime total of channel slots executed by every engine run
/// (all threads, all trials). See [`slots_executed_total`].
static SLOTS_EXECUTED_TOTAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total channel slots executed by all [`Engine::run`] calls in this
/// process so far — the process-wide view of the per-report
/// [`SimReport::slots_run`] counter. Monotone; never reset. This is how
/// an outside observer (e.g. the experiment server's cache tests) proves
/// that serving a result "from cache" really executed zero new slots.
pub fn slots_executed_total() -> u64 {
    SLOTS_EXECUTED_TOTAL.load(std::sync::atomic::Ordering::Relaxed)
}

/// The simulation engine. See the [module docs](self) for the slot loop.
pub struct Engine {
    config: EngineConfig,
    seeds: SeedSeq,
    jammer: Jammer,
    jobs: JobTable,
    /// Job indices visited every slot; jobs leave by retirement or parking
    /// (`swap_remove`, so order is arbitrary — see the module docs).
    active: Vec<u32>,
    parked: WakeQueue,
    /// Job indices sorted by `(release, id)`; a cursor into this drives
    /// activation.
    by_release: Vec<u32>,
    scratch: SlotScratch,
    event_scratch: Vec<ProbeEvent>,
    cohorts: CohortSet,
    /// Phase-synchronized aggregate classes (see [`CohortTx::Class`]).
    classes: ClassSet,
    /// Duty groups (periodic-schedule jobs; see [`Protocol::duty_cycle`]).
    duty: DutySet,
    /// The vectorized slot kernel (inert unless fidelity is
    /// [`Fidelity::Vectorized`]; see [`crate::kernel`]).
    kernel: SlotKernel,
    /// Guards against a second `run` without a `reset` in between.
    ran: bool,
}

impl Engine {
    /// Create an engine with the given configuration and master seed,
    /// reusing the current thread's pooled allocations if any (see the
    /// [module docs](self) on the trial arena; behavior is identical either
    /// way).
    pub fn new(config: EngineConfig, seed: u64) -> Self {
        let carcass = arena::take().unwrap_or_default();
        Self {
            config,
            seeds: SeedSeq::new(seed),
            jammer: Jammer::none(),
            jobs: carcass.jobs,
            active: carcass.active,
            by_release: carcass.by_release,
            parked: carcass.parked,
            scratch: carcass.scratch,
            event_scratch: carcass.event_scratch,
            cohorts: carcass.cohorts,
            classes: carcass.classes,
            duty: carcass.duty,
            kernel: carcass.kernel,
            ran: false,
        }
    }

    /// Create an engine with freshly allocated internals, bypassing the
    /// thread-local pool. Behavior is identical to [`Engine::new`]; this
    /// exists so benchmarks and tests can measure or pin down the
    /// no-reuse path explicitly.
    pub fn fresh(config: EngineConfig, seed: u64) -> Self {
        Self {
            config,
            seeds: SeedSeq::new(seed),
            jammer: Jammer::none(),
            jobs: JobTable::default(),
            active: Vec::new(),
            by_release: Vec::new(),
            parked: WakeQueue::new(),
            scratch: SlotScratch::default(),
            event_scratch: Vec::new(),
            cohorts: CohortSet::default(),
            classes: ClassSet::default(),
            duty: DutySet::default(),
            kernel: SlotKernel::new(),
            ran: false,
        }
    }

    /// Number of times `Engine::new` on this thread reused pooled
    /// allocations instead of allocating fresh ones (diagnostic).
    pub fn arena_reuses() -> u64 {
        arena::reuses()
    }

    /// Return the engine to its just-constructed state under a new master
    /// seed, keeping the configuration and every internal allocation.
    ///
    /// The reset contract (what bit-identity across reuse requires): all
    /// job state, the active set, the wake queue including its lifetime
    /// counters, all per-slot scratch, the cohorts, the jammer (back to
    /// [`Jammer::none`]; install the trial's adversary after the reset),
    /// and the seed sequence. Nothing else in the engine carries state
    /// between runs.
    pub fn reset(&mut self, seed: u64) {
        self.seeds = SeedSeq::new(seed);
        self.jammer = Jammer::none();
        self.jobs.clear();
        self.active.clear();
        self.by_release.clear();
        self.parked.clear();
        self.scratch.clear();
        self.event_scratch.clear();
        self.cohorts.clear();
        self.classes.clear();
        self.duty.clear();
        self.kernel.clear();
        self.ran = false;
    }

    /// Install a jamming adversary (default: none).
    pub fn set_jammer(&mut self, jammer: Jammer) {
        self.jammer = jammer;
    }

    /// Add a job. Jobs must be added with ids `0, 1, 2, …` in order; this
    /// keeps outcome lookup an index and catches instance-construction bugs.
    pub fn add_job(&mut self, spec: JobSpec, protocol: Box<dyn Protocol>) {
        assert_eq!(
            spec.id as usize,
            self.jobs.len(),
            "jobs must be added in id order"
        );
        let key = self.seeds.job_key(u64::from(spec.id));
        self.jobs.push(spec, protocol, key);
    }

    /// Add every job in `specs`, building each protocol with `factory`.
    pub fn add_jobs<F>(&mut self, specs: &[JobSpec], mut factory: F)
    where
        F: FnMut(&JobSpec) -> Box<dyn Protocol>,
    {
        for spec in specs {
            let protocol = factory(spec);
            self.add_job(*spec, protocol);
        }
    }

    /// Number of jobs registered.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Run the simulation to completion and return the report.
    ///
    /// Runs once per [`Engine::reset`] (or construction): the jobs are
    /// consumed by the run, so a second call without a reset panics.
    pub fn run(&mut self) -> SimReport {
        assert!(
            !self.ran,
            "Engine::run called twice; call Engine::reset between runs"
        );
        self.ran = true;
        let started = std::time::Instant::now();
        let horizon = self
            .jobs
            .specs
            .iter()
            .map(|s| s.deadline)
            .max()
            .unwrap_or(0);
        // Running past the last deadline is pointless (all jobs retired), so
        // the horizon caps the configured limit rather than the reverse.
        let max_slots = match self.config.max_slots {
            Some(cap) => cap.min(horizon),
            None => horizon,
        };

        // Activation order: job indices sorted by release slot (id breaks
        // ties, and ids equal indices, so the unstable sort is total).
        self.by_release.clear();
        self.by_release.extend(0..self.jobs.len() as u32);
        let specs = &self.jobs.specs;
        self.by_release
            .sort_unstable_by_key(|&i| (specs[i as usize].release, i));
        let mut next_pending = 0usize;

        self.active.clear();
        self.scratch.clear();
        let event_driven = self.config.scheduling == Scheduling::EventDriven;
        let cohort_mode = self.config.fidelity == Fidelity::Cohort;
        let vector_mode = self.config.fidelity == Fidelity::Vectorized;
        if vector_mode {
            self.kernel
                .prepare(self.jobs.len(), self.config.kernel_shards);
        }
        let aligned_clock = self.config.expose_aligned_clock;
        // An adversary that can strike silent slots draws randomness every
        // slot, so all-parked stretches cannot be skipped without
        // desynchronizing (and silencing) it; such slots run one by one.
        // This keys off the `Adversary` trait's declaration, not any
        // concrete policy, so new idle-striking adversaries gate correctly.
        let jammer_strikes_idle = self.jammer.strikes_idle();
        let mut counts = SlotCounts::default();
        // All observability flows through the probe bus. The legacy
        // `record_trace` flag is a `VecSink` attached first, so its output
        // is bit-identical to the old unconditional trace Vec.
        let mut bus = ProbeBus::new();
        if self.config.record_trace {
            bus.push(Box::new(VecSink::new()));
        }
        if let Some(spec) = &self.config.probe {
            for sink in &spec.sinks {
                bus.push(sink.build());
            }
        }
        let wants_slots = bus.wants_slots();
        let probed = bus.wants_events();
        let mut sched_stats = SchedStats::default();
        // Running total of per-slot declared contention (diagnostic; only
        // accumulated while some sink records slot traces).
        let mut contention_sum = 0.0f64;
        let mut jam_rng = self.seeds.rng(StreamLabel::Jammer, 0);
        // Cohort draws come from their own stream so the exact path's
        // per-job streams stay untouched by the mode switch.
        let mut cohort_rng = cohort_mode.then(|| self.seeds.rng(StreamLabel::Cohort, 0));

        // Per-job duty bookkeeping arrays (empty groups; sized to the run).
        self.duty.prepare(self.jobs.len());

        let mut slot: u64 = 0;
        while slot < max_slots {
            // Retire kernel state whose deadline arrived (outcomes settle
            // to Missed in the end-of-run sweep, as on the exact path).
            if vector_mode {
                self.kernel.expire(slot);
            }
            // Nothing live and nothing pending: the channel is idle forever.
            // Wake-queue entries that are stale duty backstops (their job
            // already retired) don't count as live.
            if self.active.is_empty()
                && self.parked.len() as u64 == self.duty.dead_backstops
                && self.cohorts.total == 0
                && self.classes.total == 0
                && self.kernel.pending() == 0
                && next_pending == self.by_release.len()
            {
                break;
            }
            // Fast-forward through stretches where no job needs polling:
            // idle gaps between arrival bursts, and stretches where every
            // live job is parked. The skipped slots really are silent, so
            // they stay accounted (and traced, when tracing, as a single
            // run-length record): `counts.total()` always equals the number
            // of slots the run covered. Cohorts block the skip: a live
            // cohort draws randomness (and can transmit) every slot — and
            // so does a live aggregate class.
            if self.active.is_empty()
                && self.cohorts.total == 0
                && self.classes.total == 0
                && self.kernel.bern_live() == 0
                && ((self.parked.len() as u64 == self.duty.dead_backstops
                    && self.kernel.pending() == 0)
                    || !jammer_strikes_idle)
            {
                let mut next_event = u64::MAX;
                if next_pending < self.by_release.len() {
                    next_event = self.jobs.specs[self.by_release[next_pending] as usize].release;
                }
                if let Some(wake) = self.parked.next_wake() {
                    next_event = next_event.min(wake);
                }
                if let Some(tx) = self.kernel.next_tx() {
                    next_event = next_event.min(tx);
                }
                if let Some(expiry) = self.kernel.next_expiry() {
                    // A pending (fired-but-undelivered) one-shot holds the
                    // run open to its deadline, exactly as the exact path's
                    // parked job does; the skip must land there, not at the
                    // horizon.
                    next_event = next_event.min(expiry);
                }
                if self.duty.total > 0 {
                    // Duty groups break the gap at their next wake or
                    // standing-transmission slot (which may be `slot`
                    // itself, suppressing the skip).
                    next_event = next_event.min(self.duty.next_event(slot));
                }
                if next_event > slot {
                    let until = next_event.min(max_slots);
                    let gap = until - slot;
                    counts.silent += gap;
                    sched_stats.gap_skips += 1;
                    sched_stats.gap_slots += gap;
                    // Stateful adversaries observe the skipped silence in
                    // bulk (contract: identical to per-slot rejections).
                    self.jammer.on_silent_gap(gap);
                    if wants_slots {
                        bus.on_slot(&SlotRecord {
                            slot,
                            outcome: if gap == 1 {
                                SlotOutcome::Silent
                            } else {
                                SlotOutcome::SilentGap { len: gap }
                            },
                            live_jobs: (self.parked.len() as u64 - self.duty.dead_backstops
                                + self.kernel.pending() as u64)
                                as u32,
                            declared_contention: 0.0,
                            payload: None,
                        });
                    }
                    if probed {
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: None,
                            event: ProbeEvent::GapSkip { len: gap },
                        });
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: None,
                            event: ProbeEvent::WakeQueueStats {
                                parked: self.parked.len() as u32,
                            },
                        });
                    }
                    slot = until;
                    if slot == max_slots {
                        break;
                    }
                }
            }

            // 0. Wake parked jobs whose slot arrived. Entries for jobs in
            // the duty layer are deadline backstops: a live member leaves
            // the layer here (settling its standing-transmission count) and
            // runs its final stretch as a plain active job; a member that
            // retired early left a stale entry, discarded on arrival.
            let first_woken = self.active.len();
            self.parked.pop_due(slot, &mut self.active);
            if event_driven && (self.duty.total > 0 || self.duty.dead_backstops > 0) {
                let mut i = first_woken;
                while i < self.active.len() {
                    let idx = self.active[i] as usize;
                    if self.jobs.outcomes[idx].is_some() {
                        self.duty.dead_backstops -= 1;
                        self.active.swap_remove(i);
                        continue;
                    }
                    if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                        self.jobs.accesses[idx].transmissions += tx;
                        self.jobs.accesses[idx].listens += li;
                    }
                    i += 1;
                }
            }

            // 1. Activate arrivals.
            while next_pending < self.by_release.len()
                && self.jobs.specs[self.by_release[next_pending] as usize].release == slot
            {
                let idx = self.by_release[next_pending];
                next_pending += 1;
                let spec = self.jobs.specs[idx as usize];
                let ctx = JobCtx {
                    id: spec.id,
                    window: spec.window(),
                    local_time: 0,
                    aligned_time: aligned_clock.then_some(slot),
                    probed,
                };
                if cohort_mode {
                    let routed = match self.jobs.protocols[idx as usize].cohort_tx(&ctx) {
                        // Phase-synchronized class: route to the shared
                        // driver for (tag, release, deadline), opening it
                        // at the first member's activation. A protocol
                        // that declines to supply a driver falls through
                        // to the exact per-job path.
                        Some(CohortTx::Class { tag }) => self.admit_class(tag, &spec, &ctx),
                        Some(profile) => {
                            // Aggregate-managed: never polled, never called
                            // back.
                            self.cohorts.insert(profile, spec.deadline, idx);
                            true
                        }
                        None => false,
                    };
                    if routed {
                        continue;
                    }
                }
                if vector_mode {
                    if let Some(profile) = self.jobs.protocols[idx as usize].cohort_tx(&ctx) {
                        // Kernel-managed: the profile's bit-level draw
                        // schedule (see [`CohortTx`]) lets the kernel make
                        // the job's draws itself, so the protocol is never
                        // polled or called back — unobservably, since such
                        // protocols have no observable callback effects.
                        let key = self.jobs.keys[idx as usize];
                        match profile {
                            CohortTx::Constant { p } => {
                                self.kernel.insert_bern(idx, key, p, spec.deadline);
                            }
                            CohortTx::OneShot => {
                                self.kernel.insert_shot(
                                    idx,
                                    key,
                                    spec.release,
                                    spec.window(),
                                    spec.deadline,
                                );
                            }
                            CohortTx::Class { .. } => {
                                // Class aggregates are a cohort-fidelity
                                // construct; the kernel's bit-identity
                                // contract does not cover them, so such jobs
                                // stay on the exact per-job path here.
                                let mut rng = CounterRng::new(
                                    self.jobs.keys[idx as usize],
                                    slot,
                                    Phase::Activate,
                                );
                                self.jobs.protocols[idx as usize].on_activate(&ctx, &mut rng);
                                self.active.push(idx);
                            }
                        }
                        continue;
                    }
                }
                let mut rng = CounterRng::new(self.jobs.keys[idx as usize], slot, Phase::Activate);
                self.jobs.protocols[idx as usize].on_activate(&ctx, &mut rng);
                self.active.push(idx);
            }

            // 2. Collect actions. The polled set is the active set (in
            // order) plus the members of every duty group with a wake bit
            // at this slot's position; duty groups with a *tx* bit here
            // contribute standing transmissions in aggregate instead —
            // per-member counters are settled lazily at deregistration.
            // `tx_probability` is purely diagnostic, so its virtual call
            // (and the contention sum) is skipped when no trace records it.
            self.scratch.transmitters.clear();
            self.scratch.polled.clear();
            self.scratch.codes.clear();
            self.scratch.ctxs.clear();
            self.scratch.listen_groups.clear();
            self.scratch.polled.extend_from_slice(&self.active);
            let recording = wants_slots;
            let mut declared_contention = 0.0f64;
            let mut standing_n: u64 = 0;
            let mut standing_single: Option<(u32, Payload)> = None;
            if event_driven && self.duty.total > 0 {
                // Groups usually share one period: memoize `slot % period`
                // so the scan performs a single division per slot.
                let mut memo = (0u64, 0u64);
                for (gi, g) in self.duty.groups.iter().enumerate() {
                    if g.members.is_empty() {
                        continue;
                    }
                    let period = u64::from(g.period);
                    if memo.0 != period {
                        memo = (period, slot % period);
                    }
                    let mut pos = memo.1 + period - u64::from(g.anchor_mod);
                    if pos >= period {
                        pos -= period;
                    }
                    if g.wake_mask >> pos & 1 != 0 {
                        self.scratch.polled.extend_from_slice(&g.members);
                    }
                    if g.listen_mask >> pos & 1 != 0 {
                        self.scratch.listen_groups.push(gi as u32);
                    }
                    if g.tx_mask >> pos & 1 != 0 {
                        standing_n += g.members.len() as u64;
                        standing_single = if standing_n == 1 {
                            Some((g.members[0], g.payload))
                        } else {
                            None
                        };
                        if recording {
                            // Standing slots transmit with probability 1.
                            declared_contention += g.members.len() as f64;
                        }
                    }
                }
            }
            let visited_start = self.active.len();
            for k in 0..self.scratch.polled.len() {
                let idx = self.scratch.polled[k] as usize;
                let spec = self.jobs.specs[idx];
                let ctx = JobCtx {
                    id: spec.id,
                    window: spec.window(),
                    local_time: slot - spec.release,
                    aligned_time: aligned_clock.then_some(slot),
                    probed,
                };
                self.scratch.ctxs.push(ctx);
                let mut rng = CounterRng::new(self.jobs.keys[idx], slot, Phase::Act);
                let action = self.jobs.protocols[idx].act(&ctx, &mut rng);
                let declared = if recording {
                    self.jobs.protocols[idx].tx_probability(&ctx)
                } else {
                    None
                };
                match action {
                    Action::Transmit(payload) => {
                        if recording {
                            declared_contention += declared.unwrap_or(1.0);
                        }
                        self.jobs.accesses[idx].transmissions += 1;
                        self.scratch.transmitters.push((idx as u32, payload));
                        // Transmitters also observe the slot (they learn
                        // whether their own broadcast succeeded).
                        self.scratch.codes.push(CODE_TX);
                    }
                    Action::Listen => {
                        if recording {
                            declared_contention += declared.unwrap_or(0.0);
                        }
                        self.jobs.accesses[idx].listens += 1;
                        self.scratch.codes.push(CODE_LISTEN);
                    }
                    Action::Sleep => {
                        if recording {
                            declared_contention += declared.unwrap_or(0.0);
                        }
                        self.scratch.codes.push(CODE_SLEEP);
                    }
                }
            }

            // 2b. Cohort draws: one binomial per cohort decides how many
            // members transmit this slot; individuals stay anonymous unless
            // the slot resolves to a single transmission.
            self.scratch.cohort_hits.clear();
            let mut cohort_tx: u64 = 0;
            if let Some(rng) = cohort_rng.as_mut() {
                for (c_idx, cohort) in self.cohorts.cohorts.iter().enumerate() {
                    let (m, p) = match cohort.model {
                        CohortModel::Constant { .. } => (cohort.members.len() as u64, cohort.p),
                        // One-shot hazard among not-yet-attempted members;
                        // live cohorts always have slot < deadline, and at
                        // deadline − 1 the hazard reaches 1 (everyone left
                        // must attempt now or never).
                        CohortModel::OneShot => {
                            (cohort.fresh as u64, 1.0 / (cohort.deadline - slot) as f64)
                        }
                    };
                    let t = sample_binomial(m, p, rng);
                    if t > 0 {
                        self.scratch.cohort_hits.push((c_idx as u32, t));
                        cohort_tx += t;
                    }
                    if recording {
                        declared_contention += m as f64 * p;
                    }
                }
            }

            // 2b'. Aggregate-class draws: each live class's shared state
            // machine decides its transmitter count for this slot (one exact
            // binomial on sampled steps, a deterministic count on broadcast
            // steps, zero on listen steps). Individuals stay anonymous
            // unless the slot resolves to a single transmission.
            let mut class_tx: u64 = 0;
            if cohort_mode {
                for entry in &mut self.classes.entries {
                    let decl = entry.driver.begin_slot(slot);
                    entry.count = decl.count;
                    class_tx += decl.count;
                    if recording {
                        declared_contention += decl.declared;
                    }
                }
            }

            // 2c. Vectorized kernel: batched Bernoulli draws over the
            // probability buckets plus due one-shot calendar entries.
            // Each transmitter joins the slot exactly as an exact-path
            // `Action::Transmit` would (the draws are bit-identical; see
            // `crate::kernel`); kernel jobs are never polled, so they take
            // no feedback and appear in no `codes`.
            if vector_mode {
                self.scratch.kernel_tx.clear();
                self.kernel.collect(slot, &mut self.scratch.kernel_tx);
                for &idx in &self.scratch.kernel_tx {
                    self.jobs.accesses[idx as usize].transmissions += 1;
                    self.scratch
                        .transmitters
                        .push((idx, Payload::Data(self.jobs.specs[idx as usize].id)));
                }
                if recording {
                    // Bucketed jobs declare `p` whether they transmit or
                    // sleep; one-shots declare nothing while parked (the
                    // exact path's parked jobs are not polled either).
                    declared_contention += self.kernel.declared();
                }
            }

            // 3. Resolve the channel and give the adversary its shot.
            let n_tx = self.scratch.transmitters.len()
                + cohort_tx as usize
                + class_tx as usize
                + standing_n as usize;
            // A lone cohort transmission materializes one member: position
            // in its cohort's member list, chosen uniformly (members are
            // exchangeable).
            let mut cohort_winner: Option<(usize, usize)> = None;
            let view = match n_tx {
                0 => SlotView::Silent,
                1 => {
                    if let Some(&(idx, payload)) = self.scratch.transmitters.first() {
                        SlotView::Single {
                            src: self.jobs.specs[idx as usize].id,
                            payload,
                        }
                    } else if let Some((member, payload)) = standing_single {
                        // The slot's only transmission is one job's standing
                        // duty broadcast (its transmission counter is covered
                        // by the lazy per-member accounting).
                        SlotView::Single {
                            src: self.jobs.specs[member as usize].id,
                            payload,
                        }
                    } else if class_tx == 1 {
                        // A lone aggregate-class transmission: the class
                        // materializes the member (and payload) that goes on
                        // the channel, making the slot's `src` concrete.
                        let entry = self
                            .classes
                            .entries
                            .iter_mut()
                            .find(|e| e.count == 1)
                            .expect("class_tx == 1 implies a class with count 1");
                        let (member, payload) = entry.driver.materialize(slot);
                        self.jobs.accesses[member as usize].transmissions += 1;
                        SlotView::Single {
                            src: self.jobs.specs[member as usize].id,
                            payload,
                        }
                    } else {
                        let (c_idx, _) = self.scratch.cohort_hits[0];
                        let cohort = &self.cohorts.cohorts[c_idx as usize];
                        let rng = cohort_rng.as_mut().expect("cohort hit implies cohort mode");
                        // One-shot attempts come from the fresh prefix only.
                        let pool = match cohort.model {
                            CohortModel::Constant { .. } => cohort.members.len(),
                            CohortModel::OneShot => cohort.fresh,
                        };
                        let pos = rng.gen_range(0..pool);
                        let member = cohort.members[pos] as usize;
                        self.jobs.accesses[member].transmissions += 1;
                        cohort_winner = Some((c_idx as usize, pos));
                        SlotView::Single {
                            src: self.jobs.specs[member].id,
                            payload: Payload::Data(self.jobs.specs[member].id),
                        }
                    }
                }
                _ => {
                    // Collision: charge each hit cohort's transmission count
                    // to distinct members (partial Fisher–Yates; order in
                    // the member list is meaningless).
                    if let Some(rng) = cohort_rng.as_mut() {
                        for &(c_idx, t) in &self.scratch.cohort_hits {
                            let cohort = &mut self.cohorts.cohorts[c_idx as usize];
                            match cohort.model {
                                CohortModel::Constant { .. } => {
                                    let members = &mut cohort.members;
                                    let t = (t as usize).min(members.len());
                                    for i in 0..t {
                                        let j = rng.gen_range(i..members.len());
                                        members.swap(i, j);
                                        self.jobs.accesses[members[i] as usize].transmissions += 1;
                                    }
                                }
                                CohortModel::OneShot => {
                                    // Draw the attempters from the fresh
                                    // prefix, parking each at its end so the
                                    // prefix shrinks over the spent ones.
                                    let t = (t as usize).min(cohort.fresh);
                                    for i in 0..t {
                                        let lim = cohort.fresh - i;
                                        let j = rng.gen_range(0..lim);
                                        cohort.members.swap(j, lim - 1);
                                        self.jobs.accesses[cohort.members[lim - 1] as usize]
                                            .transmissions += 1;
                                    }
                                    cohort.fresh -= t;
                                }
                            }
                        }
                    }
                    SlotView::Collision { n_tx }
                }
            };
            let jammed = self.jammer.jams(view, &mut jam_rng);

            let feedback = if jammed {
                Feedback::Noise
            } else {
                match view {
                    SlotView::Silent => Feedback::Silent,
                    SlotView::Single { src, payload } => Feedback::Success { src, payload },
                    SlotView::Collision { .. } => Feedback::Noise,
                }
            };

            // 4. Account the slot.
            let mut delivered_data: Option<JobId> = None;
            match (jammed, n_tx) {
                (true, _) => counts.jammed += 1,
                (false, 0) => counts.silent += 1,
                (false, 1) => {
                    counts.success += 1;
                    if let SlotView::Single { src, payload } = view {
                        if payload.data_owner() == Some(src) || cohort_winner.is_some() {
                            counts.data_success += 1;
                            delivered_data = Some(src);
                        } else if let Some(owner) = payload.data_owner() {
                            counts.data_success += 1;
                            delivered_data = Some(owner);
                        }
                    }
                }
                (false, _) => counts.collision += 1,
            }

            if wants_slots {
                let outcome = if jammed {
                    SlotOutcome::Jammed { n_tx: n_tx as u32 }
                } else {
                    match view {
                        SlotView::Silent => SlotOutcome::Silent,
                        SlotView::Single { src, payload } => SlotOutcome::Success {
                            src,
                            was_data: payload.is_data(),
                        },
                        SlotView::Collision { n_tx } => {
                            SlotOutcome::Collision { n_tx: n_tx as u32 }
                        }
                    }
                };
                bus.on_slot(&SlotRecord {
                    slot,
                    outcome,
                    // Duty members are counted through their deadline
                    // backstops in the wake queue (exactly one per member);
                    // stale backstops of retired members are discounted.
                    live_jobs: (self.active.len()
                        + self.parked.len()
                        + self.cohorts.total
                        + self.classes.total
                        + self.kernel.pending()) as u32
                        - self.duty.dead_backstops as u32,
                    declared_contention,
                    payload: feedback.payload().copied(),
                });
            }
            if recording {
                contention_sum += declared_contention;
            }

            // 5. Record delivery, then run the fused feedback / retirement /
            // rescheduling pass: one ctx build per polled job instead of
            // three. Feedback lands in polled order, which is exactly the
            // old listener order.
            if let Some(owner) = delivered_data {
                // First delivery inside the window wins; protocols built in
                // this workspace never transmit data outside their window
                // (the engine retires them at the deadline), so `slot` is
                // necessarily inside it.
                let outcome = &mut self.jobs.outcomes[owner as usize];
                if outcome.is_none() {
                    *outcome = Some(JobOutcome::Success { slot });
                }
                // A delivered kernel-managed job leaves the kernel
                // immediately (its Bernoulli lane dies / its calendar
                // deadline count drops).
                if vector_mode && self.kernel.is_managed(owner as usize) {
                    self.kernel
                        .on_delivery(owner as usize, self.jobs.specs[owner as usize].deadline);
                }
                // A delivered cohort member leaves its cohort immediately.
                if let Some((c_idx, pos)) = cohort_winner {
                    let cohort = &mut self.cohorts.cohorts[c_idx];
                    match cohort.model {
                        CohortModel::Constant { .. } => {
                            cohort.members.swap_remove(pos);
                        }
                        CohortModel::OneShot => {
                            // Remove without pulling a spent member into
                            // the fresh prefix: retire via its end.
                            cohort.members.swap(pos, cohort.fresh - 1);
                            cohort.members.swap_remove(cohort.fresh - 1);
                            cohort.fresh -= 1;
                        }
                    }
                    self.cohorts.total -= 1;
                }
            } else if let Some((c_idx, pos)) = cohort_winner {
                // The lone cohort transmission was jammed. A memoryless
                // member just retries; a one-shot member has spent its
                // attempt and moves behind the fresh prefix.
                let cohort = &mut self.cohorts.cohorts[c_idx];
                if cohort.model == CohortModel::OneShot {
                    cohort.members.swap(pos, cohort.fresh - 1);
                    cohort.fresh -= 1;
                }
            }
            // Active part: `polled[..visited_start]` mirrors `active`, and
            // removals keep `codes` aligned by mirroring the swap.
            let mut k = 0;
            while k < self.active.len() {
                let idx = self.active[k] as usize;
                let code = self.scratch.codes[k];
                let spec = self.jobs.specs[idx];
                let ctx = self.scratch.ctxs[k];
                if code != CODE_SLEEP {
                    let mut rng = CounterRng::new(self.jobs.keys[idx], slot, Phase::Feedback);
                    self.jobs.protocols[idx].on_feedback(&ctx, &feedback, &mut rng);
                }
                let window_over = slot + 1 >= spec.deadline;
                let finished = self.jobs.outcomes[idx].is_some()
                    || self.jobs.protocols[idx].is_done()
                    || window_over;
                if finished {
                    if self.jobs.outcomes[idx].is_none() {
                        self.jobs.outcomes[idx] = Some(JobOutcome::Missed);
                    }
                    let last = self.active.len() - 1;
                    self.active.swap_remove(k);
                    self.scratch.codes.swap(k, last);
                    self.scratch.ctxs.swap(k, last);
                    continue;
                }
                if event_driven {
                    if let Some(dc) = self.jobs.protocols[idx].duty_cycle(&ctx) {
                        self.duty.register(idx, &dc, spec.release, slot);
                        if !self.duty.backstopped[idx] {
                            self.duty.backstopped[idx] = true;
                            // One wake-queue entry per job for its whole
                            // duty-layer life: a deadline backstop that both
                            // retires it on time and keeps it in live-job
                            // accounting.
                            self.parked.push(spec.deadline - 1, idx as u32);
                        }
                        let last = self.active.len() - 1;
                        self.active.swap_remove(k);
                        self.scratch.codes.swap(k, last);
                        self.scratch.ctxs.swap(k, last);
                        continue;
                    }
                    if let Some(wake_local) = self.jobs.protocols[idx].next_wake(&ctx) {
                        // Clamp into the window so the job is awake for its
                        // last slot and retires through the normal deadline
                        // check, exactly as under dense polling.
                        let wake = spec
                            .release
                            .saturating_add(wake_local)
                            .min(spec.deadline - 1);
                        if wake > slot + 1 {
                            self.parked.push(wake, idx as u32);
                            let last = self.active.len() - 1;
                            self.active.swap_remove(k);
                            self.scratch.codes.swap(k, last);
                            self.scratch.ctxs.swap(k, last);
                            continue;
                        }
                    }
                }
                k += 1;
            }
            // Visited duty members: feedback, retirement (their backstop
            // stays behind in the wake queue), and schedule re-query — a
            // state change moves the member between groups.
            for v in visited_start..self.scratch.polled.len() {
                let idx = self.scratch.polled[v] as usize;
                let code = self.scratch.codes[v];
                let spec = self.jobs.specs[idx];
                let ctx = self.scratch.ctxs[v];
                if code != CODE_SLEEP {
                    let mut rng = CounterRng::new(self.jobs.keys[idx], slot, Phase::Feedback);
                    self.jobs.protocols[idx].on_feedback(&ctx, &feedback, &mut rng);
                }
                if self.jobs.outcomes[idx].is_some() || slot + 1 >= spec.deadline {
                    if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                        self.jobs.accesses[idx].transmissions += tx;
                        self.jobs.accesses[idx].listens += li;
                    }
                    self.duty.dead_backstops += 1;
                    if self.jobs.outcomes[idx].is_none() {
                        self.jobs.outcomes[idx] = Some(JobOutcome::Missed);
                    }
                    continue;
                }
                match self.jobs.protocols[idx].duty_cycle(&ctx) {
                    // Unchanged schedule (the overwhelmingly common case):
                    // one struct compare, no division.
                    Some(dc) if self.duty.reg_dc[idx] == Some(dc) => {}
                    Some(dc) if self.duty.key_matches(idx, &dc, spec.release) => {
                        self.duty.reg_dc[idx] = Some(dc);
                    }
                    Some(dc) => {
                        if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                            self.jobs.accesses[idx].transmissions += tx;
                            self.jobs.accesses[idx].listens += li;
                        }
                        self.duty.register(idx, &dc, spec.release, slot);
                    }
                    None => {
                        // Contract: `None` from a registered job signals
                        // completion — retire it here, sparing a separate
                        // `is_done` virtual call on the hot path.
                        if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                            self.jobs.accesses[idx].transmissions += tx;
                            self.jobs.accesses[idx].listens += li;
                        }
                        self.duty.dead_backstops += 1;
                        if self.jobs.outcomes[idx].is_none() {
                            self.jobs.outcomes[idx] = Some(JobOutcome::Missed);
                        }
                    }
                }
            }

            // Listen groups: one representative decides whether this slot's
            // feedback is group-invariant. If it is, nothing happens per
            // member (their listen counters are settled lazily, in closed
            // form, at deregistration); if not, every member observes the
            // feedback individually — the always-correct fallback. A slot
            // that delivered a member's own data forces the fallback so
            // `duty_listen` implementations never reason about delivery.
            for li in 0..self.scratch.listen_groups.len() {
                let gi = self.scratch.listen_groups[li] as usize;
                if self.duty.groups[gi].members.is_empty() {
                    continue;
                }
                let mut forced = false;
                if let Feedback::Success { src, payload } = &feedback {
                    if payload.is_data() {
                        let owner = payload.data_owner().unwrap_or(*src) as usize;
                        if let Some(&(g1, p)) = self.duty.where_of.get(owner) {
                            forced = g1 as usize == gi + 1
                                && self.duty.groups[gi].members.get(p as usize)
                                    == Some(&(owner as u32));
                        }
                    }
                }
                // Members registered during this slot's feedback passes
                // (`reg_slot == slot + 1`) already observed the slot on the
                // path that brought them here: they are skipped below and
                // cannot represent the group.
                if !forced {
                    let Some(&rep) = self.duty.groups[gi]
                        .members
                        .iter()
                        .find(|&&m| self.duty.reg_slot[m as usize] <= slot)
                    else {
                        continue;
                    };
                    let rep = rep as usize;
                    let spec = self.jobs.specs[rep];
                    let ctx = JobCtx {
                        id: spec.id,
                        window: spec.window(),
                        local_time: slot - spec.release,
                        aligned_time: aligned_clock.then_some(slot),
                        probed,
                    };
                    if self.jobs.protocols[rep].duty_listen(&ctx, &feedback) {
                        continue;
                    }
                }
                let mut m = 0;
                while m < self.duty.groups[gi].members.len() {
                    let idx = self.duty.groups[gi].members[m] as usize;
                    if self.duty.reg_slot[idx] > slot {
                        m += 1;
                        continue;
                    }
                    let spec = self.jobs.specs[idx];
                    let ctx = JobCtx {
                        id: spec.id,
                        window: spec.window(),
                        local_time: slot - spec.release,
                        aligned_time: aligned_clock.then_some(slot),
                        probed,
                    };
                    let mut rng = CounterRng::new(self.jobs.keys[idx], slot, Phase::Feedback);
                    self.jobs.protocols[idx].on_feedback(&ctx, &feedback, &mut rng);
                    if probed {
                        // The drain pass walks the polled snapshot; fanned-
                        // out listeners may have emitted events too.
                        self.scratch.polled.push(idx as u32);
                    }
                    if self.jobs.outcomes[idx].is_some() || slot + 1 >= spec.deadline {
                        // The lazy settle covers `[reg_slot, slot)`; the
                        // fan-out slot itself was attended, so count it.
                        if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                            self.jobs.accesses[idx].transmissions += tx;
                            self.jobs.accesses[idx].listens += li + 1;
                        }
                        self.duty.dead_backstops += 1;
                        if self.jobs.outcomes[idx].is_none() {
                            self.jobs.outcomes[idx] = Some(JobOutcome::Missed);
                        }
                        continue;
                    }
                    match self.jobs.protocols[idx].duty_cycle(&ctx) {
                        Some(dc) if self.duty.reg_dc[idx] == Some(dc) => m += 1,
                        Some(dc) if self.duty.key_matches(idx, &dc, spec.release) => {
                            self.duty.reg_dc[idx] = Some(dc);
                            m += 1;
                        }
                        Some(dc) => {
                            if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                                self.jobs.accesses[idx].transmissions += tx;
                                self.jobs.accesses[idx].listens += li + 1;
                            }
                            self.duty.register(idx, &dc, spec.release, slot);
                            // `swap_remove` filled slot `m` with another
                            // member: revisit the same index.
                        }
                        None => {
                            // Completion signal (see `duty_cycle` contract).
                            if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                                self.jobs.accesses[idx].transmissions += tx;
                                self.jobs.accesses[idx].listens += li + 1;
                            }
                            self.duty.dead_backstops += 1;
                            if self.jobs.outcomes[idx].is_none() {
                                self.jobs.outcomes[idx] = Some(JobOutcome::Missed);
                            }
                        }
                    }
                }
            }

            // 5a'. Aggregate classes settle the slot: each driver observes
            // the public feedback — exactly what a listening member sees —
            // updates its shared state, and reports state changes that
            // materialize members (elected leaders leaving the aggregate as
            // exact-path jobs). Delivered members were already credited via
            // the generic delivery path (the materialized member is the
            // slot's `src`); the driver merely drops them from its live set.
            if cohort_mode && !self.classes.entries.is_empty() {
                for e_idx in 0..self.classes.entries.len() {
                    let entry = &mut self.classes.entries[e_idx];
                    entry
                        .driver
                        .end_slot(slot, &feedback, &mut self.scratch.class_outbox);
                    entry.count = 0;
                    let live = entry.driver.live();
                    self.classes.total -= entry.live - live;
                    entry.live = live;
                    for ev in self.scratch.class_outbox.drain(..) {
                        match ev {
                            ClassEvent::Eject { member, protocol } => {
                                // The replacement protocol arrives
                                // pre-synchronized: no `on_activate`, polling
                                // starts next slot under the member's normal
                                // local clock.
                                self.jobs.protocols[member as usize] = protocol;
                                self.active.push(member);
                            }
                        }
                    }
                }
            }

            // 5b. Drain protocol-emitted probe events, stamping slot/job and
            // enriching `SizeEstimate` with ground truth (the engine is the
            // only component entitled to a global view). Drained in job-id
            // order so the bus stream is independent of active-set order
            // (parked jobs never hold pending events — they emit only from
            // slots they attend; the polled snapshot still includes jobs
            // that just retired or parked, whose final events must flush).
            if probed {
                self.scratch.probe_order.clear();
                self.scratch
                    .probe_order
                    .extend_from_slice(&self.scratch.polled);
                self.scratch.probe_order.sort_unstable();
                for k in 0..self.scratch.probe_order.len() {
                    let idx = self.scratch.probe_order[k] as usize;
                    self.jobs.protocols[idx].drain_events(&mut self.event_scratch);
                    if self.event_scratch.is_empty() {
                        continue;
                    }
                    let id = self.jobs.specs[idx].id;
                    for mut event in self.event_scratch.drain(..) {
                        if let ProbeEvent::SizeEstimate { class, n_true, .. } = &mut event {
                            *n_true = Self::live_class_size(&self.jobs.specs, *class, slot);
                        }
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: Some(id),
                            event,
                        });
                    }
                }
                // Class drivers emit on behalf of the whole aggregate, so
                // their records carry no job id; entries are visited in
                // insertion order, which is activation order — deterministic
                // for a given instance and seed.
                for e_idx in 0..self.classes.entries.len() {
                    self.classes.entries[e_idx]
                        .driver
                        .drain_events(&mut self.event_scratch);
                    for mut event in self.event_scratch.drain(..) {
                        if let ProbeEvent::SizeEstimate { class, n_true, .. } = &mut event {
                            *n_true = Self::live_class_size(&self.jobs.specs, *class, slot);
                        }
                        bus.on_event(&ProbeRecord {
                            slot,
                            job: None,
                            event,
                        });
                    }
                }
            }
            // Cohorts whose deadline arrived (or that emptied) dissolve;
            // remaining members' outcomes default to Missed at the end.
            if cohort_mode {
                let mut c = 0;
                while c < self.cohorts.cohorts.len() {
                    let cohort = &self.cohorts.cohorts[c];
                    if slot + 1 >= cohort.deadline || cohort.members.is_empty() {
                        self.cohorts.total -= self.cohorts.cohorts[c].members.len();
                        self.cohorts.cohorts.swap_remove(c);
                        continue;
                    }
                    c += 1;
                }
                // Classes dissolve the same way: at their shared deadline or
                // once every member delivered / ejected / gave up. Members
                // still aggregated at the deadline settle to Missed in the
                // end-of-run sweep, exactly like cohort members.
                let mut c = 0;
                while c < self.classes.entries.len() {
                    let entry = &self.classes.entries[c];
                    if slot + 1 >= entry.deadline || entry.live == 0 {
                        self.classes.total -= entry.live;
                        self.classes.entries.swap_remove(c);
                        continue;
                    }
                    c += 1;
                }
            }

            slot += 1;
        }

        // Jobs still in the duty layer when the loop ended (the slot cap
        // arrived before their deadline backstop fired): settle the standing
        // transmissions and aggregate listens they made before the cap,
        // exactly as dense polling would have counted them.
        if self.duty.total > 0 {
            for idx in 0..self.jobs.len() {
                if let Some((tx, li)) = self.duty.deregister(idx, slot) {
                    self.jobs.accesses[idx].transmissions += tx;
                    self.jobs.accesses[idx].listens += li;
                }
            }
        }

        // Anything still pending or live when the horizon hit missed.
        for outcome in &mut self.jobs.outcomes {
            outcome.get_or_insert(JobOutcome::Missed);
        }

        // Retirement events, in job-id order. Outcomes and access counters
        // are pure functions of the instance and seed (the equivalence
        // suite's invariant), so this stream is identical across scheduling
        // modes despite being assembled after the loop.
        if probed {
            for idx in 0..self.jobs.len() {
                let spec = self.jobs.specs[idx];
                let outcome = self.jobs.outcomes[idx].expect("outcome just defaulted");
                let end = match outcome {
                    JobOutcome::Success { slot } => slot,
                    JobOutcome::Missed => spec.deadline.min(slot).max(spec.release),
                };
                bus.on_event(&ProbeRecord {
                    slot: end,
                    job: Some(spec.id),
                    event: ProbeEvent::JobRetired {
                        success: outcome.is_success(),
                        latency: end - spec.release,
                        window: spec.window(),
                        transmissions: self.jobs.accesses[idx].transmissions,
                        listens: self.jobs.accesses[idx].listens,
                    },
                });
            }
        }

        sched_stats.parks = self.parked.pushes();
        sched_stats.peak_parked = self.parked.peak() as u64;

        let mut outputs = bus.finish();
        let trace = if self.config.record_trace {
            match outputs.remove(0) {
                crate::probe::ProbeOutput::Trace(t) => Some(t),
                other => unreachable!("VecSink is attached first, got {other:?}"),
            }
        } else {
            None
        };
        let probes = if self.config.probe.is_some() {
            Some(ProbeReport { outputs })
        } else {
            None
        };

        let specs: Vec<JobSpec> = self.jobs.specs.clone();
        let outcomes: Vec<JobOutcome> = self.jobs.outcomes.iter().map(|o| o.unwrap()).collect();
        let accesses: Vec<AccessCounts> = self.jobs.accesses.clone();
        SLOTS_EXECUTED_TOTAL.fetch_add(slot, std::sync::atomic::Ordering::Relaxed);
        SimReport::new(
            specs,
            outcomes,
            counts,
            accesses,
            slot,
            JamStats {
                attempted: self.jammer.attempted(),
                succeeded: self.jammer.succeeded(),
            },
            self.seeds.master(),
            started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            sched_stats,
            ContentionStats {
                declared_sum: contention_sum,
                measured_slots: if wants_slots { slot } else { 0 },
            },
            trace,
            probes,
        )
    }

    /// Route an activating job into its aggregate class, opening the class
    /// driver at first contact (see [`CohortTx::Class`]). Returns `false`
    /// when the protocol declines to supply a driver, in which case the
    /// caller activates the job on the exact per-job path.
    fn admit_class(&mut self, tag: u64, spec: &JobSpec, ctx: &JobCtx) -> bool {
        if let Some(entry) = self.classes.find_mut(tag, spec.release, spec.deadline) {
            entry.driver.admit(spec.id);
            entry.live += 1;
            self.classes.total += 1;
            return true;
        }
        let cctx = ClassCtx {
            release: spec.release,
            deadline: spec.deadline,
            window: spec.window(),
            class_seed: self.seeds.derive(
                StreamLabel::Class,
                class_stream_index(tag, spec.release, spec.deadline),
            ),
            probed: ctx.probed,
        };
        let Some(mut driver) = self.jobs.protocols[spec.id as usize].class_driver(ctx, &cctx)
        else {
            return false;
        };
        driver.admit(spec.id);
        self.classes.entries.push(ClassEntry {
            tag,
            release: spec.release,
            deadline: spec.deadline,
            live: 1,
            count: 0,
            driver,
        });
        self.classes.total += 1;
        true
    }

    /// Ground truth for [`ProbeEvent::SizeEstimate`]: the number of class-ℓ
    /// jobs (window exactly `2^class`) whose window contains `slot`.
    fn live_class_size(specs: &[JobSpec], class: u32, slot: u64) -> u64 {
        let w = 1u64 << class;
        specs
            .iter()
            .filter(|s| s.window() == w && s.release <= slot && slot < s.deadline)
            .count() as u64
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Donate the allocations to this thread's pool (cleared first, so a
        // pooled carcass is indistinguishable from a fresh one).
        let mut carcass = arena::Carcass {
            jobs: std::mem::take(&mut self.jobs),
            active: std::mem::take(&mut self.active),
            by_release: std::mem::take(&mut self.by_release),
            parked: std::mem::take(&mut self.parked),
            scratch: std::mem::take(&mut self.scratch),
            event_scratch: std::mem::take(&mut self.event_scratch),
            cohorts: std::mem::take(&mut self.cohorts),
            classes: std::mem::take(&mut self.classes),
            duty: std::mem::take(&mut self.duty),
            kernel: std::mem::take(&mut self.kernel),
        };
        carcass.clear();
        arena::stash(carcass);
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::jamming::JamPolicy;

    /// Transmit the data message in a fixed local slot.
    struct AtLocal(u64);
    impl Protocol for AtLocal {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
            if ctx.local_time == self.0 {
                Action::Transmit(Payload::Data(ctx.id))
            } else {
                Action::Listen
            }
        }
    }

    /// Record every feedback observed.
    struct Recorder {
        seen: Vec<Feedback>,
        when: u64,
    }
    impl Protocol for Recorder {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
            if ctx.local_time == self.when {
                Action::Transmit(Payload::Data(ctx.id))
            } else {
                Action::Listen
            }
        }
        fn on_feedback(&mut self, _ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn RngCore) {
            self.seen.push(*fb);
        }
    }

    #[test]
    fn lone_transmitter_succeeds() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(2)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Success { slot: 2 });
        assert_eq!(r.counts.success, 1);
        assert_eq!(r.counts.data_success, 1);
    }

    #[test]
    fn two_transmitters_collide() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(1)));
        let r = e.run();
        assert!(!r.outcome(0).is_success());
        assert!(!r.outcome(1).is_success());
        assert_eq!(r.counts.collision, 1);
    }

    #[test]
    fn staggered_transmitters_both_succeed() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(3)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Success { slot: 1 });
        assert_eq!(r.outcome(1), JobOutcome::Success { slot: 3 });
    }

    #[test]
    fn listener_observes_success_and_noise() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        // Jobs 0 and 1 collide at slot 1; job 2 transmits alone at slot 2.
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(1)));
        e.add_job(
            JobSpec::new(2, 0, 4),
            Box::new(Recorder {
                seen: vec![],
                when: 2,
            }),
        );
        let r = e.run();
        assert!(r.outcome(2).is_success());
        // Recorder saw: silent(0), noise(1), own success(2); retired after 2.
        // We can't reach the recorder anymore, but the trace confirms.
        assert_eq!(r.counts.collision, 1);
        assert_eq!(r.counts.success, 1);
    }

    #[test]
    fn deadline_miss_is_recorded() {
        struct Mute;
        impl Protocol for Mute {
            fn act(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                Action::Listen
            }
        }
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 3), Box::new(Mute));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Missed);
        assert_eq!(r.slots_run, 3);
    }

    #[test]
    fn job_cannot_act_after_window() {
        // A protocol that would transmit at local_time 5, but window is 3.
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 3), Box::new(AtLocal(5)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Missed);
        assert_eq!(r.counts.success, 0);
    }

    #[test]
    fn jammer_turns_success_into_noise() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 1.0));
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Missed);
        assert_eq!(r.counts.jammed, 1);
        assert_eq!(r.counts.success, 0);
    }

    #[test]
    fn jam_attempts_surface_in_report() {
        // p_jam = 0 means every attempt fails: counts.jammed stays 0, yet
        // the attempt is still visible in jam_stats (the whole point of
        // surfacing adversary counters).
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 0.0));
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        let r = e.run();
        assert!(r.outcome(0).is_success());
        assert_eq!(r.counts.jammed, 0);
        assert_eq!(r.jam_stats.attempted, 1);
        assert_eq!(r.jam_stats.succeeded, 0);
    }

    #[test]
    fn jam_stats_agree_with_slot_counts() {
        let mut e = Engine::new(EngineConfig::default(), 7);
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 1.0));
        for id in 0..4 {
            e.add_job(
                JobSpec::new(id, u64::from(id) * 8, u64::from(id) * 8 + 8),
                Box::new(AtLocal(2)),
            );
        }
        let r = e.run();
        assert_eq!(r.jam_stats.succeeded, r.counts.jammed);
        assert_eq!(r.jam_stats.attempted, 4);
    }

    #[test]
    fn budgeted_adversary_respects_budget() {
        use crate::jamming::BudgetedJammer;
        // Four lone transmitters, budget 2, p_jam 1: exactly the first two
        // successes are destroyed, then the ammunition is gone.
        let mut e = Engine::new(EngineConfig::default(), 3);
        e.set_jammer(Jammer::adaptive(
            Box::new(BudgetedJammer::new(2, false)),
            1.0,
        ));
        for id in 0..4 {
            e.add_job(
                JobSpec::new(id, u64::from(id) * 8, u64::from(id) * 8 + 8),
                Box::new(AtLocal(1)),
            );
        }
        let r = e.run();
        assert_eq!(r.counts.jammed, 2);
        assert_eq!(r.jam_stats.attempted, 2);
        assert!(!r.outcome(0).is_success());
        assert!(!r.outcome(1).is_success());
        assert!(r.outcome(2).is_success());
        assert!(r.outcome(3).is_success());
    }

    #[test]
    fn trace_matches_counts() {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(1, 0, 4), Box::new(AtLocal(1)));
        e.add_job(JobSpec::new(2, 0, 6), Box::new(AtLocal(4)));
        let r = e.run();
        let t = crate::trace::tally(r.trace.as_ref().unwrap());
        assert_eq!(t.success, r.counts.success);
        assert_eq!(t.collision, r.counts.collision);
        assert_eq!(t.silent, r.counts.silent);
        assert_eq!(t.jammed, r.counts.jammed);
        assert_eq!(t.data_success, r.counts.data_success);
        assert!(t.data_success > 0, "the lone slot-4 transmitter delivers");
    }

    #[test]
    fn idle_gap_fast_forward() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 2), Box::new(AtLocal(0)));
        e.add_job(JobSpec::new(1, 1_000_000, 1_000_002), Box::new(AtLocal(0)));
        let r = e.run();
        assert!(r.outcome(0).is_success());
        assert!(r.outcome(1).is_success());
        // The gap is skipped in O(1), but stays accounted as silence:
        // the books always balance. (That this test completes instantly
        // is itself the evidence the loop did not walk a million slots.)
        assert_eq!(r.counts.total(), r.slots_run);
        assert!(r.counts.silent >= 999_000);
    }

    #[test]
    fn aligned_clock_exposure() {
        struct NeedsClock;
        impl Protocol for NeedsClock {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                // With alignment, global time is release + local_time.
                assert_eq!(ctx.aligned_now(), 8 + ctx.local_time);
                Action::Listen
            }
        }
        let mut e = Engine::new(EngineConfig::aligned(), 1);
        e.add_job(JobSpec::new(0, 8, 16), Box::new(NeedsClock));
        let _ = e.run();
    }

    #[test]
    fn unaligned_ctx_hides_global_clock() {
        struct AssertHidden;
        impl Protocol for AssertHidden {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                assert!(ctx.aligned_time.is_none());
                Action::Listen
            }
        }
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 3, 7), Box::new(AssertHidden));
        let _ = e.run();
    }

    #[test]
    fn probe_report_present_only_when_configured() {
        use crate::probe::{ProbeSpec, SinkSpec};
        let run = |probe: Option<ProbeSpec>| {
            let config = EngineConfig {
                probe,
                ..EngineConfig::default()
            };
            let mut e = Engine::new(config, 5);
            e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(1)));
            e.run()
        };
        assert!(run(None).probes.is_none());
        let r = run(Some(ProbeSpec::new().with(SinkSpec::Events)));
        let probes = r.probes.expect("probe spec configured");
        let events = probes.events().expect("events sink configured");
        // No protocol emissions from AtLocal, but the engine retires the job.
        assert!(events
            .iter()
            .any(|rec| matches!(rec.event, ProbeEvent::JobRetired { success: true, .. })));
    }

    #[test]
    fn gap_skip_events_reach_sinks_and_sched_stats() {
        use crate::probe::{ProbeSpec, SinkSpec};
        let mut e = Engine::new(
            EngineConfig::default().with_probe(ProbeSpec::new().with(SinkSpec::Events)),
            1,
        );
        e.add_job(JobSpec::new(0, 0, 2), Box::new(AtLocal(0)));
        e.add_job(JobSpec::new(1, 10_000, 10_002), Box::new(AtLocal(0)));
        let r = e.run();
        assert!(r.sched_stats.gap_skips >= 1);
        assert!(r.sched_stats.gap_slots >= 9_000);
        let probes = r.probes.unwrap();
        let events = probes.events().unwrap();
        assert!(events
            .iter()
            .any(|rec| matches!(rec.event, ProbeEvent::GapSkip { len } if len >= 9_000)));
    }

    #[test]
    fn legacy_trace_identical_with_extra_sinks_attached() {
        // The record_trace path must be bit-identical whether or not other
        // probe sinks ride along on the bus.
        use crate::probe::{ProbeSpec, SinkSpec};
        let run = |probe: Option<ProbeSpec>| {
            let config = EngineConfig {
                probe,
                ..EngineConfig::default().with_trace()
            };
            let mut e = Engine::new(config, 77);
            e.add_job(JobSpec::new(0, 0, 8), Box::new(AtLocal(1)));
            e.add_job(JobSpec::new(1, 0, 8), Box::new(AtLocal(1)));
            e.add_job(JobSpec::new(2, 4, 12), Box::new(AtLocal(3)));
            e.run()
        };
        let plain = run(None);
        let probed = run(Some(
            ProbeSpec::new()
                .with(SinkSpec::Ring { capacity: 2 })
                .with(SinkSpec::Events),
        ));
        assert_eq!(plain.trace, probed.trace);
        assert_eq!(plain.counts, probed.counts);
        // And the ring holds the trace's tail.
        let (ring, _) = probed.probes.as_ref().unwrap().ring().unwrap();
        let trace = plain.trace.as_ref().unwrap();
        assert_eq!(ring, &trace[trace.len() - 2..]);
    }

    #[test]
    fn declared_contention_in_trace() {
        struct HalfProb;
        impl Protocol for HalfProb {
            fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
                Action::Transmit(Payload::Data(ctx.id))
            }
            fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
                Some(0.5)
            }
        }
        let mut e = Engine::new(EngineConfig::default().with_trace(), 1);
        e.add_job(JobSpec::new(0, 0, 2), Box::new(HalfProb));
        e.add_job(JobSpec::new(1, 0, 2), Box::new(HalfProb));
        let r = e.run();
        let trace = r.trace.as_ref().unwrap();
        assert!((trace[0].declared_contention - 1.0).abs() < 1e-12);
    }

    /// A small contended population exercising collisions and retirement,
    /// used by the reuse tests below.
    fn contended_setup(e: &mut Engine) {
        e.add_job(JobSpec::new(0, 0, 8), Box::new(AtLocal(2)));
        e.add_job(JobSpec::new(1, 1, 9), Box::new(AtLocal(1)));
        e.add_job(
            JobSpec::new(2, 0, 64),
            Box::new(Recorder {
                seen: Vec::new(),
                when: 5,
            }),
        );
    }

    #[test]
    fn reset_then_rerun_is_bit_identical() {
        let run_fresh = |seed: u64| {
            let mut e = Engine::fresh(EngineConfig::default().with_trace(), seed);
            contended_setup(&mut e);
            e.run()
        };
        let mut reused = Engine::fresh(EngineConfig::default().with_trace(), 7);
        contended_setup(&mut reused);
        let first = reused.run();
        for seed in [7u64, 99, 7] {
            reused.reset(seed);
            contended_setup(&mut reused);
            let again = reused.run();
            let fresh = run_fresh(seed);
            assert_eq!(again.outcomes(), fresh.outcomes(), "seed {seed}");
            assert_eq!(again.counts, fresh.counts, "seed {seed}");
            assert_eq!(again.accesses, fresh.accesses, "seed {seed}");
            assert_eq!(again.trace, fresh.trace, "seed {seed}");
        }
        // Same seed after unrelated runs in between: still identical.
        assert_eq!(first.outcomes(), run_fresh(7).outcomes());
    }

    #[test]
    #[should_panic(expected = "call Engine::reset between runs")]
    fn second_run_without_reset_panics() {
        let mut e = Engine::new(EngineConfig::default(), 1);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(2)));
        let _ = e.run();
        let _ = e.run();
    }

    #[test]
    fn arena_reuse_counter_climbs() {
        // Drop-then-new on one thread must hit the thread-local pool. The
        // counter is thread-local, so other tests can't interfere.
        let before = Engine::arena_reuses();
        for seed in 0..3 {
            let mut e = Engine::new(EngineConfig::default(), seed);
            e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(2)));
            let _ = e.run();
        }
        // The first construction may or may not find a carcass (other
        // tests on this thread); the second and third must.
        assert!(Engine::arena_reuses() >= before + 2);
    }

    #[test]
    fn cohort_mode_smoke() {
        /// Pure cohort-model protocol: Bernoulli(p) transmitter.
        struct Bern(f64);
        impl Protocol for Bern {
            fn act(&mut self, _ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
                if rand::Rng::gen_bool(rng, self.0) {
                    Action::Transmit(Payload::Data(0))
                } else {
                    Action::Sleep
                }
            }
            fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
                Some(CohortTx::Constant { p: self.0 })
            }
        }
        let n = 500u32;
        let mut e = Engine::new(EngineConfig::default().cohort(), 42);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, 4_000),
                Box::new(Bern(1.0 / f64::from(n))),
            );
        }
        let r = e.run();
        // Contention 1 ⇒ per-slot success ≈ 1/e; over 4000 slots most of
        // the 500 jobs deliver. The exact count is seed-dependent — the
        // point here is that the aggregate path runs, delivers plenty,
        // and attributes each success to a real member.
        assert!(r.successes() > 350, "successes={}", r.successes());
        assert_eq!(r.counts.data_success, r.successes() as u64);
        for (id, o) in r.outcomes().iter().enumerate() {
            if let JobOutcome::Success { slot } = o {
                assert!(*slot < 4_000, "job {id} success out of window");
            }
        }
    }

    #[test]
    fn vectorized_mode_is_bit_identical_to_exact_smoke() {
        // Full grid coverage (protocols × adversaries × scheduling) lives
        // in tests/kernel_differential.rs; this pins the basic contract
        // close to the engine: same outcomes, counts, accesses, and
        // slots_run for a Bernoulli population, per seed.
        struct Bern(f64);
        impl Protocol for Bern {
            fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
                if rand::Rng::gen_bool(rng, self.0) {
                    Action::Transmit(Payload::Data(ctx.id))
                } else {
                    Action::Sleep
                }
            }
            fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
                Some(CohortTx::Constant { p: self.0 })
            }
        }
        for seed in 0..5u64 {
            let run = |config: EngineConfig| {
                let mut e = Engine::new(config, seed);
                for i in 0..60u32 {
                    e.add_job(JobSpec::new(i, u64::from(i) % 7, 600), Box::new(Bern(0.02)));
                }
                e.run()
            };
            let exact = run(EngineConfig::default());
            let vector = run(EngineConfig::default().vectorized());
            assert_eq!(exact.outcomes(), vector.outcomes(), "seed {seed}");
            assert_eq!(exact.counts, vector.counts, "seed {seed}");
            assert_eq!(exact.accesses, vector.accesses, "seed {seed}");
            assert_eq!(exact.slots_run, vector.slots_run, "seed {seed}");
        }
    }

    #[test]
    fn cohort_mode_respects_exact_optouts() {
        // A protocol returning None from cohort_tx stays on the exact
        // path even under Fidelity::Cohort.
        let mut e = Engine::new(EngineConfig::default().cohort(), 3);
        e.add_job(JobSpec::new(0, 0, 4), Box::new(AtLocal(2)));
        let r = e.run();
        assert_eq!(r.outcome(0), JobOutcome::Success { slot: 2 });
    }

    /// A minimal aggregate-class protocol/driver pair: memoryless ALOHA run
    /// through the [`ClassDriver`] machinery instead of [`CohortTx::Constant`],
    /// with every protocol callback panicking — proving class-managed jobs
    /// get no per-job dispatch at all.
    struct MustAggregate(f64);
    impl Protocol for MustAggregate {
        fn on_activate(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) {
            panic!("class-managed job was activated on the exact path");
        }
        fn act(&mut self, _ctx: &JobCtx, _rng: &mut dyn RngCore) -> Action {
            panic!("class-managed job was polled");
        }
        fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
            Some(CohortTx::Class { tag: 0xA10A })
        }
        fn class_driver(&self, _ctx: &JobCtx, cctx: &ClassCtx) -> Option<Box<dyn ClassDriver>> {
            Some(Box::new(AlohaClass {
                members: Vec::new(),
                p: self.0,
                seed: cctx.class_seed,
                nominated: None,
            }))
        }
    }
    struct AlohaClass {
        members: Vec<JobId>,
        p: f64,
        seed: u64,
        nominated: Option<usize>,
    }
    impl ClassDriver for AlohaClass {
        fn admit(&mut self, member: JobId) {
            self.members.push(member);
        }
        fn live(&self) -> usize {
            self.members.len()
        }
        fn begin_slot(&mut self, slot: u64) -> crate::classes::ClassSlot {
            let mut rng = CounterRng::new(self.seed, slot, Phase::Act);
            let m = self.members.len() as u64;
            crate::classes::ClassSlot {
                count: sample_binomial(m, self.p, &mut rng),
                declared: m as f64 * self.p,
            }
        }
        fn materialize(&mut self, slot: u64) -> (JobId, Payload) {
            let mut rng = CounterRng::new(self.seed, slot, Phase::Activate);
            let pos = rand::Rng::gen_range(&mut rng, 0..self.members.len());
            self.nominated = Some(pos);
            (self.members[pos], Payload::Data(self.members[pos]))
        }
        fn end_slot(&mut self, _slot: u64, fb: &Feedback, _out: &mut Vec<ClassEvent>) {
            if let (Some(pos), Feedback::Success { src, payload }) = (self.nominated, fb) {
                if payload.data_owner() == Some(*src) && self.members[pos] == *src {
                    self.members.swap_remove(pos);
                }
            }
            self.nominated = None;
        }
    }

    #[test]
    fn class_driver_aggregate_delivers_and_accounts() {
        let n = 400u32;
        let deadline = 4_000u64;
        let mut e = Engine::new(EngineConfig::default().cohort().with_trace(), 77);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, deadline),
                Box::new(MustAggregate(1.0 / f64::from(n))),
            );
        }
        let r = e.run();
        // Contention ≈ 1 ⇒ per-slot success ≈ 1/e; most members deliver
        // well before the horizon. The engagement proof is implicit: every
        // MustAggregate callback panics.
        assert!(r.successes() > 250, "successes={}", r.successes());
        assert_eq!(r.counts.data_success, r.successes() as u64);
        // Lone class wins are credited to a real member inside the window,
        // and the materialized member's transmission is counted.
        for (id, o) in r.outcomes().iter().enumerate() {
            if let JobOutcome::Success { slot } = o {
                assert!(*slot < deadline, "job {id} success out of window");
                assert!(r.accesses_of(id as u32).transmissions >= 1);
            }
        }
        // The aggregate class contributes its m·p to declared contention:
        // near slot 0 all n members are live, so the first slot declares 1.
        let trace = r.trace.as_ref().expect("trace recorded");
        assert!((trace[0].declared_contention - 1.0).abs() < 1e-9);
        assert!(r.contention_stats.measured_slots == r.slots_run);
        let mean = r.contention_stats.mean().expect("measured");
        assert!(mean > 0.0 && mean <= 1.0, "mean declared {mean}");
    }

    #[test]
    fn class_profile_takes_exact_path_under_vectorized() {
        // Under Fidelity::Vectorized a Class-profile job must fall back to
        // exact per-job dispatch (the kernel's bit-identity contract does
        // not cover aggregates) — so a protocol whose callbacks panic
        // must panic, and a live one must behave exactly.
        struct ExactAloha(f64);
        impl Protocol for ExactAloha {
            fn act(&mut self, ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
                if rand::Rng::gen_bool(rng, self.0) {
                    Action::Transmit(Payload::Data(ctx.id))
                } else {
                    Action::Sleep
                }
            }
            fn cohort_tx(&self, _ctx: &JobCtx) -> Option<CohortTx> {
                Some(CohortTx::Class { tag: 7 })
            }
            // No class_driver: even cohort mode would fall back. The point
            // here is vectorized mode never even asks.
        }
        let run = |config: EngineConfig, seed: u64| {
            let mut e = Engine::new(config, seed);
            for i in 0..30u32 {
                e.add_job(JobSpec::new(i, 0, 800), Box::new(ExactAloha(0.03)));
            }
            e.run()
        };
        for seed in 0..3u64 {
            let exact = run(EngineConfig::default(), seed);
            let vector = run(EngineConfig::default().vectorized(), seed);
            assert_eq!(exact.outcomes(), vector.outcomes(), "seed {seed}");
            assert_eq!(exact.counts, vector.counts, "seed {seed}");
            assert_eq!(exact.accesses, vector.accesses, "seed {seed}");
        }
    }
}
