//! Message payloads carried on the channel.
//!
//! The paper distinguishes **data messages** — the unit-length message each
//! job must deliver within its window — from **control messages** that
//! protocols may additionally transmit "to facilitate coordination"
//! (Section 1.1). The channel does not interpret payloads; it only delivers
//! the content of a successful (collision-free, unjammed) transmission to
//! every listener.

use crate::job::JobId;
use serde::{Deserialize, Serialize};

/// A protocol-defined control message.
///
/// Control messages are modelled as a small fixed-size record — a `kind`
/// discriminant plus three 64-bit words — mirroring a real MAC-layer control
/// frame. Higher-level crates (e.g. `dcr-core`'s PUNCTUAL implementation)
/// define typed views that encode/decode into this wire format; keeping the
/// wire type `Copy` keeps the per-slot hot path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlMsg {
    /// Protocol-defined discriminant (e.g. "start", "leader beacon").
    pub kind: u16,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl ControlMsg {
    /// A control message with the given kind and all payload words zero.
    pub const fn of_kind(kind: u16) -> Self {
        Self {
            kind,
            a: 0,
            b: 0,
            c: 0,
        }
    }
}

/// The content of a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Payload {
    /// The data message of job `JobId`. Successfully delivering this inside
    /// the job's window is the goal of the whole exercise; the engine counts
    /// a job as succeeded the first time its `Data` payload is delivered.
    Data(JobId),
    /// A coordination message (estimation pings, leader beacons, ...).
    Control(ControlMsg),
}

impl Payload {
    /// True if this payload is a data message.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self, Payload::Data(_))
    }

    /// The job whose data message this is, if any.
    #[inline]
    pub fn data_owner(&self) -> Option<JobId> {
        match self {
            Payload::Data(id) => Some(*id),
            Payload::Control(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_classification() {
        assert!(Payload::Data(7).is_data());
        assert_eq!(Payload::Data(7).data_owner(), Some(7));
        let c = Payload::Control(ControlMsg::of_kind(3));
        assert!(!c.is_data());
        assert_eq!(c.data_owner(), None);
    }

    #[test]
    fn control_msg_is_small() {
        // The payload travels by value through the hot path; keep it lean.
        assert!(std::mem::size_of::<Payload>() <= 40);
    }
}
