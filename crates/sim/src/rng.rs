//! Deterministic seed derivation.
//!
//! Every random stream in a simulation — one per job, one for the jammer,
//! one per Monte-Carlo trial — is a ChaCha8 stream derived from a single
//! master seed via a splittable [`SeedSeq`]. Printing the master seed makes
//! any experiment exactly replayable, including across threads, because
//! derived seeds depend only on `(master, label, index)` and never on
//! scheduling order.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Labels for the independent random-stream domains of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamLabel {
    /// Per-job protocol randomness; index = job id.
    Job,
    /// The jamming adversary's coin flips.
    Jammer,
    /// Per-trial master seeds in a Monte-Carlo batch; index = trial number.
    Trial,
    /// Workload/instance generation.
    Workload,
    /// Anything else; caller supplies a unique discriminant via `index`.
    Misc,
}

impl StreamLabel {
    fn tag(self) -> u64 {
        match self {
            StreamLabel::Job => 0x4a4f42,      // "JOB"
            StreamLabel::Jammer => 0x4a414d,   // "JAM"
            StreamLabel::Trial => 0x545249,    // "TRI"
            StreamLabel::Workload => 0x574b4c, // "WKL"
            StreamLabel::Misc => 0x4d4953,     // "MIS"
        }
    }
}

/// A splittable deterministic seed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSeq {
    master: u64,
}

impl SeedSeq {
    /// Wrap a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The wrapped master seed (print this for replayability).
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit child seed for `(label, index)`.
    ///
    /// Uses SplitMix64-style finalization over the mixed inputs, which is
    /// cheap, stateless, and gives well-distributed, independent-looking
    /// child seeds for distinct inputs.
    pub fn derive(&self, label: StreamLabel, index: u64) -> u64 {
        let mut z = self
            .master
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(label.tag().wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(index.wrapping_mul(0x94d049bb133111eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A ChaCha8 RNG for `(label, index)`.
    pub fn rng(&self, label: StreamLabel, index: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.derive(label, index))
    }

    /// The `SeedSeq` governing one Monte-Carlo trial.
    pub fn trial(&self, trial: u64) -> SeedSeq {
        SeedSeq::new(self.derive(StreamLabel::Trial, trial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSeq::new(7).derive(StreamLabel::Job, 3);
        let b = SeedSeq::new(7).derive(StreamLabel::Job, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_labels_and_indices_differ() {
        let s = SeedSeq::new(7);
        let mut seen = std::collections::HashSet::new();
        for label in [
            StreamLabel::Job,
            StreamLabel::Jammer,
            StreamLabel::Trial,
            StreamLabel::Workload,
            StreamLabel::Misc,
        ] {
            for idx in 0..100 {
                assert!(
                    seen.insert(s.derive(label, idx)),
                    "collision at {label:?}/{idx}"
                );
            }
        }
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = SeedSeq::new(99).rng(StreamLabel::Job, 5);
        let mut r2 = SeedSeq::new(99).rng(StreamLabel::Job, 5);
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn trial_seeds_chain() {
        let root = SeedSeq::new(1);
        assert_ne!(root.trial(0).master(), root.trial(1).master());
        assert_eq!(root.trial(4).master(), root.trial(4).master());
    }
}
