//! Deterministic seed derivation.
//!
//! Every random stream in a simulation — one per job, one for the jammer,
//! one per Monte-Carlo trial — is a ChaCha8 stream derived from a single
//! master seed via a splittable [`SeedSeq`]. Printing the master seed makes
//! any experiment exactly replayable, including across threads, because
//! derived seeds depend only on `(master, label, index)` and never on
//! scheduling order.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Labels for the independent random-stream domains of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamLabel {
    /// Per-job protocol randomness; index = job id.
    Job,
    /// The jamming adversary's coin flips.
    Jammer,
    /// Per-trial master seeds in a Monte-Carlo batch; index = trial number.
    Trial,
    /// Workload/instance generation.
    Workload,
    /// Aggregate cohort draws under [`crate::engine::Fidelity::Cohort`].
    Cohort,
    /// Per-class counter-RNG keys for phase-synchronized aggregate classes
    /// ([`crate::classes::ClassDriver`]); index = the class grouping key.
    /// Class draws are made from [`crate::crng::CounterRng`] streams keyed
    /// on `(class_seed, slot, phase)`, so they are replayable and
    /// shard/partition-invariant by construction.
    Class,
    /// Anything else; caller supplies a unique discriminant via `index`.
    Misc,
}

impl StreamLabel {
    fn tag(self) -> u64 {
        match self {
            StreamLabel::Job => 0x4a4f42,      // "JOB"
            StreamLabel::Jammer => 0x4a414d,   // "JAM"
            StreamLabel::Trial => 0x545249,    // "TRI"
            StreamLabel::Workload => 0x574b4c, // "WKL"
            StreamLabel::Cohort => 0x434f48,   // "COH"
            StreamLabel::Class => 0x434c53,    // "CLS"
            StreamLabel::Misc => 0x4d4953,     // "MIS"
        }
    }
}

/// A splittable deterministic seed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSeq {
    master: u64,
}

impl SeedSeq {
    /// Wrap a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The wrapped master seed (print this for replayability).
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit child seed for `(label, index)`.
    ///
    /// Uses SplitMix64-style finalization over the mixed inputs, which is
    /// cheap, stateless, and gives well-distributed, independent-looking
    /// child seeds for distinct inputs.
    pub fn derive(&self, label: StreamLabel, index: u64) -> u64 {
        let mut z = self
            .master
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(label.tag().wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(index.wrapping_mul(0x94d049bb133111eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A ChaCha8 RNG for `(label, index)`.
    pub fn rng(&self, label: StreamLabel, index: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.derive(label, index))
    }

    /// The `SeedSeq` governing one Monte-Carlo trial.
    pub fn trial(&self, trial: u64) -> SeedSeq {
        SeedSeq::new(self.derive(StreamLabel::Trial, trial))
    }

    /// The per-trial counter-RNG key for job `id`.
    ///
    /// This is the `key` fed to [`crate::crng::CounterRng`] for every
    /// protocol-visible draw the job makes; together with a slot number
    /// and a [`crate::crng::Phase`] it pins down any single draw the
    /// engine ever made for that job (see DESIGN.md §3f).
    pub fn job_key(&self, id: u64) -> u64 {
        self.derive(StreamLabel::Job, id)
    }
}

/// Draw from `Binomial(n, p)` — the number of successes in `n` independent
/// Bernoulli(`p`) coins — without a distributions dependency.
///
/// Uses the geometric-gap method: successive failure-run lengths are sampled
/// as `floor(ln(U) / ln(1 - p))`, so the cost is `O(n·p + 1)` expected draws
/// rather than `n`. That is exactly the cohort engine's regime (`n` up to
/// 10⁵⁺ with `n·p` of order 1); for `p > 1/2` the complement
/// `n − Binomial(n, 1 − p)` keeps the cost bounded. The method is exact for
/// all `n` and `p` — no normal/Poisson approximation thresholds.
pub fn sample_binomial(n: u64, p: f64, rng: &mut impl rand::RngCore) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - sample_binomial(n, 1.0 - p, rng);
    }
    // U uniform on the half-open (0, 1]: zero is excluded so ln(U) is
    // finite, and U = 1 (gap 0, back-to-back successes) stays reachable.
    let mut unit_open = || (((rng.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64);
    let ln_q = (1.0 - p).ln(); // finite and < 0 for 0 < p <= 0.5
    let mut successes = 0u64;
    let mut pos = 0u64;
    loop {
        let gap = (unit_open().ln() / ln_q).floor();
        // A huge gap can exceed u64 range; saturate past n and stop.
        pos = pos.saturating_add(if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        });
        if pos >= n {
            return successes;
        }
        successes += 1;
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSeq::new(7).derive(StreamLabel::Job, 3);
        let b = SeedSeq::new(7).derive(StreamLabel::Job, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_labels_and_indices_differ() {
        let s = SeedSeq::new(7);
        let mut seen = std::collections::HashSet::new();
        for label in [
            StreamLabel::Job,
            StreamLabel::Jammer,
            StreamLabel::Trial,
            StreamLabel::Workload,
            StreamLabel::Cohort,
            StreamLabel::Class,
            StreamLabel::Misc,
        ] {
            for idx in 0..100 {
                assert!(
                    seen.insert(s.derive(label, idx)),
                    "collision at {label:?}/{idx}"
                );
            }
        }
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = SeedSeq::new(99).rng(StreamLabel::Job, 5);
        let mut r2 = SeedSeq::new(99).rng(StreamLabel::Job, 5);
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn trial_seeds_chain() {
        let root = SeedSeq::new(1);
        assert_ne!(root.trial(0).master(), root.trial(1).master());
        assert_eq!(root.trial(4).master(), root.trial(4).master());
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SeedSeq::new(3).rng(StreamLabel::Cohort, 0);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, -0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        assert_eq!(sample_binomial(100, 1.5, &mut rng), 100);
        for _ in 0..1_000 {
            assert!(sample_binomial(7, 0.3, &mut rng) <= 7);
        }
    }

    #[test]
    fn binomial_moments_match() {
        // Sample mean and variance within 5 sigma of n·p and n·p·q, on both
        // sides of the p = 1/2 complement switch and in the sparse regime
        // the cohort engine lives in (n·p ≈ 1 with huge n).
        let mut rng = SeedSeq::new(17).rng(StreamLabel::Cohort, 0);
        for (n, p) in [(40u64, 0.25f64), (40, 0.75), (100_000, 1e-5), (9, 0.5)] {
            let trials = 40_000u64;
            let (mut sum, mut sum_sq) = (0f64, 0f64);
            for _ in 0..trials {
                let x = sample_binomial(n, p, &mut rng) as f64;
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / trials as f64;
            let var = sum_sq / trials as f64 - mean * mean;
            let (m, v) = (n as f64 * p, n as f64 * p * (1.0 - p));
            let mean_tol = 5.0 * (v / trials as f64).sqrt();
            assert!(
                (mean - m).abs() < mean_tol,
                "mean {mean} vs {m} (n={n} p={p})"
            );
            // Variance-of-variance bound is loose; 15% is ample at 40k.
            assert!(
                (var - v).abs() < 0.15 * v.max(0.5),
                "var {var} vs {v} (n={n} p={p})"
            );
        }
    }
}
