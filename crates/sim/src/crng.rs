//! Counter-based randomness for the engine hot path.
//!
//! Every protocol-visible draw in the engine is produced by a
//! Philox-style counter generator keyed on `(job_key, slot, phase)`,
//! where `job_key` is derived from the trial seed and job id by
//! [`SeedSeq::job_key`](crate::rng::SeedSeq::job_key). A draw is a pure
//! function of its position — no stream state is stored per job — which
//! buys three properties the sequential-stream design could not offer:
//!
//! 1. **Batching.** The vectorized slot kernel
//!    ([`Fidelity::Vectorized`](crate::engine::Fidelity)) evaluates
//!    thousands of independent Bernoulli draws per slot without
//!    materializing per-job generators.
//! 2. **Partition invariance.** A trial split across worker shards is
//!    bit-identical to the single-threaded run regardless of how jobs
//!    are partitioned, because no draw depends on any other draw.
//! 3. **O(1) replay.** Any `(trial, job, slot)` decision can be
//!    recomputed after the fact — see [`replay_bernoulli`] and
//!    [`replay_oneshot`] — without re-running the trial.
//!
//! The block cipher is Philox2x64-10 (Salmon et al., SC'11 "Parallel
//! random numbers: as easy as 1, 2, 3"), hand-rolled here because the
//! vendored `rand` is deliberately minimal. Ten rounds is the
//! recommended-strength variant; the 128-bit counter gives each
//! `(slot, phase, block)` position its own independent block.

use rand::RngCore;

/// First Philox2x64 round multiplier (Random123 reference constants).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Weyl sequence increment applied to the key each round.
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
/// Round count of the recommended-strength Philox2x64-10 variant.
const PHILOX_ROUNDS: u32 = 10;

/// One Philox2x64-10 block: encrypt a 128-bit counter under a 64-bit
/// key, producing two statistically independent 64-bit outputs.
#[inline]
#[must_use]
pub fn philox2x64(mut ctr: [u64; 2], mut key: u64) -> [u64; 2] {
    for _ in 0..PHILOX_ROUNDS {
        let prod = u128::from(ctr[0]) * u128::from(PHILOX_M);
        let hi = (prod >> 64) as u64;
        let lo = prod as u64;
        ctr = [hi ^ key ^ ctr[1], lo];
        key = key.wrapping_add(PHILOX_W);
    }
    ctr
}

/// Which protocol callback a draw belongs to.
///
/// Each phase owns a disjoint region of the counter space, so a
/// callback's draws never alias another callback's draws in the same
/// slot no matter how many words either consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Phase {
    /// Draws made by `Protocol::on_activate` (slot = release slot).
    Activate = 0,
    /// Draws made by `Protocol::act`.
    Act = 1,
    /// Draws made by `Protocol::on_feedback`.
    Feedback = 2,
}

/// Bits reserved at the top of the counter's high word for the phase
/// tag, leaving 2^61 blocks (2^62 output words) per phase per slot.
const PHASE_SHIFT: u32 = 61;

/// A positioned view into the counter stream: an [`RngCore`] that
/// yields the draw sequence for one `(job, slot, phase)` position.
///
/// Construction is free (no rounds are run until the first draw) and
/// the generator carries no heap state, so the engine builds one on the
/// stack per protocol callback. Two `CounterRng`s at the same position
/// yield identical sequences; any difference in key, slot, or phase
/// yields independent sequences.
#[derive(Debug, Clone)]
pub struct CounterRng {
    key: u64,
    slot: u64,
    phase_base: u64,
    block: u64,
    spare: Option<u64>,
}

impl CounterRng {
    /// Position a generator at `(key, slot, phase)`.
    #[inline]
    #[must_use]
    pub fn new(key: u64, slot: u64, phase: Phase) -> Self {
        Self {
            key,
            slot,
            phase_base: (phase as u64) << PHASE_SHIFT,
            block: 0,
            spare: None,
        }
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        if let Some(word) = self.spare.take() {
            return word;
        }
        let out = philox2x64([self.slot, self.phase_base | self.block], self.key);
        self.block += 1;
        self.spare = Some(out[1]);
        out[0]
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// The first raw 64-bit word of the `(key, slot, phase)` position —
/// exactly what a fresh [`CounterRng`]'s first `next_u64` returns.
#[inline]
#[must_use]
pub fn draw(key: u64, slot: u64, phase: Phase) -> u64 {
    philox2x64([slot, (phase as u64) << PHASE_SHIFT], key)[0]
}

/// Replay a Bernoulli(`p`) transmission decision made in `act` at
/// `slot` by a job with per-trial key `key`.
///
/// Bit-identical to `CounterRng::new(key, slot, Phase::Act).gen_bool(p)`
/// — the formula below mirrors the vendored `Rng::gen_bool` exactly
/// (53-bit mantissa draw compared against `p`). This is the pure
/// function the vectorized kernel evaluates in bulk, and the O(1)
/// replay entry point for probe/debug tooling.
#[inline]
#[must_use]
pub fn replay_bernoulli(key: u64, slot: u64, p: f64) -> bool {
    let x = draw(key, slot, Phase::Act);
    unit_f64(x) < p
}

/// Replay the transmission slot chosen at activation by a one-shot
/// protocol (UNIFORM with k = 1) released at `release` with window
/// `window`: returns the absolute slot of its single transmission.
///
/// Bit-identical to the engine path, where `on_activate` draws
/// `gen_range(0..window)` from `CounterRng::new(key, release,
/// Phase::Activate)` (the vendored `gen_range` reduces `next_u64()`
/// modulo the span).
#[inline]
#[must_use]
pub fn replay_oneshot(key: u64, release: u64, window: u64) -> u64 {
    release + draw(key, release, Phase::Activate) % window
}

/// Map a raw word to the unit interval the way the vendored
/// `Rng::gen_bool` does: take the top 53 bits as an f64 in `[0, 1)`.
#[inline]
#[must_use]
pub fn unit_f64(x: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn philox_known_answer_is_stable() {
        // Pinned outputs: any change to rounds/constants breaks every
        // stored seed's realization, which DESIGN.md §3f forbids
        // within a release line. Values are self-generated but pinned.
        assert_eq!(
            philox2x64([0, 0], 0),
            [0xCA00_A045_9843_D731, 0x66C2_4222_C9A8_45B5],
            "philox2x64([0,0], 0) drifted"
        );
        assert_eq!(
            philox2x64([0xDEAD_BEEF, 42], 0x1234_5678_9ABC_DEF0),
            [0x0BBA_E58E_E72D_B185, 0xFB54_0C62_C60D_4DC1],
            "philox2x64 drifted on a nonzero position"
        );
    }

    #[test]
    fn same_position_same_sequence() {
        let mut a = CounterRng::new(7, 42, Phase::Act);
        let mut b = CounterRng::new(7, 42, Phase::Act);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn positions_are_independent() {
        let base: Vec<u64> = {
            let mut r = CounterRng::new(1, 1, Phase::Act);
            (0..4).map(|_| r.next_u64()).collect()
        };
        for (key, slot, phase) in [
            (2u64, 1u64, Phase::Act),
            (1, 2, Phase::Act),
            (1, 1, Phase::Activate),
            (1, 1, Phase::Feedback),
        ] {
            let mut r = CounterRng::new(key, slot, phase);
            let other: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
            assert_ne!(base, other, "({key}, {slot}, {phase:?}) collided");
        }
    }

    #[test]
    fn draw_matches_first_word() {
        let mut r = CounterRng::new(11, 13, Phase::Feedback);
        assert_eq!(r.next_u64(), draw(11, 13, Phase::Feedback));
    }

    #[test]
    fn replay_bernoulli_matches_gen_bool() {
        for key in 0..64u64 {
            for slot in [0u64, 1, 100, u64::MAX - 1] {
                for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
                    let mut r = CounterRng::new(key, slot, Phase::Act);
                    assert_eq!(r.gen_bool(p), replay_bernoulli(key, slot, p));
                }
            }
        }
    }

    #[test]
    fn replay_oneshot_matches_gen_range() {
        for key in 0..64u64 {
            for (release, window) in [(0u64, 1u64), (5, 7), (1000, 4096)] {
                let mut r = CounterRng::new(key, release, Phase::Activate);
                let offset = r.gen_range(0..window);
                assert_eq!(release + offset, replay_oneshot(key, release, window));
            }
        }
    }

    #[test]
    fn fill_bytes_is_le_prefix_of_words() {
        let mut a = CounterRng::new(3, 9, Phase::Act);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let mut b = CounterRng::new(3, 9, Phase::Act);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1[..4]);
    }

    #[test]
    fn bernoulli_rate_is_calibrated() {
        // 2^14 positions at p = 0.3: the hit rate must be within a few
        // standard deviations (sigma ~ 0.0036) of p.
        let n = 1u64 << 14;
        let hits = (0..n).filter(|&s| replay_bernoulli(99, s, 0.3)).count();
        #[allow(clippy::cast_precision_loss)]
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }
}
