//! Slot-level channel feedback.

use crate::job::JobId;
use crate::message::Payload;
use serde::{Deserialize, Serialize};

/// What a listener observes in one slot.
///
/// This is the paper's trinary feedback with collision detection: listeners
/// "can distinguish between silence and noise", and a successful broadcast
/// delivers its content. Jamming (Section 3) manifests as [`Feedback::Noise`]
/// even when only one player transmitted — listeners cannot tell a jammed
/// singleton apart from a genuine collision, which is exactly the adversary's
/// power in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feedback {
    /// Nobody transmitted (and the jammer left the slot alone).
    Silent,
    /// Exactly one transmission, not jammed: content is delivered.
    Success {
        /// The transmitting job.
        src: JobId,
        /// The delivered message.
        payload: Payload,
    },
    /// Two or more transmissions collided, or the slot was jammed.
    Noise,
}

impl Feedback {
    /// True if the slot carried a successful transmission.
    #[inline]
    pub fn is_success(&self) -> bool {
        matches!(self, Feedback::Success { .. })
    }

    /// True if the slot was silent.
    #[inline]
    pub fn is_silent(&self) -> bool {
        matches!(self, Feedback::Silent)
    }

    /// True if the slot was noisy (collision or jam).
    #[inline]
    pub fn is_noise(&self) -> bool {
        matches!(self, Feedback::Noise)
    }

    /// True if the slot was "busy" — a message or a collision. PUNCTUAL's
    /// round synchronization watches for two consecutive busy slots.
    #[inline]
    pub fn is_busy(&self) -> bool {
        !self.is_silent()
    }

    /// The delivered payload, if the slot was a success.
    #[inline]
    pub fn payload(&self) -> Option<&Payload> {
        match self {
            Feedback::Success { payload, .. } => Some(payload),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let s = Feedback::Silent;
        let n = Feedback::Noise;
        let ok = Feedback::Success {
            src: 1,
            payload: Payload::Data(1),
        };
        assert!(s.is_silent() && !s.is_busy() && !s.is_success());
        assert!(n.is_noise() && n.is_busy() && !n.is_success());
        assert!(ok.is_success() && ok.is_busy() && !ok.is_noise());
        assert_eq!(ok.payload(), Some(&Payload::Data(1)));
        assert_eq!(s.payload(), None);
    }
}
