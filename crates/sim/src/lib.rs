//! # dcr-sim — a slotted multiple-access channel simulator
//!
//! This crate implements the communication substrate assumed by
//! *Contention Resolution with Message Deadlines* (Agrawal, Bender, Fineman,
//! Gilbert, Young — SPAA 2020): a synchronized, slotted multiple-access
//! channel with **collision detection** and trinary feedback.
//!
//! ## Model
//!
//! Time is a sequence of synchronized **slots**. In each slot every live job
//! either transmits a message, listens, or sleeps. The channel resolves the
//! slot as follows:
//!
//! * **zero** transmissions → the slot is [`slot::Feedback::Silent`];
//! * **exactly one** transmission → the slot is a [`slot::Feedback::Success`] and
//!   every listener (including the transmitter) receives the message content;
//! * **two or more** transmissions → a collision: the slot is
//!   [`slot::Feedback::Noise`] and *all* transmissions in the slot fail.
//!
//! A pluggable [`jamming`] adversary may additionally convert a slot into
//! noise; following the paper (Section 3, "Jamming") the adversary may
//! inspect the slot — even message contents — before deciding, and a jamming
//! attempt succeeds with a constant probability `p_jam`.
//!
//! ## Jobs and windows
//!
//! A [`job::JobSpec`] is a unit-length message with a release slot `r` and a
//! deadline `d`; its **window** is the half-open slot interval `[r, d)` of
//! size `w = d - r`. The job may only interact with the channel during its
//! window. Jobs have no IDs visible to each other and no global clock: the
//! [`engine::JobCtx`] handed to a [`engine::Protocol`] exposes only the
//! job's *local* age and window size. (For the power-of-2-aligned special
//! case of Section 3 of the paper, the engine can be configured to expose an
//! aligned global clock — alignment is exactly the assumption that makes one
//! implicitly available.)
//!
//! ## Determinism
//!
//! Every source of randomness is a ChaCha stream derived from a single
//! master seed ([`rng::SeedSeq`]), so any run — including parallel
//! Monte-Carlo batches in [`runner`] — is exactly replayable.
//!
//! ## Quick example
//!
//! ```
//! use dcr_sim::prelude::*;
//!
//! /// A trivial protocol: transmit the data message in the first slot.
//! struct FirstSlot;
//! impl Protocol for FirstSlot {
//!     fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
//!         if ctx.local_time == 0 {
//!             Action::Transmit(Payload::Data(ctx.id))
//!         } else {
//!             Action::Listen
//!         }
//!     }
//! }
//!
//! let jobs = vec![JobSpec::new(0, 0, 4)];
//! let mut engine = Engine::new(EngineConfig::default(), 42);
//! engine.add_job(jobs[0], Box::new(FirstSlot));
//! let report = engine.run();
//! assert!(report.outcome(0).is_success());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classes;
pub mod crng;
pub mod engine;
pub mod gantt;
pub mod jamming;
pub mod job;
pub(crate) mod kernel;
pub mod message;
pub mod metrics;
pub mod probe;
pub mod rng;
pub mod runner;
pub mod sched;
pub mod slot;
pub mod trace;

// The serializable run-description types, re-exported at the crate root
// so service layers (the experiment server, the `--spec` CLI path) can
// name a full run as data without reaching into submodules.
pub use engine::{EngineConfig, Fidelity, Scheduling};
pub use jamming::AdversarySpec;
pub use probe::{ProbeSpec, SinkSpec};
pub use runner::{CancelToken, RunError};

/// Convenient glob-import of the simulator surface.
pub mod prelude {
    pub use crate::classes::{ClassCtx, ClassDriver, ClassEvent, ClassSlot};
    pub use crate::engine::{Action, Engine, EngineConfig, JobCtx, Protocol, Scheduling};
    pub use crate::jamming::{
        Adversary, AdversarySpec, BudgetedJammer, GilbertElliott, JamPolicy, Jammer,
        ReactiveJammer, SlotView,
    };
    pub use crate::job::{JobId, JobSpec};
    pub use crate::message::{ControlMsg, Payload};
    pub use crate::metrics::{
        ContentionStats, JamStats, JobOutcome, SchedStats, SimReport, SlotCounts,
    };
    pub use crate::probe::{
        EventBuf, ProbeEvent, ProbeOutput, ProbeRecord, ProbeReport, ProbeSink, ProbeSpec, SinkSpec,
    };
    pub use crate::rng::SeedSeq;
    pub use crate::runner::{run_trials, CancelToken, RunError, TrialOutcome};
    pub use crate::slot::Feedback;
    pub use crate::trace::{SlotOutcome, SlotRecord};
}
