//! Phase-synchronized aggregate classes — the million-job fidelity layer.
//!
//! [`crate::engine::CohortTx::Constant`] and [`crate::engine::CohortTx::OneShot`]
//! cover memoryless profiles: a cohort member never listens and never changes
//! its law in response to feedback, so the whole cohort is a single binomial
//! per slot. The paper's headline protocols (ALIGNED, PUNCTUAL) are *not*
//! memoryless — they advance through phases, elect leaders, and react to the
//! channel — but they are **phase-synchronized**: every member of a class
//! (same protocol parameters, same release, same deadline) occupies the same
//! protocol state in every slot, transmits with the same per-slot
//! probability, and updates that shared state from the same public feedback.
//! Members are exchangeable until the moment one of them is singled out.
//!
//! A [`ClassDriver`] exploits that: it simulates the *shared* state machine
//! once per class and replaces the per-member Bernoulli coins with one exact
//! `Binomial(m, p)` draw per slot ([`crate::rng::sample_binomial`]), so a
//! class of 10⁶ members costs the same per slot as a class of 10. Individual
//! members are **materialized** only at the boundaries where exchangeability
//! breaks:
//!
//! * a **lone win** — the channel needs a concrete `src` and payload;
//! * a **leader election** — the winner leaves the aggregate and becomes an
//!   ordinary exact-path job ([`ClassEvent::Eject`]);
//! * any other protocol-defined conversion that differentiates a member.
//!
//! ## Randomness and replayability
//!
//! Every class draws from [`crate::crng::CounterRng`] streams keyed on
//! `(class_seed, slot, phase)` where `class_seed` is derived from the trial
//! seed via [`crate::rng::StreamLabel::Class`] and the class's identity
//! `(tag, release, deadline)`. Construction of a counter RNG is free and the
//! stream depends only on the key and the slot number — never on scheduling
//! order or shard layout — so aggregate runs are exactly replayable and
//! shard/partition-invariant, matching the PR 6 contract for the vectorized
//! kernel.
//!
//! ## Fidelity contract
//!
//! Aggregate classes run under [`crate::engine::Fidelity::Cohort`] only and
//! promise **statistical** equivalence with the exact path (same success-law,
//! checked by Wilson-interval overlap in `tests/cohort_equivalence.rs`), not
//! bit identity: the class stream and the per-job streams are distinct RNG
//! domains. Under [`crate::engine::Fidelity::Vectorized`] class-profile jobs
//! take the exact per-job path so the kernel's bit-identity contract is
//! untouched.

use crate::engine::Protocol;
use crate::job::JobId;
use crate::message::Payload;
use crate::probe::ProbeEvent;
use crate::slot::Feedback;

/// Class-level context handed to [`crate::engine::Protocol::class_driver`]
/// when the engine opens a new aggregate class.
///
/// Unlike [`crate::engine::JobCtx`] this speaks *global* time: the driver is
/// an engine-side aggregate, not a station, so it may know the release slot
/// outright. (A real station in the class knows the same information
/// relative to its own clock — all members share release and deadline, which
/// is exactly what makes the aggregation sound.)
#[derive(Debug, Clone, Copy)]
pub struct ClassCtx {
    /// Shared release slot of every member.
    pub release: u64,
    /// Shared deadline slot of every member (window is `[release, deadline)`).
    pub deadline: u64,
    /// Shared window size `deadline - release`.
    pub window: u64,
    /// The class's counter-RNG key (derived via
    /// [`crate::rng::StreamLabel::Class`]); feed it to
    /// [`crate::crng::CounterRng::new`] together with a slot and phase.
    pub class_seed: u64,
    /// True when some probe sink consumes protocol events: the driver should
    /// arm its event buffer. Observability only — must not affect decisions.
    pub probed: bool,
}

/// One slot's aggregate declaration from a class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassSlot {
    /// Number of members transmitting this slot (an exact binomial draw, or
    /// a deterministic count on broadcast-style steps).
    pub count: u64,
    /// The class's contribution to the slot's declared contention — the sum
    /// of the members' transmission probabilities (`m·p` on a sampled step,
    /// `m` on a deterministic one, `0` on a listen step).
    pub declared: f64,
}

/// A state change a class reports to the engine after seeing feedback.
pub enum ClassEvent {
    /// `member` leaves the aggregate and continues as an ordinary exact-path
    /// job driven by `protocol` (e.g. an elected leader). The protocol is
    /// constructed pre-synchronized: the engine starts polling it next slot
    /// with the member's usual local clock.
    Eject {
        /// The member being materialized out of the aggregate.
        member: JobId,
        /// Replacement per-job protocol, already synchronized to the class's
        /// shared state.
        protocol: Box<dyn Protocol>,
    },
}

/// The shared state machine of one aggregate class.
///
/// The engine drives every live class each slot:
///
/// 1. [`begin_slot`](ClassDriver::begin_slot) returns the class's transmitter
///    count (and declared contention) for this slot;
/// 2. iff the class turns out to be the slot's **sole transmitter globally**
///    (its count is 1 and nothing else transmitted),
///    [`materialize`](ClassDriver::materialize) names the member and payload
///    that go on the channel;
/// 3. [`end_slot`](ClassDriver::end_slot) sees the slot's public feedback —
///    exactly what a listening member would see — settles shared state, and
///    reports ejections. A delivered data payload is credited by the engine
///    itself (the materialized member's id is the slot's `src`), so drivers
///    only drop the member from their live set.
///
/// Drivers must derive all randomness from `CounterRng(class_seed, slot,
/// phase)` streams so runs replay exactly. The same-slot contract as for
/// protocols applies to probe events: emit only from slots the class
/// actually attended.
pub trait ClassDriver {
    /// Add one member. Called once per member at its activation slot; all
    /// members share the class's `(release, deadline)` by construction.
    fn admit(&mut self, member: JobId);

    /// Members still live in the aggregate (admitted, not delivered, not
    /// ejected, not given up).
    fn live(&self) -> usize;

    /// Open `slot`: decide the aggregate transmitter count.
    fn begin_slot(&mut self, slot: u64) -> ClassSlot;

    /// Name the single transmitting member and its payload. Called only when
    /// this class is the slot's sole transmitter globally; the returned id
    /// becomes the slot's `src`, so data payloads are delivered to the
    /// returned member by the generic engine path.
    fn materialize(&mut self, slot: u64) -> (JobId, Payload);

    /// Close `slot` with its resolved feedback; push state changes that need
    /// engine cooperation into `out`.
    fn end_slot(&mut self, slot: u64, fb: &Feedback, out: &mut Vec<ClassEvent>);

    /// Move buffered probe events into `out` (no-op when unprobed).
    fn drain_events(&mut self, out: &mut Vec<ProbeEvent>) {
        let _ = out;
    }
}

/// The per-seed stream index of class `(tag, release, deadline)` under
/// [`crate::rng::StreamLabel::Class`].
pub fn class_stream_index(tag: u64, release: u64, deadline: u64) -> u64 {
    tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ release.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ deadline.wrapping_mul(0x94d0_49bb_1331_11eb)
}

/// One live aggregate class inside the engine.
pub(crate) struct ClassEntry {
    /// Protocol-chosen discriminant (commits to protocol kind + parameters).
    pub tag: u64,
    /// Shared release slot.
    pub release: u64,
    /// Shared deadline slot.
    pub deadline: u64,
    /// Cached `driver.live()` from the end of the previous slot.
    pub live: usize,
    /// This slot's transmitter count (reset every slot).
    pub count: u64,
    /// The shared state machine.
    pub driver: Box<dyn ClassDriver>,
}

/// The set of live aggregate classes (engine-internal).
#[derive(Default)]
pub(crate) struct ClassSet {
    pub entries: Vec<ClassEntry>,
    /// Total live members across all entries; the engine's liveness
    /// accounting (gap-skip gating, all-dead break, `live_jobs`).
    pub total: usize,
}

impl ClassSet {
    /// Drop all classes (trial-arena reset).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.total = 0;
    }

    /// Find the entry for `(tag, release, deadline)`, scanning newest-first
    /// (same-slot admissions cluster at the back).
    pub fn find_mut(&mut self, tag: u64, release: u64, deadline: u64) -> Option<&mut ClassEntry> {
        self.entries
            .iter_mut()
            .rev()
            .find(|e| e.tag == tag && e.release == release && e.deadline == deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_index_separates_classes() {
        let mut seen = std::collections::HashSet::new();
        for tag in [1u64, 2, 0xdead_beef] {
            for release in [0u64, 64, 4096] {
                for deadline in [128u64, 8192, 1 << 20] {
                    assert!(seen.insert(class_stream_index(tag, release, deadline)));
                }
            }
        }
    }
}
