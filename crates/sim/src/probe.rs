//! Streaming probe layer: typed protocol/engine events fanned out to
//! pluggable sinks.
//!
//! The legacy `record_trace: bool` flag captures every slot in an unbounded
//! `Vec<SlotRecord>` — memory-prohibitive for million-slot runs and blind to
//! protocol internals (size estimates, phase changes, leader election). The
//! probe layer generalizes it:
//!
//! * Protocols buffer typed [`ProbeEvent`]s in an [`EventBuf`] (armed only
//!   when a sink wants events, so the disabled path allocates nothing) and
//!   the engine drains them once per slot via
//!   [`crate::engine::Protocol::drain_events`].
//! * The engine fans slot records and events out to every configured
//!   [`ProbeSink`] through a [`ProbeBus`].
//! * Sinks trade fidelity for memory: [`VecSink`] is the legacy full trace,
//!   [`RingBufferSink`] keeps the last `capacity` records, [`AggregatingSink`]
//!   keeps only per-window-class histograms, [`ChromeTraceSink`] renders a
//!   Perfetto/chrome://tracing JSON timeline, [`SamplingSink`] keeps a
//!   deterministic 1-in-`period` slice, and [`EventLogSink`] keeps the raw
//!   event stream for claim-checking experiments.
//!
//! Sinks are configured declaratively with a serde-able [`ProbeSpec`] inside
//! [`crate::engine::EngineConfig`], and their outputs come back as
//! [`ProbeOutput`] values inside [`crate::metrics::SimReport::probes`].
//!
//! ## Determinism contract
//!
//! Protocols may emit events only from slots they attend (`act` or
//! `on_feedback` calls). Under the wake-hint contract
//! ([`crate::engine::Protocol::next_wake`]) the attended slots are identical
//! between event-driven and dense scheduling, so the per-job event streams
//! are identical too. Only the interleaving of *different* jobs within one
//! slot and the engine-emitted [`ProbeEvent::GapSkip`] /
//! [`ProbeEvent::WakeQueueStats`] events are scheduling-dependent;
//! [`ChromeTraceSink`] therefore excludes the engine events and canonicalizes
//! order, and [`AggregatingSink`] is order-insensitive, which makes both
//! byte-identical across scheduling modes (tested in
//! `tests/scheduling_equivalence.rs`).

use crate::trace::{SlotOutcome, SlotRecord};
use dcr_stats::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A typed observation from the engine or a protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProbeEvent {
    /// The job's protocol entered a named phase (protocol-defined labels,
    /// e.g. PUNCTUAL's `"slingshot"` or ALIGNED's `"broadcast"`).
    PhaseEnter {
        /// Protocol-defined phase label.
        phase: String,
    },
    /// ALIGNED published its size estimate `n_ℓ = τ·2^argmax` for a class.
    /// `n_true` is filled in by the engine (the only component with a global
    /// view): the number of jobs of that class live in the emission slot.
    SizeEstimate {
        /// The window class `ℓ` the estimate is for.
        class: u32,
        /// The protocol's estimate of the class size.
        n_est: u64,
        /// Ground truth supplied by the engine (0 as emitted by protocols).
        n_true: u64,
    },
    /// A PUNCTUAL job won the slingshot claim and became the leader.
    LeaderElected,
    /// A PUNCTUAL job gave up on coordination and converted to an anarchist.
    AnarchistConversion {
        /// The phase the job was in when it converted.
        from: String,
    },
    /// The pecking order preempted this job's class broadcast: a different
    /// class took over the channel before the class finished.
    Preemption {
        /// The class whose broadcast was preempted.
        class: u32,
        /// The class that took over.
        by_class: u32,
    },
    /// Engine event: an all-parked/idle stretch of `len` slots was skipped
    /// in O(1). Scheduling-dependent; excluded from cross-mode-deterministic
    /// sinks.
    GapSkip {
        /// Number of silent slots covered by the skip.
        len: u64,
    },
    /// Engine event: wake-queue occupancy at a gap skip. Scheduling-
    /// dependent; excluded from cross-mode-deterministic sinks.
    WakeQueueStats {
        /// Jobs parked on a wake hint when the gap was skipped.
        parked: u32,
    },
    /// A job left the simulation (delivered, done, or window closed).
    /// Emitted by the engine for every job, in job-id order, at end of run.
    JobRetired {
        /// True if the job's data message was delivered in its window.
        success: bool,
        /// Retirement slot minus release slot.
        latency: u64,
        /// The job's window size `w`.
        window: u64,
        /// Slots the job spent transmitting.
        transmissions: u64,
        /// Slots the job spent listening without transmitting.
        listens: u64,
    },
}

impl ProbeEvent {
    /// Stable short name of the event kind (used as Perfetto event names).
    pub fn name(&self) -> &'static str {
        match self {
            ProbeEvent::PhaseEnter { .. } => "PhaseEnter",
            ProbeEvent::SizeEstimate { .. } => "SizeEstimate",
            ProbeEvent::LeaderElected => "LeaderElected",
            ProbeEvent::AnarchistConversion { .. } => "AnarchistConversion",
            ProbeEvent::Preemption { .. } => "Preemption",
            ProbeEvent::GapSkip { .. } => "GapSkip",
            ProbeEvent::WakeQueueStats { .. } => "WakeQueueStats",
            ProbeEvent::JobRetired { .. } => "JobRetired",
        }
    }

    /// True for engine-emitted events whose timing depends on the scheduling
    /// mode (gap skips only happen when jobs park). Cross-mode-deterministic
    /// sinks must ignore these.
    pub fn is_scheduling_dependent(&self) -> bool {
        matches!(
            self,
            ProbeEvent::GapSkip { .. } | ProbeEvent::WakeQueueStats { .. }
        )
    }
}

/// One event, stamped with the slot it was drained in and the job (if any)
/// that emitted it. Engine events carry `job: None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Global slot index the event was observed in.
    pub slot: u64,
    /// Emitting job id, or `None` for engine events.
    pub job: Option<u32>,
    /// The event itself.
    pub event: ProbeEvent,
}

/// A consumer of the probe stream. One boxed sink per [`SinkSpec`]; the
/// engine only does the work a sink declares interest in (`wants_slots`
/// gates per-slot record construction, `wants_events` gates protocol
/// buffering and draining).
pub trait ProbeSink {
    /// True if this sink consumes per-slot [`SlotRecord`]s.
    fn wants_slots(&self) -> bool {
        false
    }

    /// True if this sink consumes [`ProbeRecord`] events.
    fn wants_events(&self) -> bool {
        true
    }

    /// Observe one slot record (only called when [`Self::wants_slots`]).
    fn on_slot(&mut self, _rec: &SlotRecord) {}

    /// Observe one event (only called when [`Self::wants_events`]).
    fn on_event(&mut self, _rec: &ProbeRecord) {}

    /// Consume the sink at end of run and produce its output.
    fn finish(self: Box<Self>) -> ProbeOutput;
}

/// The finished product of one sink, carried in
/// [`crate::metrics::SimReport::probes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProbeOutput {
    /// Full slot trace ([`VecSink`] — the legacy `record_trace` payload).
    Trace(Vec<SlotRecord>),
    /// Bounded tail of the slot trace ([`RingBufferSink`]).
    Ring {
        /// The last `capacity` slot records, oldest first.
        records: Vec<SlotRecord>,
        /// Records evicted to respect the bound.
        dropped: u64,
    },
    /// Per-window-class streaming aggregates ([`AggregatingSink`]).
    Aggregate(AggregateReport),
    /// Perfetto / chrome://tracing JSON ([`ChromeTraceSink`]).
    ChromeTrace(String),
    /// Deterministic 1-in-`period` sample ([`SamplingSink`]).
    Sample {
        /// Slot records whose covered range hits a multiple of the period.
        slots: Vec<SlotRecord>,
        /// All events (events are sparse; they are never sampled away).
        events: Vec<ProbeRecord>,
    },
    /// The raw event stream ([`EventLogSink`]).
    Events(Vec<ProbeRecord>),
}

/// Streaming per-window-class aggregates: latency and attempt histograms
/// built from [`ProbeEvent::JobRetired`] events with no per-slot storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateReport {
    /// One aggregate per window class present in the run, ascending class.
    pub classes: Vec<ClassAggregate>,
}

/// Aggregate statistics for one window class `ℓ` (windows in `[2^ℓ, 2^ℓ+1)`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassAggregate {
    /// The class `ℓ = ⌊log2 w⌋`.
    pub class: u32,
    /// Jobs of this class that ran.
    pub jobs: u64,
    /// Jobs that met their deadline.
    pub successes: u64,
    /// Delivery latency (slots since release) of successful jobs, over
    /// `[0, 2^(ℓ+1))`.
    pub latency: Histogram,
    /// Transmission attempts per job (all jobs), over `[0, 256)`.
    pub attempts: Histogram,
}

/// Declarative sink configuration (serde-able; lives in
/// [`crate::engine::EngineConfig::probe`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SinkSpec {
    /// [`RingBufferSink`] keeping the last `capacity` slot records.
    Ring {
        /// Maximum records retained.
        capacity: u64,
    },
    /// [`AggregatingSink`].
    Aggregate,
    /// [`ChromeTraceSink`].
    ChromeTrace,
    /// [`SamplingSink`] keeping slots at multiples of `period`.
    Sample {
        /// Sampling period in slots (≥ 1).
        period: u64,
    },
    /// [`EventLogSink`].
    Events,
}

impl SinkSpec {
    /// Instantiate the sink this spec describes.
    pub fn build(&self) -> Box<dyn ProbeSink> {
        match *self {
            SinkSpec::Ring { capacity } => Box::new(RingBufferSink::new(capacity as usize)),
            SinkSpec::Aggregate => Box::new(AggregatingSink::new()),
            SinkSpec::ChromeTrace => Box::new(ChromeTraceSink::new()),
            SinkSpec::Sample { period } => Box::new(SamplingSink::new(period)),
            SinkSpec::Events => Box::new(EventLogSink::default()),
        }
    }
}

/// The probe configuration of one run: which sinks to attach.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// Sinks to attach, in output order.
    pub sinks: Vec<SinkSpec>,
}

impl ProbeSpec {
    /// An empty spec (no sinks).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: append a sink.
    pub fn with(mut self, sink: SinkSpec) -> Self {
        self.sinks.push(sink);
        self
    }
}

/// Sink outputs of one run, in [`ProbeSpec::sinks`] order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeReport {
    /// One output per configured sink.
    pub outputs: Vec<ProbeOutput>,
}

impl ProbeReport {
    /// The first raw event stream, if an [`EventLogSink`] was configured.
    pub fn events(&self) -> Option<&[ProbeRecord]> {
        self.outputs.iter().find_map(|o| match o {
            ProbeOutput::Events(evs) => Some(evs.as_slice()),
            _ => None,
        })
    }

    /// The first Perfetto JSON string, if a [`ChromeTraceSink`] was
    /// configured.
    pub fn chrome_trace(&self) -> Option<&str> {
        self.outputs.iter().find_map(|o| match o {
            ProbeOutput::ChromeTrace(json) => Some(json.as_str()),
            _ => None,
        })
    }

    /// The first aggregate report, if an [`AggregatingSink`] was configured.
    pub fn aggregate(&self) -> Option<&AggregateReport> {
        self.outputs.iter().find_map(|o| match o {
            ProbeOutput::Aggregate(agg) => Some(agg),
            _ => None,
        })
    }

    /// The first ring buffer `(records, dropped)`, if a [`RingBufferSink`]
    /// was configured.
    pub fn ring(&self) -> Option<(&[SlotRecord], u64)> {
        self.outputs.iter().find_map(|o| match o {
            ProbeOutput::Ring { records, dropped } => Some((records.as_slice(), *dropped)),
            _ => None,
        })
    }
}

/// Fan-out from the engine to every configured sink. Interest flags are
/// cached so the disabled path costs two branch checks per slot.
#[derive(Default)]
pub struct ProbeBus {
    sinks: Vec<Box<dyn ProbeSink>>,
    wants_slots: bool,
    wants_events: bool,
}

impl ProbeBus {
    /// An empty bus (no sinks, nothing recorded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a sink.
    pub fn push(&mut self, sink: Box<dyn ProbeSink>) {
        self.wants_slots |= sink.wants_slots();
        self.wants_events |= sink.wants_events();
        self.sinks.push(sink);
    }

    /// True if no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// True if any sink consumes slot records.
    #[inline]
    pub fn wants_slots(&self) -> bool {
        self.wants_slots
    }

    /// True if any sink consumes events.
    #[inline]
    pub fn wants_events(&self) -> bool {
        self.wants_events
    }

    /// Fan a slot record out to interested sinks.
    pub fn on_slot(&mut self, rec: &SlotRecord) {
        for sink in &mut self.sinks {
            if sink.wants_slots() {
                sink.on_slot(rec);
            }
        }
    }

    /// Fan an event out to interested sinks.
    pub fn on_event(&mut self, rec: &ProbeRecord) {
        for sink in &mut self.sinks {
            if sink.wants_events() {
                sink.on_event(rec);
            }
        }
    }

    /// Finish every sink, returning outputs in attachment order.
    pub fn finish(self) -> Vec<ProbeOutput> {
        self.sinks.into_iter().map(|s| s.finish()).collect()
    }
}

/// A protocol-side event buffer. Disarmed (the default) it is a single
/// null pointer — one word per protocol instance, no heap — and pushes are
/// dropped; the engine arms it via `JobCtx::probed` at activation only
/// when some sink wants events.
#[derive(Debug, Clone, Default)]
pub struct EventBuf {
    // Box<Vec<_>> on purpose: disarmed protocols carry one null word, not
    // a 3-word empty Vec — this field sits in every protocol instance.
    #[allow(clippy::box_collection)]
    events: Option<Box<Vec<ProbeEvent>>>,
}

impl EventBuf {
    /// Arm the buffer: subsequent pushes are retained.
    pub fn arm(&mut self) {
        if self.events.is_none() {
            self.events = Some(Box::default());
        }
    }

    /// True once armed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Buffer an event (no-op while disarmed).
    #[inline]
    pub fn push(&mut self, event: ProbeEvent) {
        if let Some(events) = &mut self.events {
            events.push(event);
        }
    }

    /// Buffer a [`ProbeEvent::PhaseEnter`] with the given label.
    pub fn phase(&mut self, phase: &str) {
        if self.events.is_some() {
            self.push(ProbeEvent::PhaseEnter {
                phase: phase.to_string(),
            });
        }
    }

    /// Move all buffered events into `out` (preserving order).
    pub fn drain_into(&mut self, out: &mut Vec<ProbeEvent>) {
        if let Some(events) = &mut self.events {
            out.append(events);
        }
    }

    /// Absorb another buffer's pending events (used when a protocol retires
    /// an embedded sub-protocol mid-slot and must not lose its events).
    pub fn absorb(&mut self, other: &mut EventBuf) {
        let Some(theirs) = &mut other.events else {
            return;
        };
        if let Some(events) = &mut self.events {
            events.append(theirs);
        } else {
            theirs.clear();
        }
    }
}

/// The legacy full trace as a sink: retains every slot record. This is what
/// `EngineConfig::record_trace` attaches, so the legacy path is bit-identical
/// by construction.
#[derive(Debug, Default)]
pub struct VecSink {
    records: Vec<SlotRecord>,
}

impl VecSink {
    /// An empty trace sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProbeSink for VecSink {
    fn wants_slots(&self) -> bool {
        true
    }
    fn wants_events(&self) -> bool {
        false
    }
    fn on_slot(&mut self, rec: &SlotRecord) {
        self.records.push(*rec);
    }
    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Trace(self.records)
    }
}

/// Bounded-memory slot trace: keeps the last `capacity` records, counting
/// evictions. The replacement for the unbounded trace Vec on long runs.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    records: VecDeque<SlotRecord>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring retaining at most `capacity` records (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        Self {
            capacity,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }
}

impl ProbeSink for RingBufferSink {
    fn wants_slots(&self) -> bool {
        true
    }
    fn wants_events(&self) -> bool {
        false
    }
    fn on_slot(&mut self, rec: &SlotRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(*rec);
    }
    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Ring {
            records: self.records.into(),
            dropped: self.dropped,
        }
    }
}

/// Streaming per-window-class aggregates from [`ProbeEvent::JobRetired`]:
/// O(#classes) memory regardless of run length, and order-insensitive, so
/// its output is identical across scheduling modes.
#[derive(Debug, Default)]
pub struct AggregatingSink {
    classes: BTreeMap<u32, ClassAggregate>,
}

impl AggregatingSink {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProbeSink for AggregatingSink {
    fn on_event(&mut self, rec: &ProbeRecord) {
        let ProbeEvent::JobRetired {
            success,
            latency,
            window,
            transmissions,
            ..
        } = rec.event
        else {
            return;
        };
        let class = window.max(1).ilog2();
        let agg = self.classes.entry(class).or_insert_with(|| {
            let hi = (1u64 << (class + 1).min(62)) as f64;
            ClassAggregate {
                class,
                jobs: 0,
                successes: 0,
                latency: Histogram::new(0.0, hi, 32),
                attempts: Histogram::new(0.0, 256.0, 32),
            }
        });
        agg.jobs += 1;
        if success {
            agg.successes += 1;
            agg.latency.push(latency as f64);
        }
        agg.attempts.push(transmissions as f64);
    }
    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Aggregate(AggregateReport {
            classes: self.classes.into_values().collect(),
        })
    }
}

/// Renders a Perfetto / chrome://tracing "Trace Event Format" JSON string:
/// one track (tid) per job carrying its protocol-phase spans and instant
/// events, plus a channel track (tid 0) with non-silent slot outcomes.
///
/// Only scheduling-independent inputs are rendered (silent/gap records and
/// [`ProbeEvent::GapSkip`]/[`ProbeEvent::WakeQueueStats`] are dropped, and
/// mode-dependent `declared_contention`/`live_jobs` fields are not emitted),
/// and buffered events are canonically ordered in [`ProbeSink::finish`], so
/// the output is byte-identical across scheduling modes.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    channel: Vec<SlotRecord>,
    events: Vec<ProbeRecord>,
    last_slot: u64,
}

impl ChromeTraceSink {
    /// An empty Perfetto sink.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Minimal JSON string escaping for the label strings we render.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ChromeTraceSink {
    fn render(self) -> String {
        let mut events = self.events;
        // Canonical order: slot, then job. The stable sort preserves each
        // job's intra-slot emission order, which is scheduling-independent;
        // only the interleaving of different jobs within a slot is not.
        events.sort_by_key(|r| (r.slot, r.job));

        let mut jobs: BTreeSet<u32> = BTreeSet::new();
        for rec in &events {
            jobs.extend(rec.job);
        }
        for rec in &self.channel {
            if let SlotOutcome::Success { src, .. } = rec.outcome {
                jobs.insert(src);
            }
        }

        let mut rows: Vec<String> = Vec::new();
        rows.push(
            r#"{"name":"process_name","ph":"M","pid":0,"args":{"name":"dcr-sim"}}"#.to_string(),
        );
        rows.push(
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"channel"}}"#
                .to_string(),
        );
        for &job in &jobs {
            rows.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"job {}"}}}}"#,
                job + 1,
                job
            ));
        }

        // Channel track: one instant per non-silent slot.
        for rec in &self.channel {
            let (name, args) = match rec.outcome {
                SlotOutcome::Success { src, was_data } => (
                    if was_data { "data-success" } else { "success" },
                    format!(r#"{{"src":{src}}}"#),
                ),
                SlotOutcome::Collision { n_tx } => ("collision", format!(r#"{{"n_tx":{n_tx}}}"#)),
                SlotOutcome::Jammed { n_tx } => ("jammed", format!(r#"{{"n_tx":{n_tx}}}"#)),
                SlotOutcome::Silent | SlotOutcome::SilentGap { .. } => continue,
            };
            rows.push(format!(
                r#"{{"name":"{name}","ph":"i","ts":{},"pid":0,"tid":0,"s":"t","args":{args}}}"#,
                rec.slot
            ));
        }

        // Job tracks: phase spans from PhaseEnter boundaries, instants for
        // everything else. A phase closes at the next PhaseEnter of the same
        // job, or at its JobRetired slot.
        let mut open: BTreeMap<u32, (String, u64)> = BTreeMap::new();
        for rec in &events {
            let Some(job) = rec.job else { continue };
            let tid = job + 1;
            let ts = rec.slot;
            match &rec.event {
                ProbeEvent::PhaseEnter { phase } => {
                    if let Some((prev, start)) = open.insert(job, (phase.clone(), ts)) {
                        rows.push(format!(
                            r#"{{"name":"{}","ph":"X","ts":{start},"dur":{},"pid":0,"tid":{tid}}}"#,
                            json_escape(&prev),
                            ts - start
                        ));
                    }
                }
                ProbeEvent::SizeEstimate {
                    class,
                    n_est,
                    n_true,
                } => rows.push(format!(
                    r#"{{"name":"SizeEstimate","ph":"i","ts":{ts},"pid":0,"tid":{tid},"s":"t","args":{{"class":{class},"n_est":{n_est},"n_true":{n_true}}}}}"#
                )),
                ProbeEvent::LeaderElected => rows.push(format!(
                    r#"{{"name":"LeaderElected","ph":"i","ts":{ts},"pid":0,"tid":{tid},"s":"t"}}"#
                )),
                ProbeEvent::AnarchistConversion { from } => rows.push(format!(
                    r#"{{"name":"AnarchistConversion","ph":"i","ts":{ts},"pid":0,"tid":{tid},"s":"t","args":{{"from":"{}"}}}}"#,
                    json_escape(from)
                )),
                ProbeEvent::Preemption { class, by_class } => rows.push(format!(
                    r#"{{"name":"Preemption","ph":"i","ts":{ts},"pid":0,"tid":{tid},"s":"t","args":{{"class":{class},"by_class":{by_class}}}}}"#
                )),
                ProbeEvent::JobRetired {
                    success, latency, ..
                } => {
                    if let Some((prev, start)) = open.remove(&job) {
                        rows.push(format!(
                            r#"{{"name":"{}","ph":"X","ts":{start},"dur":{},"pid":0,"tid":{tid}}}"#,
                            json_escape(&prev),
                            ts - start
                        ));
                    }
                    rows.push(format!(
                        r#"{{"name":"JobRetired","ph":"i","ts":{ts},"pid":0,"tid":{tid},"s":"t","args":{{"success":{success},"latency":{latency}}}}}"#
                    ));
                }
                ProbeEvent::GapSkip { .. } | ProbeEvent::WakeQueueStats { .. } => {}
            }
        }
        // Close any phase still open (job never retired: horizon hit).
        let end = self.last_slot;
        for (job, (prev, start)) in open {
            rows.push(format!(
                r#"{{"name":"{}","ph":"X","ts":{start},"dur":{},"pid":0,"tid":{}}}"#,
                json_escape(&prev),
                end.saturating_sub(start),
                job + 1
            ));
        }

        format!("{{\"traceEvents\":[\n{}\n]}}\n", rows.join(",\n"))
    }
}

impl ProbeSink for ChromeTraceSink {
    fn wants_slots(&self) -> bool {
        true
    }
    fn on_slot(&mut self, rec: &SlotRecord) {
        self.last_slot = self.last_slot.max(rec.slot + rec.covered_slots());
        if !rec.is_silent() {
            self.channel.push(*rec);
        }
    }
    fn on_event(&mut self, rec: &ProbeRecord) {
        self.last_slot = self.last_slot.max(rec.slot);
        if !rec.event.is_scheduling_dependent() {
            self.events.push(rec.clone());
        }
    }
    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::ChromeTrace(self.render())
    }
}

/// Deterministic decimation: keeps slot records whose covered slot range
/// `[slot, slot + covered)` contains a multiple of `period`, and every
/// event (events are sparse already). Purely a function of slot indices,
/// never of randomness, so samples are replayable.
#[derive(Debug)]
pub struct SamplingSink {
    period: u64,
    slots: Vec<SlotRecord>,
    events: Vec<ProbeRecord>,
}

impl SamplingSink {
    /// Sample every `period`-th slot (`period ≥ 1`).
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1");
        Self {
            period,
            slots: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl ProbeSink for SamplingSink {
    fn wants_slots(&self) -> bool {
        true
    }
    fn on_slot(&mut self, rec: &SlotRecord) {
        let start = rec.slot;
        let end = rec.slot + rec.covered_slots();
        // First multiple of `period` at or after `start`.
        let next = start.div_ceil(self.period) * self.period;
        if next < end {
            self.slots.push(*rec);
        }
    }
    fn on_event(&mut self, rec: &ProbeRecord) {
        self.events.push(rec.clone());
    }
    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Sample {
            slots: self.slots,
            events: self.events,
        }
    }
}

/// Retains the raw event stream — what claim-checking experiments consume.
#[derive(Debug, Default)]
pub struct EventLogSink {
    events: Vec<ProbeRecord>,
}

impl ProbeSink for EventLogSink {
    fn on_event(&mut self, rec: &ProbeRecord) {
        self.events.push(rec.clone());
    }
    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Events(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_rec(slot: u64, outcome: SlotOutcome) -> SlotRecord {
        SlotRecord {
            slot,
            outcome,
            live_jobs: 1,
            declared_contention: 0.0,
            payload: None,
        }
    }

    #[test]
    fn ring_sink_bounds_memory() {
        let mut sink = Box::new(RingBufferSink::new(3));
        for slot in 0..10 {
            sink.on_slot(&slot_rec(slot, SlotOutcome::Silent));
        }
        let ProbeOutput::Ring { records, dropped } = ProbeSink::finish(sink) else {
            panic!("ring sink must produce Ring output");
        };
        assert_eq!(dropped, 7);
        assert_eq!(
            records.iter().map(|r| r.slot).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn vec_sink_is_the_identity() {
        let mut sink = Box::new(VecSink::new());
        let recs: Vec<SlotRecord> = (0..4)
            .map(|s| {
                slot_rec(
                    s,
                    SlotOutcome::Success {
                        src: 0,
                        was_data: true,
                    },
                )
            })
            .collect();
        for r in &recs {
            sink.on_slot(r);
        }
        let ProbeOutput::Trace(out) = ProbeSink::finish(sink) else {
            panic!("vec sink must produce Trace output");
        };
        assert_eq!(out, recs);
    }

    #[test]
    fn aggregating_sink_buckets_by_class() {
        let mut sink = Box::new(AggregatingSink::new());
        for (job, window, success) in [(0u32, 64u64, true), (1, 64, false), (2, 1024, true)] {
            sink.on_event(&ProbeRecord {
                slot: 10,
                job: Some(job),
                event: ProbeEvent::JobRetired {
                    success,
                    latency: 5,
                    window,
                    transmissions: 3,
                    listens: 2,
                },
            });
        }
        let ProbeOutput::Aggregate(agg) = ProbeSink::finish(sink) else {
            panic!("aggregating sink must produce Aggregate output");
        };
        assert_eq!(agg.classes.len(), 2);
        assert_eq!(agg.classes[0].class, 6);
        assert_eq!(agg.classes[0].jobs, 2);
        assert_eq!(agg.classes[0].successes, 1);
        assert_eq!(agg.classes[0].latency.total(), 1);
        assert_eq!(agg.classes[0].attempts.total(), 2);
        assert_eq!(agg.classes[1].class, 10);
    }

    #[test]
    fn aggregating_sink_is_order_insensitive() {
        let recs: Vec<ProbeRecord> = (0..6)
            .map(|i| ProbeRecord {
                slot: 100 + i,
                job: Some(i as u32),
                event: ProbeEvent::JobRetired {
                    success: i % 2 == 0,
                    latency: i * 3,
                    window: 64,
                    transmissions: i,
                    listens: 0,
                },
            })
            .collect();
        let run = |order: Vec<usize>| {
            let mut sink = Box::new(AggregatingSink::new());
            for &i in &order {
                sink.on_event(&recs[i]);
            }
            serde_json::to_string(&ProbeSink::finish(sink)).unwrap()
        };
        assert_eq!(run(vec![0, 1, 2, 3, 4, 5]), run(vec![5, 3, 1, 4, 2, 0]));
    }

    #[test]
    fn chrome_trace_renders_valid_shape() {
        let mut sink = Box::new(ChromeTraceSink::new());
        sink.on_slot(&slot_rec(
            3,
            SlotOutcome::Success {
                src: 0,
                was_data: true,
            },
        ));
        sink.on_slot(&slot_rec(4, SlotOutcome::SilentGap { len: 10 }));
        sink.on_event(&ProbeRecord {
            slot: 0,
            job: Some(0),
            event: ProbeEvent::PhaseEnter {
                phase: "estimation".into(),
            },
        });
        sink.on_event(&ProbeRecord {
            slot: 2,
            job: Some(0),
            event: ProbeEvent::SizeEstimate {
                class: 6,
                n_est: 16,
                n_true: 8,
            },
        });
        sink.on_event(&ProbeRecord {
            slot: 5,
            job: Some(0),
            event: ProbeEvent::JobRetired {
                success: true,
                latency: 5,
                window: 64,
                transmissions: 1,
                listens: 4,
            },
        });
        let ProbeOutput::ChromeTrace(json) = ProbeSink::finish(sink) else {
            panic!("chrome sink must produce ChromeTrace output");
        };
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let Some(serde_json::Value::Array(rows)) = parsed.get("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        assert!(rows.len() >= 5);
        assert!(json.contains(r#""name":"SizeEstimate""#));
        assert!(json.contains(r#""name":"estimation","ph":"X","ts":0,"dur":5"#));
        // Silent gaps never render on the channel track.
        assert!(!json.contains(r#""ts":4,"pid":0,"tid":0"#));
    }

    #[test]
    fn chrome_trace_order_is_canonical() {
        let ev = |slot, job| ProbeRecord {
            slot,
            job: Some(job),
            event: ProbeEvent::PhaseEnter {
                phase: format!("p{job}"),
            },
        };
        let run = |order: Vec<ProbeRecord>| {
            let mut sink = Box::new(ChromeTraceSink::new());
            for r in &order {
                sink.on_event(r);
            }
            let ProbeOutput::ChromeTrace(json) = ProbeSink::finish(sink) else {
                unreachable!()
            };
            json
        };
        // Same events, different intra-slot interleaving of distinct jobs.
        let a = run(vec![ev(0, 0), ev(0, 1), ev(3, 0)]);
        let b = run(vec![ev(0, 1), ev(0, 0), ev(3, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_sink_keeps_period_multiples() {
        let mut sink = Box::new(SamplingSink::new(8));
        for slot in 0..20 {
            sink.on_slot(&slot_rec(slot, SlotOutcome::Silent));
        }
        // A gap record covering a sampled slot is kept.
        sink.on_slot(&slot_rec(20, SlotOutcome::SilentGap { len: 5 }));
        let ProbeOutput::Sample { slots, .. } = ProbeSink::finish(sink) else {
            panic!("sampling sink must produce Sample output");
        };
        let kept: Vec<u64> = slots.iter().map(|r| r.slot).collect();
        assert_eq!(kept, vec![0, 8, 16, 20]); // 20 covers slot 24
    }

    #[test]
    fn event_buf_disarmed_drops_and_stays_empty() {
        let mut buf = EventBuf::default();
        buf.push(ProbeEvent::LeaderElected);
        buf.phase("x");
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert!(out.is_empty());
        buf.arm();
        buf.push(ProbeEvent::LeaderElected);
        buf.drain_into(&mut out);
        assert_eq!(out, vec![ProbeEvent::LeaderElected]);
    }

    #[test]
    fn bus_caches_interest_flags() {
        let mut bus = ProbeBus::new();
        assert!(!bus.wants_slots() && !bus.wants_events());
        bus.push(Box::new(EventLogSink::default()));
        assert!(!bus.wants_slots() && bus.wants_events());
        bus.push(Box::new(RingBufferSink::new(4)));
        assert!(bus.wants_slots() && bus.wants_events());
        assert_eq!(bus.finish().len(), 2);
    }

    #[test]
    fn spec_builds_matching_sinks() {
        let spec = ProbeSpec::new()
            .with(SinkSpec::Ring { capacity: 16 })
            .with(SinkSpec::Aggregate)
            .with(SinkSpec::ChromeTrace)
            .with(SinkSpec::Sample { period: 4 })
            .with(SinkSpec::Events);
        let mut bus = ProbeBus::new();
        for s in &spec.sinks {
            bus.push(s.build());
        }
        let outputs = bus.finish();
        assert!(matches!(outputs[0], ProbeOutput::Ring { .. }));
        assert!(matches!(outputs[1], ProbeOutput::Aggregate(_)));
        assert!(matches!(outputs[2], ProbeOutput::ChromeTrace(_)));
        assert!(matches!(outputs[3], ProbeOutput::Sample { .. }));
        assert!(matches!(outputs[4], ProbeOutput::Events(_)));
    }
}
