//! Jamming adversaries (Section 3, "Jamming") — stateless and adaptive.
//!
//! The paper's adversary "can look at slots and decide to create noise in
//! that slot, e.g., if a message is broadcast. (Here the adversary can even
//! look at the contents of the message itself.) If the adversary decides to
//! jam, the jamming succeeds with some constant probability `p_jam`."
//!
//! [`Jammer`] implements that interface: each slot, the adversary sees the
//! tentative channel resolution (including message content on a would-be
//! success) and decides whether to *attempt* a jam; an attempt succeeds with
//! probability `p_jam`. A successful jam turns the slot into noise.
//!
//! The *decision* side is open: anything implementing [`Adversary`] can
//! drive a [`Jammer`]. The five original fixed policies live on as the
//! (stateless) [`JamPolicy`] enum, which implements the trait; on top of
//! them this module provides the **stateful** adversaries the robustness
//! literature actually worries about:
//!
//! * [`BudgetedJammer`] — at most `B` jam attempts per run, spent greedily
//!   on every success or held back for data messages only;
//! * [`ReactiveJammer`] — watches the channel's phase structure (busy
//!   stretches separated by silence) and jams the first `k` successes of
//!   each stretch, mimicking the paper's "skew the estimate `n_ℓ` by
//!   jamming only some of the phases during the estimation protocol";
//! * [`GilbertElliott`] — a two-state Markov (good/bad) bursty channel
//!   fault model that strikes *every* slot while bad, idle ones included.
//!
//! ## RNG-stream discipline
//!
//! One ChaCha stream (label [`crate::rng::StreamLabel::Jammer`]) feeds the
//! whole adversary layer. [`Adversary::attempts`] may draw from it only
//! when the implementation declares those draws via
//! [`Adversary::strikes_idle`] (for draws on silent slots) — the engine
//! uses that declaration to decide when fast-forwarding over silent
//! stretches is safe. After every attempt the [`Jammer`] wrapper draws the
//! `p_jam` success coin from the same stream. Event-driven and dense
//! scheduling therefore consume identical adversary randomness, which is
//! what keeps `tests/scheduling_equivalence.rs` bit-exact.

use crate::job::JobId;
use crate::message::Payload;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What the adversary sees before deciding to jam a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotView {
    /// Nobody is transmitting.
    Silent,
    /// Exactly one transmission; the adversary may read it.
    Single {
        /// Transmitting job.
        src: JobId,
        /// The message being sent.
        payload: Payload,
    },
    /// Already a collision (jamming is redundant but allowed).
    Collision {
        /// Number of simultaneous transmissions.
        n_tx: usize,
    },
}

/// The decision side of a jamming adversary: when to *attempt* a jam.
///
/// Implementations may keep arbitrary state and react to everything they
/// observe through [`attempts`] — the paper's adversary sees the tentative
/// slot resolution, message contents included. The contract with the
/// engine:
///
/// * **RNG discipline.** [`attempts`] may draw from the shared jammer
///   stream freely on slots with a transmission. On a [`SlotView::Silent`]
///   slot it may draw (or attempt) **only if** [`strikes_idle`] returns
///   `true`; declaring `false` while drawing on silence desynchronizes
///   event-driven and dense scheduling.
/// * **Silent-gap replay.** When [`strikes_idle`] is `false` the engine
///   may skip stretches of provably silent slots in O(1) and report them
///   via [`on_silent_gap`]. The implementation must leave itself in
///   exactly the state that `gap` consecutive `attempts(Silent, ..)` calls
///   (all returning `false`) would have produced.
/// * **Idle striking.** When [`strikes_idle`] is `true` the engine runs
///   every slot with live jobs one by one, so the adversary sees each
///   silent slot individually; [`on_silent_gap`] is then only invoked for
///   stretches with *no* live job, which both scheduling modes skip
///   identically.
///
/// [`attempts`]: Adversary::attempts
/// [`strikes_idle`]: Adversary::strikes_idle
/// [`on_silent_gap`]: Adversary::on_silent_gap
pub trait Adversary: std::fmt::Debug + Send + Sync {
    /// Decide whether to attempt a jam in a slot that would resolve as
    /// `view`. Called once per simulated slot (in slot order) with the
    /// adversary's private randomness.
    fn attempts(&mut self, view: SlotView, rng: &mut ChaCha8Rng) -> bool;

    /// True when this adversary can attempt a jam (and therefore draws
    /// randomness) on a slot with no transmission. Such adversaries make
    /// even silent stretches observable, so the engine must not
    /// fast-forward across them while parked jobs are still live.
    fn strikes_idle(&self) -> bool {
        false
    }

    /// Bulk notification that the engine skipped `gap` consecutive silent
    /// slots (only ever called when [`Adversary::strikes_idle`] permits the
    /// skip, or when no job was live). Must be equivalent to `gap`
    /// rejected `attempts(SlotView::Silent, ..)` calls.
    fn on_silent_gap(&mut self, _gap: u64) {}

    /// Clone into a boxed trait object (drives `Jammer: Clone`).
    fn clone_box(&self) -> Box<dyn Adversary>;
}

/// The stateless fixed policies (the original adversary menu). Each is a
/// pure function of the current slot view, so they double as the
/// serializable "policy" vocabulary of experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JamPolicy {
    /// Never jam (the clean channel of Sections 2 and 4).
    Never,
    /// Attempt to jam every slot that would otherwise be a success.
    AllSuccesses,
    /// Attempt to jam only successful **control** messages — the paper's
    /// example of an adversary trying to "skew the estimate `n_ℓ` by jamming
    /// only some of the phases during the estimation protocol".
    ControlOnly,
    /// Attempt to jam only successful **data** messages (attacks delivery
    /// directly, leaving coordination intact).
    DataOnly,
    /// Attempt to jam every slot (even silence) with probability `attempt`.
    Random {
        /// Probability of deciding to attempt a jam in a slot.
        attempt: f64,
    },
}

impl Adversary for JamPolicy {
    fn attempts(&mut self, view: SlotView, rng: &mut ChaCha8Rng) -> bool {
        match (*self, view) {
            (JamPolicy::Never, _) => false,
            (JamPolicy::AllSuccesses, SlotView::Single { .. }) => true,
            (JamPolicy::AllSuccesses, _) => false,
            (JamPolicy::ControlOnly, SlotView::Single { payload, .. }) => !payload.is_data(),
            (JamPolicy::ControlOnly, _) => false,
            (JamPolicy::DataOnly, SlotView::Single { payload, .. }) => payload.is_data(),
            (JamPolicy::DataOnly, _) => false,
            (JamPolicy::Random { attempt }, _) => rng.gen_bool(attempt),
        }
    }

    fn strikes_idle(&self) -> bool {
        matches!(self, JamPolicy::Random { .. })
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
}

/// A jammer with a finite ammunition budget: at most `budget` jam
/// *attempts* per run (attempts are spent whether or not the `p_jam` coin
/// lands). `data_only` switches from greedy spending (any would-be
/// success) to the adaptive variant that saves every shot for data
/// messages — coordination traffic passes untouched while delivery is
/// attacked with the full budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetedJammer {
    budget: u64,
    spent: u64,
    data_only: bool,
}

impl BudgetedJammer {
    /// An adversary with `budget` jam attempts; greedy when `data_only` is
    /// false, data-targeted when true.
    pub fn new(budget: u64, data_only: bool) -> Self {
        Self {
            budget,
            spent: 0,
            data_only,
        }
    }

    /// Attempts spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The configured attempt budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

impl Adversary for BudgetedJammer {
    fn attempts(&mut self, view: SlotView, _rng: &mut ChaCha8Rng) -> bool {
        if self.spent >= self.budget {
            return false;
        }
        let target = match view {
            SlotView::Single { payload, .. } => !self.data_only || payload.is_data(),
            _ => false,
        };
        if target {
            self.spent += 1;
        }
        target
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
}

/// A reactive jammer that targets the phase structure it observes. The
/// channel's activity alternates between busy stretches (estimation
/// windows, broadcast phases) and silence; this adversary treats any run
/// of `reset_gap` consecutive silent slots as a phase boundary and jams
/// the first `k` would-be successes of each new stretch — the paper's
/// "skew the estimate `n_ℓ`" attack, aimed at the early pings that anchor
/// each estimation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactiveJammer {
    k: u64,
    reset_gap: u64,
    jammed_this_phase: u64,
    silent_run: u64,
}

impl ReactiveJammer {
    /// Jam the first `k` successes of each busy stretch; a run of
    /// `reset_gap` silent slots starts a new stretch. `reset_gap` must be
    /// at least 1 (a zero gap would re-arm every slot).
    pub fn new(k: u64, reset_gap: u64) -> Self {
        assert!(reset_gap >= 1, "reset_gap must be >= 1");
        Self {
            k,
            reset_gap,
            jammed_this_phase: 0,
            silent_run: 0,
        }
    }
}

impl Adversary for ReactiveJammer {
    fn attempts(&mut self, view: SlotView, _rng: &mut ChaCha8Rng) -> bool {
        match view {
            SlotView::Silent => {
                self.silent_run = self.silent_run.saturating_add(1);
                if self.silent_run >= self.reset_gap {
                    self.jammed_this_phase = 0;
                }
                false
            }
            SlotView::Single { .. } => {
                self.silent_run = 0;
                if self.jammed_this_phase < self.k {
                    self.jammed_this_phase += 1;
                    true
                } else {
                    false
                }
            }
            SlotView::Collision { .. } => {
                self.silent_run = 0;
                false
            }
        }
    }

    fn on_silent_gap(&mut self, gap: u64) {
        // Identical to `gap` rejected Silent attempts: the run grows, and
        // once it crosses the threshold the phase counter re-arms (the
        // reset is idempotent, so crossing it mid-gap changes nothing).
        self.silent_run = self.silent_run.saturating_add(gap);
        if self.silent_run >= self.reset_gap {
            self.jammed_this_phase = 0;
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
}

/// A Gilbert–Elliott bursty-noise channel: a two-state Markov chain
/// (good/bad) advanced once per slot; while in the bad state the channel
/// attempts to strike **every** slot, idle ones included. Mean burst
/// length is `1/p_exit` and the stationary bad-state fraction is
/// `p_enter / (p_enter + p_exit)`.
///
/// Because the state transition draws randomness every slot regardless of
/// traffic, this adversary is idle-striking: the engine must visit every
/// slot with live jobs individually (no silent-gap fast-forward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    p_enter: f64,
    p_exit: f64,
    bad: bool,
}

impl GilbertElliott {
    /// A channel that enters the bad state with probability `p_enter` per
    /// good slot and leaves it with probability `p_exit` per bad slot;
    /// starts good.
    pub fn new(p_enter: f64, p_exit: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_enter) && (0.0..=1.0).contains(&p_exit),
            "transition probabilities must be in [0,1]"
        );
        Self {
            p_enter,
            p_exit,
            bad: false,
        }
    }

    /// The Gilbert–Elliott parameters hitting a stationary bad-state
    /// fraction `duty` with mean burst length `burst_len` slots.
    pub fn with_duty(duty: f64, burst_len: f64) -> Self {
        assert!((0.0..1.0).contains(&duty), "duty must be in [0,1)");
        assert!(burst_len >= 1.0, "mean burst length must be >= 1");
        let p_exit = 1.0 / burst_len;
        let p_enter = (p_exit * duty / (1.0 - duty)).min(1.0);
        Self::new(p_enter, p_exit)
    }

    /// True while the channel is in its bad (striking) state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }
}

impl Adversary for GilbertElliott {
    fn attempts(&mut self, _view: SlotView, rng: &mut ChaCha8Rng) -> bool {
        let flip_p = if self.bad { self.p_exit } else { self.p_enter };
        if rng.gen_bool(flip_p) {
            self.bad = !self.bad;
        }
        self.bad
    }

    fn strikes_idle(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
}

/// A serializable description of an adversary configuration — the form
/// experiment configs and attack-paired workloads archive next to their
/// JSON artifacts. [`AdversarySpec::jammer`] instantiates it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversarySpec {
    /// One of the stateless fixed policies.
    Policy(JamPolicy),
    /// [`BudgetedJammer`] with the given attempt budget.
    Budgeted {
        /// Maximum jam attempts per run.
        budget: u64,
        /// Save every attempt for data messages.
        data_only: bool,
    },
    /// [`ReactiveJammer`] jamming the first `k` successes per busy stretch.
    Reactive {
        /// Successes jammed per observed phase.
        k: u64,
        /// Silent-run length that marks a phase boundary.
        reset_gap: u64,
    },
    /// [`GilbertElliott`] bursty channel faults.
    Bursty {
        /// Good→bad transition probability per slot.
        p_enter: f64,
        /// Bad→good transition probability per slot.
        p_exit: f64,
    },
}

impl AdversarySpec {
    /// Build the described adversary wrapped in a [`Jammer`] with jam
    /// success probability `p_jam`.
    pub fn jammer(&self, p_jam: f64) -> Jammer {
        match *self {
            AdversarySpec::Policy(policy) => Jammer::new(policy, p_jam),
            AdversarySpec::Budgeted { budget, data_only } => {
                Jammer::adaptive(Box::new(BudgetedJammer::new(budget, data_only)), p_jam)
            }
            AdversarySpec::Reactive { k, reset_gap } => {
                Jammer::adaptive(Box::new(ReactiveJammer::new(k, reset_gap)), p_jam)
            }
            AdversarySpec::Bursty { p_enter, p_exit } => {
                Jammer::adaptive(Box::new(GilbertElliott::new(p_enter, p_exit)), p_jam)
            }
        }
    }
}

/// A stochastic jamming adversary: an [`Adversary`] deciding *when* to
/// attempt, plus the paper's `p_jam` success coin and attempt/success
/// accounting.
#[derive(Debug)]
pub struct Jammer {
    adversary: Box<dyn Adversary>,
    /// Probability that an attempted jam succeeds (paper's `p_jam`).
    p_jam: f64,
    jams_attempted: u64,
    jams_succeeded: u64,
}

impl Clone for Jammer {
    fn clone(&self) -> Self {
        Self {
            adversary: self.adversary.clone_box(),
            p_jam: self.p_jam,
            jams_attempted: self.jams_attempted,
            jams_succeeded: self.jams_succeeded,
        }
    }
}

impl Jammer {
    /// Build a fixed-policy adversary. `p_jam` must be in `[0, 1]`; the
    /// paper's analysis assumes `p_jam <= 1/2` but the simulator permits
    /// the full range so the breakdown regime can be explored.
    pub fn new(policy: JamPolicy, p_jam: f64) -> Self {
        Self::adaptive(Box::new(policy), p_jam)
    }

    /// Build a jammer around any [`Adversary`] implementation.
    pub fn adaptive(adversary: Box<dyn Adversary>, p_jam: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_jam), "p_jam must be in [0,1]");
        Self {
            adversary,
            p_jam,
            jams_attempted: 0,
            jams_succeeded: 0,
        }
    }

    /// The adversary that never interferes.
    pub fn none() -> Self {
        Self::new(JamPolicy::Never, 0.0)
    }

    /// Decide whether this slot is jammed. Called once per slot by the
    /// engine with the adversary's private randomness.
    pub fn jams(&mut self, view: SlotView, rng: &mut ChaCha8Rng) -> bool {
        if !self.adversary.attempts(view, rng) {
            return false;
        }
        self.jams_attempted += 1;
        let success = rng.gen_bool(self.p_jam);
        if success {
            self.jams_succeeded += 1;
        }
        success
    }

    /// Number of jam attempts so far.
    pub fn attempted(&self) -> u64 {
        self.jams_attempted
    }

    /// Number of successful jams so far.
    pub fn succeeded(&self) -> u64 {
        self.jams_succeeded
    }

    /// The configured `p_jam`.
    pub fn p_jam(&self) -> f64 {
        self.p_jam
    }

    /// True when the adversary can attempt a jam (and therefore draws
    /// randomness) on a slot with no transmission. Such adversaries make
    /// even silent stretches observable, so the engine must not
    /// fast-forward across them while parked jobs are still live.
    pub fn strikes_idle(&self) -> bool {
        self.adversary.strikes_idle()
    }

    /// Forward an engine fast-forward over `gap` silent slots to the
    /// adversary (see [`Adversary::on_silent_gap`]).
    pub fn on_silent_gap(&mut self, gap: u64) {
        self.adversary.on_silent_gap(gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ControlMsg;
    use crate::rng::{SeedSeq, StreamLabel};

    fn rng() -> ChaCha8Rng {
        SeedSeq::new(123).rng(StreamLabel::Jammer, 0)
    }

    fn single_data() -> SlotView {
        SlotView::Single {
            src: 0,
            payload: Payload::Data(0),
        }
    }

    fn single_control() -> SlotView {
        SlotView::Single {
            src: 0,
            payload: Payload::Control(ControlMsg::of_kind(1)),
        }
    }

    #[test]
    fn never_policy_never_jams() {
        let mut j = Jammer::none();
        let mut r = rng();
        for _ in 0..100 {
            assert!(!j.jams(single_data(), &mut r));
        }
        assert_eq!(j.attempted(), 0);
    }

    #[test]
    fn p_jam_one_always_succeeds_on_successes() {
        let mut j = Jammer::new(JamPolicy::AllSuccesses, 1.0);
        let mut r = rng();
        for _ in 0..50 {
            assert!(j.jams(single_data(), &mut r));
            assert!(!j.jams(SlotView::Silent, &mut r));
        }
        assert_eq!(j.succeeded(), 50);
    }

    #[test]
    fn control_only_ignores_data() {
        let mut j = Jammer::new(JamPolicy::ControlOnly, 1.0);
        let mut r = rng();
        assert!(!j.jams(single_data(), &mut r));
        assert!(j.jams(single_control(), &mut r));
    }

    #[test]
    fn data_only_ignores_control() {
        let mut j = Jammer::new(JamPolicy::DataOnly, 1.0);
        let mut r = rng();
        assert!(j.jams(single_data(), &mut r));
        assert!(!j.jams(single_control(), &mut r));
    }

    #[test]
    fn jam_success_rate_tracks_p_jam() {
        let mut j = Jammer::new(JamPolicy::AllSuccesses, 0.5);
        let mut r = rng();
        let n: u32 = 20_000;
        let mut wins = 0u32;
        for _ in 0..n {
            if j.jams(single_data(), &mut r) {
                wins += 1;
            }
        }
        let rate = f64::from(wins) / f64::from(n);
        assert!((rate - 0.5).abs() < 0.02, "rate={rate}");
        assert_eq!(j.attempted(), u64::from(n));
    }

    #[test]
    #[should_panic(expected = "p_jam")]
    fn invalid_p_jam_rejected() {
        let _ = Jammer::new(JamPolicy::Never, 1.5);
    }

    #[test]
    fn only_random_policy_strikes_idle() {
        for (policy, idle) in [
            (JamPolicy::Never, false),
            (JamPolicy::AllSuccesses, false),
            (JamPolicy::ControlOnly, false),
            (JamPolicy::DataOnly, false),
            (JamPolicy::Random { attempt: 0.2 }, true),
        ] {
            assert_eq!(Jammer::new(policy, 0.5).strikes_idle(), idle, "{policy:?}");
        }
    }

    #[test]
    fn budgeted_jammer_exhausts_its_budget() {
        let mut j = Jammer::adaptive(Box::new(BudgetedJammer::new(3, false)), 1.0);
        let mut r = rng();
        let mut jams = 0;
        for _ in 0..10 {
            if j.jams(single_data(), &mut r) {
                jams += 1;
            }
        }
        assert_eq!(jams, 3);
        assert_eq!(j.attempted(), 3);
        assert!(!j.strikes_idle());
    }

    #[test]
    fn budgeted_data_only_saves_shots_for_data() {
        let mut j = Jammer::adaptive(Box::new(BudgetedJammer::new(2, true)), 1.0);
        let mut r = rng();
        // Control traffic passes; both shots land on the data messages.
        assert!(!j.jams(single_control(), &mut r));
        assert!(j.jams(single_data(), &mut r));
        assert!(!j.jams(single_control(), &mut r));
        assert!(j.jams(single_data(), &mut r));
        assert!(!j.jams(single_data(), &mut r));
        assert_eq!(j.attempted(), 2);
    }

    #[test]
    fn reactive_jammer_targets_phase_starts() {
        let mut j = Jammer::adaptive(Box::new(ReactiveJammer::new(2, 3)), 1.0);
        let mut r = rng();
        // First phase: the first two successes are jammed, the third passes.
        assert!(j.jams(single_control(), &mut r));
        assert!(j.jams(single_control(), &mut r));
        assert!(!j.jams(single_control(), &mut r));
        // Two silent slots: not yet a phase boundary.
        assert!(!j.jams(SlotView::Silent, &mut r));
        assert!(!j.jams(SlotView::Silent, &mut r));
        assert!(!j.jams(single_control(), &mut r));
        // Three silent slots re-arm the jammer.
        for _ in 0..3 {
            assert!(!j.jams(SlotView::Silent, &mut r));
        }
        assert!(j.jams(single_control(), &mut r));
    }

    #[test]
    fn reactive_gap_replay_matches_slot_by_slot() {
        // Bulk notification must be indistinguishable from dense silence.
        let mut dense = ReactiveJammer::new(1, 5);
        let mut bulk = dense;
        let mut r1 = rng();
        let mut r2 = rng();
        // Spend the phase budget in both.
        assert!(dense.attempts(single_data(), &mut r1));
        assert!(bulk.attempts(single_data(), &mut r2));
        for _ in 0..7 {
            assert!(!dense.attempts(SlotView::Silent, &mut r1));
        }
        bulk.on_silent_gap(7);
        assert_eq!(dense, bulk);
        assert!(dense.attempts(single_data(), &mut r1));
        assert!(bulk.attempts(single_data(), &mut r2));
    }

    #[test]
    fn gilbert_elliott_strikes_idle_and_bursts() {
        let mut j = Jammer::adaptive(Box::new(GilbertElliott::new(0.3, 0.3)), 1.0);
        assert!(j.strikes_idle());
        let mut r = rng();
        let mut jammed_silent = 0u32;
        for _ in 0..2_000 {
            if j.jams(SlotView::Silent, &mut r) {
                jammed_silent += 1;
            }
        }
        // Stationary bad fraction 0.5 with p_jam = 1: about half the
        // silent slots are struck.
        assert!(
            (800..1200).contains(&jammed_silent),
            "jammed {jammed_silent}/2000"
        );
    }

    #[test]
    fn gilbert_elliott_duty_parameterization() {
        let ge = GilbertElliott::with_duty(0.25, 8.0);
        // p_exit = 1/8; p_enter = (1/8)(0.25/0.75) = 1/24; stationary bad
        // fraction p_enter/(p_enter+p_exit) = 0.25.
        assert!((ge.p_exit - 0.125).abs() < 1e-12);
        let duty = ge.p_enter / (ge.p_enter + ge.p_exit);
        assert!((duty - 0.25).abs() < 1e-12, "duty={duty}");
        assert!(!ge.is_bad());
    }

    #[test]
    fn adversary_spec_builds_matching_jammers() {
        let specs = [
            AdversarySpec::Policy(JamPolicy::AllSuccesses),
            AdversarySpec::Budgeted {
                budget: 4,
                data_only: true,
            },
            AdversarySpec::Reactive { k: 2, reset_gap: 8 },
            AdversarySpec::Bursty {
                p_enter: 0.1,
                p_exit: 0.4,
            },
        ];
        for spec in specs {
            let j = spec.jammer(0.5);
            assert!((j.p_jam() - 0.5).abs() < 1e-12);
            // Only the bursty channel draws on idle slots.
            assert_eq!(
                j.strikes_idle(),
                matches!(spec, AdversarySpec::Bursty { .. }),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn cloned_jammer_replays_identically() {
        let mut a = Jammer::adaptive(Box::new(ReactiveJammer::new(2, 4)), 0.7);
        let mut r = rng();
        let _ = a.jams(single_data(), &mut r);
        let mut b = a.clone();
        let mut r1 = rng();
        let mut r2 = r1.clone();
        for _ in 0..50 {
            assert_eq!(
                a.jams(single_data(), &mut r1),
                b.jams(single_data(), &mut r2)
            );
        }
        assert_eq!(a.attempted(), b.attempted());
    }
}
