//! Stochastic jamming adversaries (Section 3, "Jamming").
//!
//! The paper's adversary "can look at slots and decide to create noise in
//! that slot, e.g., if a message is broadcast. (Here the adversary can even
//! look at the contents of the message itself.) If the adversary decides to
//! jam, the jamming succeeds with some constant probability `p_jam`."
//!
//! [`Jammer`] implements that interface: each slot, the adversary sees the
//! tentative channel resolution (including message content on a would-be
//! success) and decides whether to *attempt* a jam; an attempt succeeds with
//! probability `p_jam`. A successful jam turns the slot into noise.

use crate::job::JobId;
use crate::message::Payload;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What the adversary sees before deciding to jam a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotView {
    /// Nobody is transmitting.
    Silent,
    /// Exactly one transmission; the adversary may read it.
    Single {
        /// Transmitting job.
        src: JobId,
        /// The message being sent.
        payload: Payload,
    },
    /// Already a collision (jamming is redundant but allowed).
    Collision {
        /// Number of simultaneous transmissions.
        n_tx: usize,
    },
}

/// When the adversary chooses to attempt a jam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JamPolicy {
    /// Never jam (the clean channel of Sections 2 and 4).
    Never,
    /// Attempt to jam every slot that would otherwise be a success.
    AllSuccesses,
    /// Attempt to jam only successful **control** messages — the paper's
    /// example of an adversary trying to "skew the estimate `n_ℓ` by jamming
    /// only some of the phases during the estimation protocol".
    ControlOnly,
    /// Attempt to jam only successful **data** messages (attacks delivery
    /// directly, leaving coordination intact).
    DataOnly,
    /// Attempt to jam every slot (even silence) with probability `attempt`.
    Random {
        /// Probability of deciding to attempt a jam in a slot.
        attempt: f64,
    },
}

/// A stochastic jamming adversary.
#[derive(Debug, Clone)]
pub struct Jammer {
    policy: JamPolicy,
    /// Probability that an attempted jam succeeds (paper's `p_jam`).
    p_jam: f64,
    jams_attempted: u64,
    jams_succeeded: u64,
}

impl Jammer {
    /// Build an adversary. `p_jam` must be in `[0, 1]`; the paper's analysis
    /// assumes `p_jam <= 1/2` but the simulator permits the full range so the
    /// breakdown regime can be explored.
    pub fn new(policy: JamPolicy, p_jam: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_jam), "p_jam must be in [0,1]");
        Self {
            policy,
            p_jam,
            jams_attempted: 0,
            jams_succeeded: 0,
        }
    }

    /// The adversary that never interferes.
    pub fn none() -> Self {
        Self::new(JamPolicy::Never, 0.0)
    }

    /// Decide whether this slot is jammed. Called once per slot by the
    /// engine with the adversary's private randomness.
    pub fn jams(&mut self, view: SlotView, rng: &mut ChaCha8Rng) -> bool {
        let attempt = match (self.policy, view) {
            (JamPolicy::Never, _) => false,
            (JamPolicy::AllSuccesses, SlotView::Single { .. }) => true,
            (JamPolicy::AllSuccesses, _) => false,
            (JamPolicy::ControlOnly, SlotView::Single { payload, .. }) => !payload.is_data(),
            (JamPolicy::ControlOnly, _) => false,
            (JamPolicy::DataOnly, SlotView::Single { payload, .. }) => payload.is_data(),
            (JamPolicy::DataOnly, _) => false,
            (JamPolicy::Random { attempt }, _) => rng.gen_bool(attempt),
        };
        if !attempt {
            return false;
        }
        self.jams_attempted += 1;
        let success = rng.gen_bool(self.p_jam);
        if success {
            self.jams_succeeded += 1;
        }
        success
    }

    /// Number of jam attempts so far.
    pub fn attempted(&self) -> u64 {
        self.jams_attempted
    }

    /// Number of successful jams so far.
    pub fn succeeded(&self) -> u64 {
        self.jams_succeeded
    }

    /// The configured `p_jam`.
    pub fn p_jam(&self) -> f64 {
        self.p_jam
    }

    /// The configured policy.
    pub fn policy(&self) -> JamPolicy {
        self.policy
    }

    /// True when the policy can attempt a jam (and therefore draws adversary
    /// randomness) on a slot with no transmission. Such policies make even
    /// silent stretches observable, so the engine must not fast-forward
    /// across them while parked jobs are still live.
    pub fn strikes_idle(&self) -> bool {
        matches!(self.policy, JamPolicy::Random { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ControlMsg;
    use crate::rng::{SeedSeq, StreamLabel};

    fn rng() -> ChaCha8Rng {
        SeedSeq::new(123).rng(StreamLabel::Jammer, 0)
    }

    fn single_data() -> SlotView {
        SlotView::Single {
            src: 0,
            payload: Payload::Data(0),
        }
    }

    fn single_control() -> SlotView {
        SlotView::Single {
            src: 0,
            payload: Payload::Control(ControlMsg::of_kind(1)),
        }
    }

    #[test]
    fn never_policy_never_jams() {
        let mut j = Jammer::none();
        let mut r = rng();
        for _ in 0..100 {
            assert!(!j.jams(single_data(), &mut r));
        }
        assert_eq!(j.attempted(), 0);
    }

    #[test]
    fn p_jam_one_always_succeeds_on_successes() {
        let mut j = Jammer::new(JamPolicy::AllSuccesses, 1.0);
        let mut r = rng();
        for _ in 0..50 {
            assert!(j.jams(single_data(), &mut r));
            assert!(!j.jams(SlotView::Silent, &mut r));
        }
        assert_eq!(j.succeeded(), 50);
    }

    #[test]
    fn control_only_ignores_data() {
        let mut j = Jammer::new(JamPolicy::ControlOnly, 1.0);
        let mut r = rng();
        assert!(!j.jams(single_data(), &mut r));
        assert!(j.jams(single_control(), &mut r));
    }

    #[test]
    fn data_only_ignores_control() {
        let mut j = Jammer::new(JamPolicy::DataOnly, 1.0);
        let mut r = rng();
        assert!(j.jams(single_data(), &mut r));
        assert!(!j.jams(single_control(), &mut r));
    }

    #[test]
    fn jam_success_rate_tracks_p_jam() {
        let mut j = Jammer::new(JamPolicy::AllSuccesses, 0.5);
        let mut r = rng();
        let n: u32 = 20_000;
        let mut wins = 0u32;
        for _ in 0..n {
            if j.jams(single_data(), &mut r) {
                wins += 1;
            }
        }
        let rate = f64::from(wins) / f64::from(n);
        assert!((rate - 0.5).abs() < 0.02, "rate={rate}");
        assert_eq!(j.attempted(), u64::from(n));
    }

    #[test]
    #[should_panic(expected = "p_jam")]
    fn invalid_p_jam_rejected() {
        let _ = Jammer::new(JamPolicy::Never, 1.5);
    }
}
