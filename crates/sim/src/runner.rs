//! Parallel Monte-Carlo trial execution.
//!
//! High-probability claims ("job `j` succeeds with probability at least
//! `1 − 1/w^Θ(λ)`") are validated empirically by running many independent
//! trials. [`run_trials`] fans trials out over OS threads with
//! `crossbeam::scope`; each trial derives its own seed from the batch master
//! seed, so results are independent of thread count and scheduling.
//!
//! ## Engine reuse
//!
//! Workers run many trials back to back on one OS thread, and
//! [`crate::engine::Engine::new`] drains a thread-local arena of cleared
//! allocations donated by the previous trial's engine (see the trial-arena
//! notes in [`crate::engine`]). A trial closure that simply constructs a
//! fresh `Engine` therefore pays for job-table, scratch, and probe buffers
//! once per *worker*, not once per *trial* — no pooling plumbing is needed
//! in the closure, and results stay bit-identical to unpooled construction.
//!
//! ## Thread count
//!
//! Workers default to the machine's available parallelism; a process-wide
//! override ([`set_worker_override`]) pins the count for reproducible
//! benchmarking on heterogeneous CI machines.

use crate::rng::SeedSeq;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed failure of a trial batch (see [`run_trials_ctl`]).
///
/// Historically a worker panic died inside the runner via
/// `expect("monte-carlo worker panicked")`, which lost the panic payload
/// and — for long-lived callers such as `dcr-server` — aborted the whole
/// process on one bad trial. The payload is now captured and surfaced
/// here so callers can map it to a failed-run status instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A worker thread panicked while executing a trial. `payload` is the
    /// panic message when it was a `&str`/`String` (the overwhelmingly
    /// common case: `panic!`, `assert!`, `expect`), or a placeholder for
    /// exotic payload types.
    Panicked {
        /// Captured panic payload text.
        payload: String,
    },
    /// The batch observed its [`CancelToken`] and stopped early; no
    /// result vector exists because not every trial ran.
    Cancelled {
        /// Trials that had completed when the batch wound down.
        completed: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panicked { payload } => {
                write!(f, "monte-carlo worker panicked: {payload}")
            }
            RunError::Cancelled { completed } => {
                write!(f, "trial batch cancelled after {completed} trials")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Extract a human-readable message from a panic payload.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Cooperative cancellation handle for a trial batch.
///
/// Cloning shares the flag; any clone may [`cancel`](CancelToken::cancel).
/// Workers observe the flag between trials (a running trial is never
/// interrupted mid-flight), so cancellation latency is one trial's
/// duration per worker.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Process-wide worker-count override; 0 means "auto" (available
/// parallelism).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the number of worker threads every subsequent trial batch uses
/// (`None` restores the default: the machine's available parallelism).
/// Process-wide; intended to be set once at startup from a `--threads`
/// flag. Trial *results* never depend on the worker count — only wall
/// clock does.
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count a batch of `trials` trials would use right now.
pub fn configured_workers(trials: u64) -> usize {
    worker_count(trials)
}

/// One trial's result paired with the trial index and its derived seed
/// (so an interesting trial can be re-run in isolation).
#[derive(Debug, Clone)]
pub struct TrialOutcome<T> {
    /// Index of the trial in `0..trials`.
    pub trial: u64,
    /// The master seed that governed the trial.
    pub seed: u64,
    /// The trial function's output.
    pub value: T,
}

/// Number of worker threads to use: the machine's available parallelism,
/// capped by the number of trials.
fn worker_count(trials: u64) -> usize {
    let hw = match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    };
    hw.min(trials.max(1) as usize)
}

/// Completed trials between forced progress flushes (see
/// [`run_trials_with`]): a worker publishes its local count every
/// `PROGRESS_BATCH` trials or [`PROGRESS_INTERVAL`], whichever first.
const PROGRESS_BATCH: u64 = 64;

/// Maximum staleness of a worker's published progress.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(100);

/// Timing instrumentation for one [`run_trials_with`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Wall-clock time of the whole batch (fan-out to join).
    pub wall: Duration,
    /// Trials executed.
    pub trials: u64,
    /// Worker threads used.
    pub workers: usize,
}

impl RunStats {
    /// Mean wall-clock time per trial (zero for an empty batch).
    pub fn per_trial(&self) -> Duration {
        if self.trials == 0 {
            Duration::ZERO
        } else {
            self.wall / self.trials.min(u64::from(u32::MAX)) as u32
        }
    }

    /// Trial throughput in trials per second (0.0 for an instant batch).
    pub fn trials_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.trials as f64 / secs
        } else {
            0.0
        }
    }
}

/// Run `trials` independent trials of `f` in parallel.
///
/// `f` receives `(trial_index, trial_seed)` and must be deterministic given
/// those. Results are returned sorted by trial index regardless of
/// completion order.
///
/// ```
/// use dcr_sim::runner::run_trials;
/// let results = run_trials(100, 42, |trial, seed| (trial, seed % 2));
/// assert_eq!(results.len(), 100);
/// assert_eq!(results[7].trial, 7);
/// ```
pub fn run_trials<T, F>(trials: u64, master_seed: u64, f: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    run_trials_with(trials, master_seed, f, |_, _| {}).0
}

/// [`run_trials`] with instrumentation: returns batch [`RunStats`] and
/// invokes `progress(completed, total)` as trials finish.
///
/// Progress is **batched**: each worker publishes its completions to the
/// shared counter (and invokes the callback) every [`PROGRESS_BATCH`]
/// trials or every [`PROGRESS_INTERVAL`] of wall clock, whichever comes
/// first, plus once at worker exit — so short-trial batches no longer
/// serialize on an atomic + callback per trial. Consequences for the
/// callback contract: it sees a monotonically non-decreasing completion
/// count that is guaranteed to *reach* `total`, but not every intermediate
/// value; it may be called concurrently from different workers (hence
/// `Sync`); and it must not assume trial-index order. Timing covers the
/// whole batch including thread fan-out and join, so `RunStats::wall` is
/// an upper bound on the sum of per-trial compute divided by effective
/// parallelism.
pub fn run_trials_with<T, F, P>(
    trials: u64,
    master_seed: u64,
    f: F,
    progress: P,
) -> (Vec<TrialOutcome<T>>, RunStats)
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
    P: Fn(u64, u64) + Sync,
{
    // A fresh token is never cancelled, so the only possible error is a
    // worker panic — re-raised here with its payload preserved, keeping
    // the legacy panic contract for batch CLI callers. Long-lived callers
    // (the experiment server) use `run_trials_ctl` and get a typed error.
    match run_trials_ctl(trials, master_seed, f, progress, &CancelToken::new()) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_trials_with`] with full control: cooperative cancellation via a
/// [`CancelToken`] and typed errors instead of panics.
///
/// Returns [`RunError::Cancelled`] if the token fires before the batch
/// completes (workers stop claiming new trials; in-flight trials finish),
/// and [`RunError::Panicked`] — with the captured panic payload — if any
/// trial closure panics. On error no partial result vector is returned:
/// trial outcomes are only meaningful as a complete, index-dense batch.
pub fn run_trials_ctl<T, F, P>(
    trials: u64,
    master_seed: u64,
    f: F,
    progress: P,
    cancel: &CancelToken,
) -> Result<(Vec<TrialOutcome<T>>, RunStats), RunError>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
    P: Fn(u64, u64) + Sync,
{
    let started = Instant::now();
    let seeds = SeedSeq::new(master_seed);
    let next = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let workers = worker_count(trials);

    // Each worker accumulates its outcomes privately; they are merged by
    // trial index into a pre-sized table at join. No lock on the trial
    // hot path, and no final sort.
    let mut slots: Vec<Option<TrialOutcome<T>>> = Vec::new();
    slots.resize_with(trials as usize, || None);
    // First captured worker panic payload, if any.
    let mut panicked: Option<String> = None;

    let scope_result = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    // Work-stealing via a shared atomic counter: trials can
                    // have very uneven durations (window sizes span
                    // decades), so static striping would leave threads idle.
                    let mut mine = Vec::new();
                    // Locally buffered completions, flushed in batches (see
                    // the progress contract above).
                    let mut unflushed = 0u64;
                    let mut last_flush = Instant::now();
                    loop {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let trial = next.fetch_add(1, Ordering::Relaxed);
                        if trial >= trials {
                            break;
                        }
                        let seed = seeds.trial(trial).master();
                        let value = f(trial, seed);
                        mine.push(TrialOutcome { trial, seed, value });
                        unflushed += 1;
                        if unflushed >= PROGRESS_BATCH || last_flush.elapsed() >= PROGRESS_INTERVAL
                        {
                            let done =
                                completed.fetch_add(unflushed, Ordering::Relaxed) + unflushed;
                            unflushed = 0;
                            last_flush = Instant::now();
                            progress(done, trials);
                        }
                    }
                    if unflushed > 0 {
                        let done = completed.fetch_add(unflushed, Ordering::Relaxed) + unflushed;
                        progress(done, trials);
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(outcomes) => {
                    for outcome in outcomes {
                        let idx = outcome.trial as usize;
                        debug_assert!(slots[idx].is_none(), "trial {idx} ran twice");
                        slots[idx] = Some(outcome);
                    }
                }
                Err(payload) => {
                    // Capture the first payload; keep joining the rest so
                    // the scope winds down cleanly either way.
                    if panicked.is_none() {
                        panicked = Some(payload_text(payload.as_ref()));
                    }
                }
            }
        }
    });
    // The closure above joins every handle itself, so the scope can only
    // fail if the *closure* panicked — which it does not. Still, treat a
    // scope-level payload like a worker panic rather than unwrapping.
    if let Err(payload) = scope_result {
        if panicked.is_none() {
            panicked = Some(payload_text(payload.as_ref()));
        }
    }

    if let Some(payload) = panicked {
        return Err(RunError::Panicked { payload });
    }
    // A token that fired only after every trial had already completed
    // loses the race benignly: the batch is whole, so return it.
    if cancel.is_cancelled() && slots.iter().any(Option::is_none) {
        return Err(RunError::Cancelled {
            completed: completed.load(Ordering::Relaxed),
        });
    }

    let out: Vec<TrialOutcome<T>> = slots
        .into_iter()
        .map(|s| s.expect("every claimed trial completes"))
        .collect();
    let stats = RunStats {
        wall: started.elapsed(),
        trials,
        workers,
    };
    Ok((out, stats))
}

/// Run trials and count how many satisfy `pred`. Returns `(hits, trials)`.
pub fn count_trials<F>(trials: u64, master_seed: u64, f: F) -> (u64, u64)
where
    F: Fn(u64, u64) -> bool + Sync,
{
    let hits = run_trials(trials, master_seed, f)
        .into_iter()
        .filter(|t| t.value)
        .count() as u64;
    (hits, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn results_sorted_and_complete() {
        let r = run_trials(257, 9, |t, _| t * 2);
        assert_eq!(r.len(), 257);
        for (i, out) in r.iter().enumerate() {
            assert_eq!(out.trial, i as u64);
            assert_eq!(out.value, (i as u64) * 2);
        }
    }

    #[test]
    fn seeds_are_deterministic_across_runs() {
        let a = run_trials(32, 7, |_, seed| seed);
        let b = run_trials(32, 7, |_, seed| seed);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn seeds_differ_across_trials() {
        let r = run_trials(64, 7, |_, seed| seed);
        let mut seen = std::collections::HashSet::new();
        for out in r {
            assert!(seen.insert(out.value));
        }
    }

    #[test]
    fn parallel_equals_sequential_semantics() {
        // Each trial's output depends only on its seed; parallelism must not
        // change anything.
        let f = |_t: u64, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            rng.gen_range(0..1000u32)
        };
        let a: Vec<u32> = run_trials(100, 3, f).into_iter().map(|t| t.value).collect();
        let b: Vec<u32> = run_trials(100, 3, f).into_iter().map(|t| t.value).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn count_trials_counts() {
        let (hits, total) = count_trials(100, 11, |t, _| t % 4 == 0);
        assert_eq!(total, 100);
        assert_eq!(hits, 25);
    }

    #[test]
    fn zero_trials_is_empty() {
        let r = run_trials(0, 1, |_, _| ());
        assert!(r.is_empty());
    }

    #[test]
    fn instrumented_run_reports_stats_and_progress() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let max_seen = AtomicU64::new(0);
        let calls = AtomicU64::new(0);
        let (out, stats) = run_trials_with(
            64,
            5,
            |t, _| t,
            |done, total| {
                assert_eq!(total, 64);
                assert!(done >= 1 && done <= total);
                max_seen.fetch_max(done, Ordering::Relaxed);
                calls.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(stats.trials, 64);
        assert!(stats.workers >= 1);
        // Progress is batched: fewer callbacks than trials (at most one
        // per trial even degenerately), but the published count must reach
        // the total by the final flush.
        let n_calls = calls.load(Ordering::Relaxed);
        assert!((1..=64).contains(&n_calls), "calls={n_calls}");
        assert_eq!(max_seen.load(Ordering::Relaxed), 64);
        // Wall-clock is nonzero (the batch did real work) and per-trial
        // time is consistent with it.
        assert!(stats.wall > Duration::ZERO);
        assert!(stats.per_trial() <= stats.wall);
    }

    #[test]
    fn instrumented_matches_plain_results() {
        let f = |_t: u64, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            rng.gen_range(0..1_000_000u64)
        };
        let plain: Vec<u64> = run_trials(50, 17, f).into_iter().map(|t| t.value).collect();
        let (inst, _) = run_trials_with(50, 17, f, |_, _| {});
        let inst: Vec<u64> = inst.into_iter().map(|t| t.value).collect();
        assert_eq!(plain, inst);
    }

    #[test]
    fn progress_batches_but_reaches_total() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // 200 instant trials: with batching at 64, a lone worker would
        // flush at 64, 128, 192, and exit — far fewer than 200 callbacks,
        // yet the last one must still report 200/200.
        let calls = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        let (out, _) = run_trials_with(
            200,
            23,
            |t, _| t,
            |done, total| {
                assert_eq!(total, 200);
                calls.fetch_add(1, Ordering::Relaxed);
                max_seen.fetch_max(done, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 200);
        assert_eq!(max_seen.load(Ordering::Relaxed), 200);
        // Strictly fewer callbacks than trials unless 100ms elapses per
        // trial or >50 workers each exit-flush — neither happens for
        // no-op closures on any plausible machine.
        assert!(calls.load(Ordering::Relaxed) < 200);
    }

    #[test]
    fn worker_override_is_respected() {
        // The override is process-wide state; this test owns it briefly
        // and restores the default before returning.
        set_worker_override(Some(3));
        assert_eq!(configured_workers(1000), 3);
        assert_eq!(configured_workers(2), 2); // still capped by trials
        let (_, stats) = run_trials_with(100, 31, |t, _| t, |_, _| {});
        set_worker_override(None);
        assert_eq!(stats.workers, 3);
        assert!(configured_workers(1000) >= 1);
    }

    #[test]
    fn worker_panic_is_captured_as_typed_error() {
        let err = run_trials_ctl(
            8,
            3,
            |t, _| {
                if t == 5 {
                    panic!("trial 5 exploded: bad window");
                }
                t
            },
            |_, _| {},
            &CancelToken::new(),
        )
        .unwrap_err();
        match err {
            RunError::Panicked { payload } => {
                assert!(
                    payload.contains("trial 5 exploded"),
                    "payload lost: {payload:?}"
                );
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "trial 2 exploded")]
    fn legacy_entry_point_panics_with_payload() {
        // The panicking wrapper must re-raise with the payload text, not
        // a generic "worker panicked" message.
        let _ = run_trials(4, 3, |t, _| {
            if t == 2 {
                panic!("trial 2 exploded");
            }
            t
        });
    }

    #[test]
    fn cancellation_stops_the_batch() {
        let token = CancelToken::new();
        let t2 = token.clone();
        // Cancel from inside trial 0; workers observe the flag between
        // trials, so far fewer than the full 10_000 run.
        let err = run_trials_ctl(
            10_000,
            7,
            move |_, _| {
                t2.cancel();
                std::thread::sleep(Duration::from_millis(1));
            },
            |_, _| {},
            &token,
        )
        .unwrap_err();
        match err {
            RunError::Cancelled { completed } => {
                assert!(completed < 10_000, "cancel ignored: {completed} trials ran");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(token.is_cancelled());
    }

    #[test]
    fn late_cancel_still_returns_full_batch() {
        // The token fires during the final (only) trial: every slot is
        // filled by wind-down, so the whole batch is preferred over the
        // cancellation error.
        let token = CancelToken::new();
        let t2 = token.clone();
        let run = move |t: u64, _seed: u64| {
            t2.cancel();
            t
        };
        let (out, _) = run_trials_ctl(1, 11, run, |_, _| {}, &token)
            .expect("complete batch must win over a late cancel");
        assert_eq!(out.len(), 1);
        assert!(token.is_cancelled());
    }

    #[test]
    fn ctl_matches_plain_results() {
        let f = |_t: u64, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            rng.gen_range(0..1_000_000u64)
        };
        let plain: Vec<u64> = run_trials(50, 17, f).into_iter().map(|t| t.value).collect();
        let (ctl, _) = run_trials_ctl(50, 17, f, |_, _| {}, &CancelToken::new()).unwrap();
        let ctl: Vec<u64> = ctl.into_iter().map(|t| t.value).collect();
        assert_eq!(plain, ctl);
    }

    #[test]
    fn empty_batch_stats() {
        let (out, stats) = run_trials_with(0, 1, |_, _| (), |_, _| {});
        assert!(out.is_empty());
        assert_eq!(stats.trials, 0);
        assert_eq!(stats.per_trial(), Duration::ZERO);
    }
}
