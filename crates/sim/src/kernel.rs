//! The vectorized slot kernel behind [`Fidelity::Vectorized`].
//!
//! Jobs whose protocol exposes a [`CohortTx`] profile are lifted out of
//! the per-job dispatch loop into two flat structures:
//!
//! - **Bernoulli buckets** ([`CohortTx::Constant`]): jobs sharing
//!   `(p, deadline)` sit in one bucket as parallel `keys`/`jobs` lanes
//!   with a 64-lane-per-word liveness bitmask. Each slot the kernel
//!   evaluates the counter-based draw `replay_bernoulli(key, slot, p)`
//!   for every live lane in a tight pass — no protocol calls, no
//!   per-job state, no branches on dead lanes beyond the mask.
//! - **One-shot calendar** ([`CohortTx::OneShot`]): the single
//!   transmission slot is precomputed at activation from the same pure
//!   draw the exact path's `on_activate` makes, and pushed into a
//!   min-heap keyed by that slot. Due entries pop in O(log n); slots
//!   with no due entry cost a peek.
//!
//! Because every draw is a pure function of `(job_key, slot, phase)`
//! (see [`crate::crng`]), the kernel's transmission set each slot is
//! *bit-identical* to what the exact path would produce — the
//! differential suite in `tests/kernel_differential.rs` pins this
//! across the full protocol × adversary grid — and the Bernoulli pass
//! can be split across worker threads with identical results for any
//! partitioning (`tests/partition_invariance.rs`).
//!
//! [`Fidelity::Vectorized`]: crate::engine::Fidelity::Vectorized
//! [`CohortTx`]: crate::engine::CohortTx
//! [`CohortTx::Constant`]: crate::engine::CohortTx::Constant
//! [`CohortTx::OneShot`]: crate::engine::CohortTx::OneShot

use crate::crng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Minimum live Bernoulli lanes before the kernel bothers spawning
/// worker threads for a sharded pass; below this the spawn overhead
/// dwarfs the draw work.
const PARALLEL_MIN_LANES: usize = 256;

/// One `(p, deadline)` class of constant-probability transmitters.
struct BernBucket {
    /// Per-slot transmission probability shared by every lane.
    p: f64,
    /// `p.to_bits()`, the bucket-identity half of the grouping key.
    p_bits: u64,
    /// Common deadline: the whole bucket expires at this slot.
    deadline: u64,
    /// Per-lane counter keys, parallel to `jobs`.
    keys: Vec<u64>,
    /// Per-lane job indices, parallel to `keys`.
    jobs: Vec<u32>,
    /// Liveness bitmask: bit `i` of word `i / 64` is lane `i`. Cleared
    /// on delivery; lanes are never compacted.
    alive: Vec<u64>,
    /// Count of set bits in `alive`.
    live: usize,
}

impl BernBucket {
    /// Evaluate the slot's Bernoulli draws for lanes in the word range
    /// `[word_lo, word_hi)`, appending transmitting job indices to
    /// `out`. Pure with respect to the bucket (no mutation), so ranges
    /// can be evaluated concurrently.
    fn collect_range(&self, slot: u64, word_lo: usize, word_hi: usize, out: &mut Vec<u32>) {
        for wi in word_lo..word_hi {
            let word = self.alive[wi];
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            let mut tx = if word.count_ones() >= 32 && base + 64 <= self.keys.len() {
                // Dense word: draw all 64 lanes branchlessly, mask after.
                let mut bits = 0u64;
                for b in 0..64 {
                    let hit = crng::replay_bernoulli(self.keys[base + b], slot, self.p);
                    bits |= u64::from(hit) << b;
                }
                bits & word
            } else {
                // Sparse word: draw only the set bits.
                let mut bits = 0u64;
                let mut rest = word;
                while rest != 0 {
                    let b = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if crng::replay_bernoulli(self.keys[base + b], slot, self.p) {
                        bits |= 1u64 << b;
                    }
                }
                bits
            };
            while tx != 0 {
                let b = tx.trailing_zeros() as usize;
                tx &= tx - 1;
                out.push(self.jobs[base + b]);
            }
        }
    }
}

/// Where a kernel-managed job lives, for O(1) delivery handling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Home {
    /// Not kernel-managed (exact-path job, or never inserted).
    None,
    /// Lane `.1` of Bernoulli bucket `.0`.
    Bern(u32, u32),
    /// In the one-shot calendar.
    Shot,
}

/// The vectorized slot kernel: batched Bernoulli buckets plus a
/// one-shot transmission calendar. Owned by the engine; inert (and
/// allocation-free) unless the run's fidelity is `Vectorized`.
pub(crate) struct SlotKernel {
    berns: Vec<BernBucket>,
    /// One-shot calendar: `(transmission slot, job index)` min-heap.
    shots: BinaryHeap<Reverse<(u64, u32)>>,
    /// Pending (undelivered, unexpired) one-shot members per deadline.
    /// A fired-but-collided one-shot stays pending until its deadline —
    /// the exact path likewise parks the job to `deadline - 1`, keeping
    /// it in live-job accounting and extending the run to its deadline.
    shot_live: BTreeMap<u64, u64>,
    /// Per-job home, indexed by job index.
    homes: Vec<Home>,
    /// Total pending kernel-managed jobs (bern live + one-shot live).
    pending: usize,
    /// Total live Bernoulli lanes across buckets.
    bern_live: usize,
    /// Worker shards for the Bernoulli pass (`<= 1` = inline).
    shards: usize,
    /// Per-shard output staging for the threaded pass.
    shard_out: Vec<Vec<u32>>,
}

impl Default for SlotKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl SlotKernel {
    pub(crate) fn new() -> Self {
        Self {
            berns: Vec::new(),
            shots: BinaryHeap::new(),
            shot_live: BTreeMap::new(),
            homes: Vec::new(),
            pending: 0,
            bern_live: 0,
            shards: 1,
            shard_out: Vec::new(),
        }
    }

    /// Reset for a run over `n_jobs` jobs with the given shard count.
    pub(crate) fn prepare(&mut self, n_jobs: usize, shards: usize) {
        self.clear();
        self.homes.resize(n_jobs, Home::None);
        self.shards = shards.max(1);
        self.shard_out.resize_with(self.shards, Vec::new);
    }

    /// Drop all state (the engine's reset contract).
    pub(crate) fn clear(&mut self) {
        self.berns.clear();
        self.shots.clear();
        self.shot_live.clear();
        self.homes.clear();
        self.pending = 0;
        self.bern_live = 0;
        self.shards = 1;
        self.shard_out.clear();
    }

    /// Pending kernel-managed jobs (counted in `live_jobs` traces and
    /// the run's termination condition).
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Live Bernoulli lanes: while nonzero, every slot needs a draw
    /// pass, so the engine must not gap-skip.
    pub(crate) fn bern_live(&self) -> usize {
        self.bern_live
    }

    /// The earliest scheduled one-shot transmission, if any.
    pub(crate) fn next_tx(&self) -> Option<u64> {
        self.shots.peek().map(|Reverse((s, _))| *s)
    }

    /// The last live slot (`deadline - 1`) of the earliest-expiring
    /// pending one-shot, if any. The engine's gap-skip runs its landing
    /// slot, so this mirrors the exact path precisely: there the parked
    /// job wakes at `deadline - 1`, sits out that one slot, and retires
    /// at its deadline — the run extends exactly that far, no further.
    pub(crate) fn next_expiry(&self) -> Option<u64> {
        self.shot_live.first_key_value().map(|(&d, _)| d - 1)
    }

    /// Σ live·p over Bernoulli buckets: the kernel's contribution to
    /// the slot's declared contention `C(t)`.
    pub(crate) fn declared(&self) -> f64 {
        self.berns.iter().map(|b| b.live as f64 * b.p).sum()
    }

    /// Admit a constant-probability job at activation.
    pub(crate) fn insert_bern(&mut self, idx: u32, key: u64, p: f64, deadline: u64) {
        let p_bits = p.to_bits();
        let bi = match self
            .berns
            .iter()
            .position(|b| b.p_bits == p_bits && b.deadline == deadline)
        {
            Some(bi) => bi,
            None => {
                self.berns.push(BernBucket {
                    p,
                    p_bits,
                    deadline,
                    keys: Vec::new(),
                    jobs: Vec::new(),
                    alive: Vec::new(),
                    live: 0,
                });
                self.berns.len() - 1
            }
        };
        let bucket = &mut self.berns[bi];
        let lane = bucket.keys.len();
        bucket.keys.push(key);
        bucket.jobs.push(idx);
        if lane.is_multiple_of(64) {
            bucket.alive.push(0);
        }
        bucket.alive[lane / 64] |= 1u64 << (lane % 64);
        bucket.live += 1;
        self.bern_live += 1;
        self.pending += 1;
        self.homes[idx as usize] = Home::Bern(bi as u32, lane as u32);
    }

    /// Admit a one-shot job at activation: replay the activation draw
    /// the exact path's `on_activate` would make and calendar the
    /// resulting transmission slot. The job pends until delivery or its
    /// deadline — *not* its transmission slot: a fired-but-collided
    /// one-shot remains a live (if silent) job until its window closes,
    /// exactly as the exact path's parked job does.
    pub(crate) fn insert_shot(
        &mut self,
        idx: u32,
        key: u64,
        release: u64,
        window: u64,
        deadline: u64,
    ) {
        let tx = crng::replay_oneshot(key, release, window);
        self.shots.push(Reverse((tx, idx)));
        *self.shot_live.entry(deadline).or_insert(0) += 1;
        self.pending += 1;
        self.homes[idx as usize] = Home::Shot;
    }

    /// True if `idx` is currently kernel-managed.
    pub(crate) fn is_managed(&self, idx: usize) -> bool {
        self.homes.get(idx).is_some_and(|h| *h != Home::None)
    }

    /// Retire expired state at the top of slot `slot`: buckets and
    /// one-shot members whose deadline has arrived stop pending (their
    /// outcomes are settled by the engine's end-of-run sweep, which
    /// defaults untouched jobs to `Missed` — same as the exact path).
    pub(crate) fn expire(&mut self, slot: u64) {
        for bucket in &mut self.berns {
            if bucket.deadline <= slot && bucket.live > 0 {
                for idx in &bucket.jobs {
                    self.homes[*idx as usize] = Home::None;
                }
                self.bern_live -= bucket.live;
                self.pending -= bucket.live;
                bucket.live = 0;
                bucket.alive.iter_mut().for_each(|w| *w = 0);
            }
        }
        while let Some((&deadline, _)) = self.shot_live.first_key_value() {
            if deadline > slot {
                break;
            }
            let (_, n) = self.shot_live.pop_first().expect("checked nonempty");
            self.pending -= n as usize;
        }
        // Calendar entries need no sweep: a one-shot's transmission slot
        // precedes its deadline and the engine never gap-skips past a
        // pending transmission, so every entry pops in `collect` at
        // exactly its slot, strictly before its deadline can expire it.
    }

    /// Record delivery of job `idx`: its lane goes dead (Bernoulli) or
    /// its deadline's pending count drops (one-shot).
    pub(crate) fn on_delivery(&mut self, idx: usize, deadline: u64) {
        match self.homes[idx] {
            Home::None => {}
            Home::Bern(bi, lane) => {
                let bucket = &mut self.berns[bi as usize];
                let (wi, bit) = (lane as usize / 64, lane as usize % 64);
                debug_assert_ne!(bucket.alive[wi] & (1 << bit), 0, "double delivery");
                bucket.alive[wi] &= !(1u64 << bit);
                bucket.live -= 1;
                self.bern_live -= 1;
                self.pending -= 1;
                self.homes[idx] = Home::None;
            }
            Home::Shot => {
                let n = self
                    .shot_live
                    .get_mut(&deadline)
                    .expect("delivered one-shot must be pending");
                *n -= 1;
                if *n == 0 {
                    self.shot_live.remove(&deadline);
                }
                self.pending -= 1;
                self.homes[idx] = Home::None;
            }
        }
    }

    /// Evaluate slot `slot`: pop due one-shot transmissions and run the
    /// Bernoulli pass, appending transmitting job indices to `out`.
    ///
    /// The output *set* is a pure function of `(slot, keys)`; its order
    /// is unspecified (the engine only counts transmitters and resolves
    /// the unique single transmitter, so order is unobservable).
    pub(crate) fn collect(&mut self, slot: u64, out: &mut Vec<u32>) {
        while let Some(&Reverse((s, idx))) = self.shots.peek() {
            if s > slot {
                break;
            }
            self.shots.pop();
            // A calendar entry pops exactly on its slot: the engine's
            // gap-skip treats `next_tx` as an event, and a shot resolves
            // (delivery or expiry) only at or after its transmission.
            debug_assert_eq!(s, slot, "one-shot transmission slot was skipped");
            debug_assert_eq!(self.homes[idx as usize], Home::Shot, "stale calendar entry");
            out.push(idx);
        }
        if self.bern_live == 0 {
            return;
        }
        let shards = self.shards;
        if shards <= 1 || self.bern_live < PARALLEL_MIN_LANES.max(shards * 64) {
            for bucket in &self.berns {
                if bucket.live > 0 && bucket.deadline > slot {
                    bucket.collect_range(slot, 0, bucket.alive.len(), out);
                }
            }
            return;
        }
        let berns = &self.berns;
        let shard_out = &mut self.shard_out[..shards];
        std::thread::scope(|scope| {
            for (i, buf) in shard_out.iter_mut().enumerate() {
                buf.clear();
                scope.spawn(move || {
                    for bucket in berns {
                        if bucket.live == 0 || bucket.deadline <= slot {
                            continue;
                        }
                        let words = bucket.alive.len();
                        let lo = words * i / shards;
                        let hi = words * (i + 1) / shards;
                        bucket.collect_range(slot, lo, hi, buf);
                    }
                });
            }
        });
        for buf in shard_out {
            out.append(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD)
            .collect()
    }

    #[test]
    fn bern_pass_matches_scalar_replay() {
        let mut k = SlotKernel::new();
        let ks = keys(100);
        k.prepare(100, 1);
        for (i, &key) in ks.iter().enumerate() {
            k.insert_bern(i as u32, key, 0.25, 1000);
        }
        for slot in 0..50 {
            let mut got = Vec::new();
            k.collect(slot, &mut got);
            got.sort_unstable();
            let want: Vec<u32> = (0..100u32)
                .filter(|&i| crng::replay_bernoulli(ks[i as usize], slot, 0.25))
                .collect();
            assert_eq!(got, want, "slot {slot}");
        }
    }

    #[test]
    fn sharded_pass_is_partition_invariant() {
        let n = 1024u64;
        let ks = keys(n);
        let reference: Vec<Vec<u32>> = {
            let mut k = SlotKernel::new();
            k.prepare(n as usize, 1);
            for (i, &key) in ks.iter().enumerate() {
                k.insert_bern(i as u32, key, 0.1, 10_000);
            }
            (0..20)
                .map(|slot| {
                    let mut out = Vec::new();
                    k.collect(slot, &mut out);
                    out.sort_unstable();
                    out
                })
                .collect()
        };
        for shards in [2usize, 3, 8] {
            let mut k = SlotKernel::new();
            k.prepare(n as usize, shards);
            for (i, &key) in ks.iter().enumerate() {
                k.insert_bern(i as u32, key, 0.1, 10_000);
            }
            for (slot, want) in reference.iter().enumerate() {
                let mut out = Vec::new();
                k.collect(slot as u64, &mut out);
                out.sort_unstable();
                assert_eq!(&out, want, "shards {shards} slot {slot}");
            }
        }
    }

    #[test]
    fn oneshot_calendar_fires_once_at_replayed_slot() {
        let mut k = SlotKernel::new();
        k.prepare(4, 1);
        let ks = keys(4);
        for (i, &key) in ks.iter().enumerate() {
            k.insert_shot(i as u32, key, 10, 32, 42);
        }
        assert_eq!(k.pending(), 4);
        assert_eq!(k.next_expiry(), Some(41));
        let mut fired = vec![Vec::new(); 4];
        for slot in 10..42 {
            k.expire(slot);
            let mut out = Vec::new();
            k.collect(slot, &mut out);
            for idx in out {
                fired[idx as usize].push(slot);
            }
        }
        for (i, slots) in fired.iter().enumerate() {
            let want = crng::replay_oneshot(ks[i], 10, 32);
            assert_eq!(slots, &vec![want], "job {i}");
        }
        // Undelivered shots pend (as the exact path's parked jobs stay
        // live) until their deadline expires them.
        assert_eq!(k.pending(), 4);
        k.expire(42);
        assert_eq!(k.pending(), 0);
        assert_eq!(k.next_expiry(), None);
    }

    #[test]
    fn delivery_and_expiry_zero_out_pending() {
        let mut k = SlotKernel::new();
        k.prepare(3, 1);
        k.insert_bern(0, 1, 0.5, 100);
        k.insert_bern(1, 2, 0.5, 100);
        k.insert_shot(2, 3, 0, 64, 64);
        assert_eq!(k.pending(), 3);
        assert_eq!(k.bern_live(), 2);
        k.on_delivery(0, 100);
        assert!(!k.is_managed(0));
        assert!(k.is_managed(1));
        assert_eq!(k.pending(), 2);
        assert_eq!(k.bern_live(), 1);
        k.on_delivery(2, 64);
        assert_eq!(k.pending(), 1);
        assert_eq!(k.next_expiry(), None);
        k.expire(100);
        assert_eq!(k.pending(), 0);
        assert_eq!(k.bern_live(), 0);
    }

    #[test]
    fn declared_tracks_live_lanes() {
        let mut k = SlotKernel::new();
        k.prepare(4, 1);
        for i in 0..4 {
            k.insert_bern(i, u64::from(i) + 7, 0.25, 50);
        }
        assert!((k.declared() - 1.0).abs() < 1e-12);
        k.on_delivery(1, 50);
        assert!((k.declared() - 0.75).abs() < 1e-12);
    }
}
