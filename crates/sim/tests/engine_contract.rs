//! Contract tests for the engine ↔ protocol interface: the guarantees a
//! protocol author may rely on, checked with instrumented probe protocols.

use dcr_sim::engine::{Action, Engine, EngineConfig, JobCtx, Protocol};
use dcr_sim::job::JobSpec;
use dcr_sim::message::Payload;
use dcr_sim::slot::Feedback;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A job that listens its whole window (keeps the engine alive).
struct Idle;
impl Protocol for Idle {
    fn act(&mut self, _ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
        Action::Listen
    }
}

/// Records every interface call it receives.
#[derive(Default)]
struct Probe {
    activations: Arc<AtomicU64>,
    acts: Arc<AtomicU64>,
    feedbacks: Arc<AtomicU64>,
    last_local: Arc<AtomicU64>,
    sleep_from: u64,
}

impl Protocol for Probe {
    fn on_activate(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) {
        assert_eq!(ctx.local_time, 0, "activation happens at local time 0");
        self.activations.fetch_add(1, Ordering::Relaxed);
    }

    fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
        let prev = self.last_local.swap(ctx.local_time, Ordering::Relaxed);
        let n = self.acts.fetch_add(1, Ordering::Relaxed);
        if n > 0 {
            assert_eq!(ctx.local_time, prev + 1, "local time advances by one");
        } else {
            assert_eq!(ctx.local_time, 0, "first act at local time 0");
        }
        if ctx.local_time >= self.sleep_from {
            Action::Sleep
        } else {
            Action::Listen
        }
    }

    fn on_feedback(&mut self, ctx: &JobCtx, _fb: &Feedback, _rng: &mut dyn rand::RngCore) {
        assert!(
            ctx.local_time < self.sleep_from,
            "no feedback for slots the job slept through"
        );
        self.feedbacks.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn lifecycle_counts_and_local_time() {
    let activations = Arc::new(AtomicU64::new(0));
    let acts = Arc::new(AtomicU64::new(0));
    let feedbacks = Arc::new(AtomicU64::new(0));
    let probe = Probe {
        activations: activations.clone(),
        acts: acts.clone(),
        feedbacks: feedbacks.clone(),
        last_local: Arc::new(AtomicU64::new(0)),
        sleep_from: 6,
    };
    let mut e = Engine::new(EngineConfig::default(), 5);
    e.add_job(JobSpec::new(0, 3, 13), Box::new(probe));
    // A second job keeps the channel alive past job 0's window.
    e.add_job(JobSpec::new(1, 0, 20), Box::new(Idle));
    let r = e.run();
    assert_eq!(activations.load(Ordering::Relaxed), 1, "one activation");
    // Window [3, 13): 10 acts.
    assert_eq!(acts.load(Ordering::Relaxed), 10);
    // Feedback only for the 6 listening slots (local 0..6).
    assert_eq!(feedbacks.load(Ordering::Relaxed), 6);
    assert_eq!(r.accesses_of(0).listens, 6);
    assert_eq!(r.accesses_of(0).transmissions, 0);
}

#[test]
fn transmitter_always_observes_its_slot() {
    struct TxProbe {
        got_feedback: Arc<AtomicU64>,
    }
    impl Protocol for TxProbe {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
            if ctx.local_time.is_multiple_of(2) {
                Action::Transmit(Payload::Data(ctx.id))
            } else {
                Action::Sleep
            }
        }
        fn on_feedback(&mut self, ctx: &JobCtx, fb: &Feedback, _rng: &mut dyn rand::RngCore) {
            assert_eq!(ctx.local_time % 2, 0);
            // Two transmitters collide every even slot: feedback is noise.
            assert!(fb.is_noise());
            self.got_feedback.fetch_add(1, Ordering::Relaxed);
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let got0 = Arc::new(AtomicU64::new(0));
    let got1 = Arc::new(AtomicU64::new(0));
    let mut e = Engine::new(EngineConfig::default(), 5);
    e.add_job(
        JobSpec::new(0, 0, 8),
        Box::new(TxProbe {
            got_feedback: got0.clone(),
        }),
    );
    e.add_job(
        JobSpec::new(1, 0, 8),
        Box::new(TxProbe {
            got_feedback: got1.clone(),
        }),
    );
    let r = e.run();
    assert_eq!(got0.load(Ordering::Relaxed), 4);
    assert_eq!(got1.load(Ordering::Relaxed), 4);
    assert_eq!(r.counts.collision, 4);
    assert_eq!(r.counts.silent, 4);
}

#[test]
fn max_slots_cap_is_respected() {
    let mut e = Engine::new(
        EngineConfig {
            max_slots: Some(5),
            ..EngineConfig::default()
        },
        1,
    );
    e.add_job(JobSpec::new(0, 0, 100), Box::new(Idle));
    let r = e.run();
    assert_eq!(r.slots_run, 5);
    assert!(!r.outcome(0).is_success());
}

#[test]
fn is_done_retires_early_and_stops_callbacks() {
    struct QuitAfter(u64, Arc<AtomicU64>);
    impl Protocol for QuitAfter {
        fn act(&mut self, ctx: &JobCtx, _rng: &mut dyn rand::RngCore) -> Action {
            self.1.fetch_add(1, Ordering::Relaxed);
            assert!(ctx.local_time <= self.0, "no act after is_done");
            Action::Listen
        }
        fn is_done(&self) -> bool {
            self.1.load(Ordering::Relaxed) > self.0
        }
    }
    let calls = Arc::new(AtomicU64::new(0));
    let mut e = Engine::new(EngineConfig::default(), 1);
    e.add_job(
        JobSpec::new(0, 0, 100),
        Box::new(QuitAfter(3, calls.clone())),
    );
    e.add_job(JobSpec::new(1, 0, 10), Box::new(Idle));
    let r = e.run();
    assert_eq!(calls.load(Ordering::Relaxed), 4, "acts stop after is_done");
    assert_eq!(r.slots_run, 10, "other jobs keep the engine going");
}
