//! Criterion microbenchmarks for workload machinery: γ-slack feasibility
//! checking (the event-driven EDF sweep), feasibility-certified thinning,
//! and instance generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcr_sim::rng::{SeedSeq, StreamLabel};
use dcr_workloads::feasibility::edf_feasible;
use dcr_workloads::generators::{aligned_classes, poisson, thin_to_feasible, ClassSpec};

fn bench_edf_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/edf");
    for n_exp in [10u32, 13, 16] {
        let horizon = 1u64 << (n_exp + 4);
        let inst = aligned_classes(
            &[
                ClassSpec {
                    class: 8,
                    jobs_per_window: 4,
                },
                ClassSpec {
                    class: 12,
                    jobs_per_window: 32,
                },
            ],
            horizon,
            None,
        );
        group.throughput(Throughput::Elements(inst.n() as u64));
        group.bench_with_input(BenchmarkId::new("jobs", inst.n()), &inst, |b, inst| {
            b.iter(|| edf_feasible(&inst.jobs, 8))
        });
    }
    group.finish();
}

fn bench_thinning(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/thin");
    group.sample_size(20);
    for horizon_exp in [14u32, 16] {
        let horizon = 1u64 << horizon_exp;
        group.bench_with_input(
            BenchmarkId::new("horizon", horizon),
            &horizon,
            |b, &horizon| {
                b.iter(|| {
                    let mut rng = SeedSeq::new(3).rng(StreamLabel::Workload, 0);
                    let raw = poisson(0.05, horizon, &[256, 1024, 4096], &mut rng);
                    thin_to_feasible(raw, 1.0 / 8.0).n()
                });
            },
        );
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/generate");
    group.bench_function("aligned_4class_2^16", |b| {
        b.iter(|| {
            aligned_classes(
                &[
                    ClassSpec {
                        class: 8,
                        jobs_per_window: 2,
                    },
                    ClassSpec {
                        class: 10,
                        jobs_per_window: 4,
                    },
                    ClassSpec {
                        class: 12,
                        jobs_per_window: 8,
                    },
                    ClassSpec {
                        class: 14,
                        jobs_per_window: 16,
                    },
                ],
                1 << 16,
                None,
            )
            .n()
        });
    });
    group.bench_function("poisson_2^16", |b| {
        b.iter(|| {
            let mut rng = SeedSeq::new(5).rng(StreamLabel::Workload, 1);
            poisson(0.05, 1 << 16, &[256, 4096], &mut rng).n()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_edf_feasibility,
    bench_thinning,
    bench_generation
);
criterion_main!(benches);
