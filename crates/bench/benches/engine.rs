//! Criterion microbenchmarks for the channel engine: raw slot throughput
//! under varying population sizes and with tracing/jamming enabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcr_baselines::FixedProbability;
use dcr_core::uniform::Uniform;
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::jamming::{JamPolicy, Jammer};
use dcr_sim::job::JobSpec;

const SLOTS: u64 = 10_000;

fn run(n: u32, config: EngineConfig, jam: bool) -> u64 {
    let mut e = Engine::new(config, 42);
    if jam {
        e.set_jammer(Jammer::new(JamPolicy::AllSuccesses, 0.3));
    }
    for i in 0..n {
        e.add_job(
            JobSpec::new(i, 0, SLOTS),
            Box::new(FixedProbability::new(1.0 / f64::from(n))),
        );
    }
    e.run().slots_run
}

fn bench_slot_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/slots");
    group.throughput(Throughput::Elements(SLOTS));
    for n in [10u32, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("stations", n), &n, |b, &n| {
            b.iter(|| run(n, EngineConfig::default(), false));
        });
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/trace");
    group.throughput(Throughput::Elements(SLOTS));
    group.bench_function("off", |b| {
        b.iter(|| run(100, EngineConfig::default(), false))
    });
    group.bench_function("on", |b| {
        b.iter(|| run(100, EngineConfig::default().with_trace(), false))
    });
    group.finish();
}

fn bench_jammer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/jammer");
    group.throughput(Throughput::Elements(SLOTS));
    group.bench_function("off", |b| {
        b.iter(|| run(100, EngineConfig::default(), false))
    });
    group.bench_function("on", |b| b.iter(|| run(100, EngineConfig::default(), true)));
    group.finish();
}

/// Event-driven parking vs dense polling on a parkable workload: UNIFORM
/// jobs sleep in all but their one chosen slot, so wake hints collapse the
/// window. (`FixedProbability` opts out of hints, so the groups above
/// measure the dense path in both modes.)
fn bench_scheduling(c: &mut Criterion) {
    let n = 100u32;
    let window = 1u64 << 14;
    let run_uniform = |config: EngineConfig| {
        let mut e = Engine::new(config, 42);
        for i in 0..n {
            e.add_job(JobSpec::new(i, 0, window), Box::new(Uniform::single()));
        }
        e.run().slots_run
    };
    let mut group = c.benchmark_group("engine/scheduling");
    group.throughput(Throughput::Elements(window));
    group.bench_function("dense", |b| {
        b.iter(|| run_uniform(EngineConfig::default().dense()))
    });
    group.bench_function("event", |b| b.iter(|| run_uniform(EngineConfig::default())));
    group.finish();
}

/// Trial-arena reuse: per-trial engine construction through the
/// thread-local pool (`Engine::new` after a previous engine's drop) vs
/// allocating everything fresh (`Engine::fresh`) vs explicit `reset` of one
/// long-lived engine. The three produce identical reports; the spread is
/// pure allocator traffic.
fn bench_trial_reuse(c: &mut Criterion) {
    let n = 200u32;
    let window = 512u64;
    let populate = |e: &mut Engine, seed: u64| {
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, window),
                Box::new(FixedProbability::new(2.0 / f64::from(n))),
            );
        }
        let _ = seed;
    };
    let mut group = c.benchmark_group("engine/trial_reuse");
    group.throughput(Throughput::Elements(window));
    group.bench_function("fresh", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut e = Engine::fresh(EngineConfig::default(), seed);
            populate(&mut e, seed);
            e.run().slots_run
        })
    });
    group.bench_function("pooled", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            // Dropping the previous iteration's engine stocked the
            // thread-local arena; this construction drains it.
            let mut e = Engine::new(EngineConfig::default(), seed);
            populate(&mut e, seed);
            e.run().slots_run
        })
    });
    group.bench_function("reset", |b| {
        let mut seed = 0u64;
        let mut e = Engine::new(EngineConfig::default(), 0);
        b.iter(|| {
            seed += 1;
            e.reset(seed);
            populate(&mut e, seed);
            e.run().slots_run
        })
    });
    group.finish();
}

/// Vectorized slot kernel vs the exact per-job dispatch loop, on the two
/// populations the kernel owns: a wide ALOHA cohort (the chunked
/// Bernoulli lanes) and a one-shot UNIFORM batch (the transmission
/// calendar). Both fidelities produce bit-identical reports (DESIGN.md
/// §3f); the spread is pure dispatch cost.
fn bench_kernel(c: &mut Criterion) {
    let window = 1u64 << 12;
    let run_aloha = |n: u32, config: EngineConfig| {
        let mut e = Engine::new(config, 42);
        for i in 0..n {
            e.add_job(
                JobSpec::new(i, 0, window),
                Box::new(FixedProbability::new(2.0 / window as f64)),
            );
        }
        e.run().slots_run
    };
    let run_oneshot = |n: u32, config: EngineConfig| {
        let mut e = Engine::new(config, 42);
        for i in 0..n {
            e.add_job(JobSpec::new(i, 0, window), Box::new(Uniform::single()));
        }
        e.run().slots_run
    };
    let mut group = c.benchmark_group("engine/kernel");
    group.throughput(Throughput::Elements(window));
    for n in [1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("aloha/exact", n), &n, |b, &n| {
            b.iter(|| run_aloha(n, EngineConfig::default().dense()));
        });
        group.bench_with_input(BenchmarkId::new("aloha/vectorized", n), &n, |b, &n| {
            b.iter(|| run_aloha(n, EngineConfig::default().vectorized().dense()));
        });
        group.bench_with_input(BenchmarkId::new("oneshot/exact", n), &n, |b, &n| {
            b.iter(|| run_oneshot(n, EngineConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("oneshot/vectorized", n), &n, |b, &n| {
            b.iter(|| run_oneshot(n, EngineConfig::default().vectorized()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slot_throughput,
    bench_trace_overhead,
    bench_jammer_overhead,
    bench_scheduling,
    bench_trial_reuse,
    bench_kernel
);
criterion_main!(benches);
