//! Criterion microbenchmarks for the protocols: full ALIGNED and PUNCTUAL
//! window executions, the size-estimation subroutine, the pecking-order
//! tracker, and the baselines on a common batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcr_baselines::{BinaryExponentialBackoff, Sawtooth};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_core::aligned::tracker::Tracker;
use dcr_core::punctual::PunctualParams;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::job::JobSpec;
use dcr_sim::slot::Feedback;

fn bench_aligned_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/aligned");
    for class in [9u32, 11, 13] {
        let w = 1u64 << class;
        group.throughput(Throughput::Elements(w));
        group.bench_with_input(BenchmarkId::new("class", class), &class, |b, &class| {
            let params = AlignedParams::new(1, 2, class);
            b.iter(|| {
                let mut e = Engine::new(EngineConfig::aligned(), 7);
                for i in 0..8 {
                    e.add_job(
                        JobSpec::new(i, 0, 1 << class),
                        Box::new(AlignedProtocol::new(params)),
                    );
                }
                e.run().successes()
            });
        });
    }
    group.finish();
}

fn bench_punctual_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/punctual");
    group.sample_size(20);
    for exp in [12u32, 14] {
        let w = 1u64 << exp;
        group.throughput(Throughput::Elements(w));
        group.bench_with_input(BenchmarkId::new("window", w), &w, |b, &w| {
            b.iter(|| {
                let mut e = Engine::new(EngineConfig::default(), 7);
                for i in 0..8 {
                    e.add_job(
                        JobSpec::new(i, 0, w),
                        Box::new(PunctualProtocol::new(PunctualParams::laptop())),
                    );
                }
                e.run().successes()
            });
        });
    }
    group.finish();
}

fn bench_tracker_replay(c: &mut Criterion) {
    // Pure tracker replay over a synthetic history — the per-slot cost every
    // live job pays.
    let mut group = c.benchmark_group("protocols/tracker");
    let slots = 1u64 << 12;
    group.throughput(Throughput::Elements(slots));
    for top in [10u32, 14] {
        group.bench_with_input(BenchmarkId::new("top_class", top), &top, |b, &top| {
            let params = AlignedParams::new(1, 2, 8);
            b.iter(|| {
                let mut tr = Tracker::new(params, top, 0);
                for t in 0..slots {
                    let _ = tr.begin_slot(t);
                    tr.end_slot(t, &Feedback::Silent);
                }
                tr.steps_of(top)
            });
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/baselines");
    let w = 1u64 << 12;
    group.throughput(Throughput::Elements(w));
    group.bench_function("beb_batch32", |b| {
        b.iter(|| {
            let mut e = Engine::new(EngineConfig::default(), 7);
            for i in 0..32 {
                e.add_job(
                    JobSpec::new(i, 0, w),
                    Box::new(BinaryExponentialBackoff::new()),
                );
            }
            e.run().successes()
        });
    });
    group.bench_function("sawtooth_batch32", |b| {
        b.iter(|| {
            let mut e = Engine::new(EngineConfig::default(), 7);
            for i in 0..32 {
                e.add_job(JobSpec::new(i, 0, w), Box::new(Sawtooth::new()));
            }
            e.run().successes()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aligned_window,
    bench_punctual_window,
    bench_tracker_replay,
    bench_baselines
);
criterion_main!(benches);
