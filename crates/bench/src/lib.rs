//! # dcr-bench — the experiment harness
//!
//! Regenerates every figure and quantitative claim of *Contention
//! Resolution with Message Deadlines* (SPAA 2020). The paper is a theory
//! paper — its "evaluation" is its lemmas — so each experiment here turns
//! one claim into a measured table whose *shape* must match the claim. The
//! experiment ↔ claim map lives in `DESIGN.md` §4 and the measured results
//! in `EXPERIMENTS.md` at the workspace root.
//!
//! Run everything with `cargo run --release -p dcr-bench --bin experiments`
//! (add an experiment id like `e7` to run one; `--quick` shrinks trial
//! counts; `--seed N` replays).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod experiments;
pub mod report;
pub mod runspec;

pub use config::ExpConfig;
pub use report::{ExpOutput, ReportBuilder};

/// All experiment ids in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
    "e14", "e15", "e16", "e17", "e18", "e19", "e20", "a1", "a2",
];

/// Run one experiment by id, returning its rendered text report.
///
/// Thin wrapper over [`run_experiment_report`] for callers that only want
/// the human-readable output.
pub fn run_experiment(id: &str, cfg: &ExpConfig) -> Option<String> {
    run_experiment_report(id, cfg).map(|out| out.text)
}

/// Run one experiment by id, returning its full [`ExpOutput`]: the
/// rendered text plus the structured [`dcr_stats::ExperimentReport`]
/// artifact (per-cell metrics with confidence intervals, claim checks,
/// timing, provenance).
pub fn run_experiment_report(id: &str, cfg: &ExpConfig) -> Option<ExpOutput> {
    let out = match id {
        "fig1" => experiments::fig1::run(cfg),
        "e1" => experiments::e1_contention::run(cfg),
        "e2" => experiments::e2_uniform::run(cfg),
        "e3" => experiments::e3_starvation::run(cfg),
        "e4" => experiments::e4_estimation::run(cfg),
        "e5" => experiments::e5_active_steps::run(cfg),
        "e6" => experiments::e6_truncation::run(cfg),
        "e7" => experiments::e7_aligned_hp::run(cfg),
        "e8" => experiments::e8_leader::run(cfg),
        "e9" => experiments::e9_anarchist::run(cfg),
        "e10" => experiments::e10_endtoend::run(cfg),
        "e11" => experiments::e11_jamming::run(cfg),
        "e12" => experiments::e12_clock::run(cfg),
        "e13" => experiments::e13_energy::run(cfg),
        "e14" => experiments::e14_makespan::run(cfg),
        "e15" => experiments::e15_punctual_jamming::run(cfg),
        "e16" => experiments::e16_adversarial::run(cfg),
        "e17" => experiments::e17_latency::run(cfg),
        "e18" => experiments::e18_breakdown::run(cfg),
        "e19" => experiments::e19_estimation_fidelity::run(cfg),
        "e20" => experiments::e20_scale::run(cfg),
        "a1" => experiments::a1_no_deferral::run(cfg),
        "a2" => experiments::a2_params::run(cfg),
        _ => return None,
    };
    Some(out)
}
