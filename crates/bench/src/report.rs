//! Structured output plumbing for the experiment modules.
//!
//! Each experiment produces an [`ExpOutput`]: the human-readable text it
//! always produced, plus a machine-readable
//! [`dcr_stats::ExperimentReport`] carrying the same numbers. The
//! [`ReportBuilder`] keeps the instrumentation at the measurement site to
//! one line per quantity: experiments `param()` their knobs as they pick
//! them, `row()`/`prop()` each cell as they measure it, `check()` each
//! claim as they assert it, and `finish()` stamps timing and provenance.

use dcr_stats::report::SCHEMA_VERSION;
use dcr_stats::{CheckResult, ExperimentReport, MetricRow, Param, Proportion, Provenance, Timing};
use std::fmt::Display;
use std::time::Instant;

/// One experiment's complete output: rendered text plus the structured
/// artifact with the same measurements.
#[derive(Debug, Clone)]
pub struct ExpOutput {
    /// The human-readable report (tables and shape-check commentary).
    pub text: String,
    /// The machine-readable artifact.
    pub report: ExperimentReport,
}

/// Incremental [`ExperimentReport`] builder used inside experiment `run`
/// functions. Construction records the start instant; [`finish`] computes
/// wall-clock timing and captures provenance.
///
/// [`finish`]: ReportBuilder::finish
pub struct ReportBuilder {
    report: ExperimentReport,
    started: Instant,
    slots: u64,
    trials: u64,
}

impl ReportBuilder {
    /// Start a report for experiment `id`. `seed`/`quick` come from the
    /// run's `ExpConfig` and are recorded verbatim for replay.
    pub fn new(id: &str, title: impl Into<String>, cfg: &crate::config::ExpConfig) -> Self {
        Self {
            report: ExperimentReport {
                schema_version: SCHEMA_VERSION,
                experiment: id.to_string(),
                title: title.into(),
                seed: cfg.seed,
                quick: cfg.quick,
                params: Vec::new(),
                rows: Vec::new(),
                checks: Vec::new(),
                timing: Timing::default(),
                provenance: Provenance::default(),
            },
            started: Instant::now(),
            slots: 0,
            trials: 0,
        }
    }

    /// Record one named parameter of the run.
    pub fn param(&mut self, name: &str, value: impl Display) -> &mut Self {
        self.report.params.push(Param {
            name: name.to_string(),
            value: value.to_string(),
        });
        self
    }

    /// Reject non-finite measurements before they reach the artifact:
    /// serde_json serializes NaN/∞ as `null`, which silently corrupts
    /// `--json` artifacts and the CI perf-smoke baseline comparison. Loud
    /// in debug builds; in release the row is dropped with a warning so a
    /// long sweep still completes.
    fn finite_or_warn(cell: &str, metric: &str, values: &[f64]) -> bool {
        let ok = values.iter().all(|v| v.is_finite());
        debug_assert!(
            ok,
            "non-finite metric row {cell}/{metric}: {values:?} \
             (would serialize as null in the JSON artifact)"
        );
        if !ok {
            eprintln!("warning: dropping non-finite metric row {cell}/{metric}: {values:?}");
        }
        ok
    }

    /// Record an exact (CI-free) metric value for one cell. Non-finite
    /// values are rejected (see [`ReportBuilder::finite_or_warn`]).
    pub fn row(&mut self, cell: impl Display, metric: &str, value: f64) -> &mut Self {
        let cell = cell.to_string();
        if !Self::finite_or_warn(&cell, metric, &[value]) {
            return self;
        }
        self.report.rows.push(MetricRow {
            cell,
            metric: metric.to_string(),
            value,
            ci_lo: None,
            ci_hi: None,
            n: None,
        });
        self
    }

    /// Record an estimated metric with an explicit confidence interval and
    /// sample count. Non-finite values or interval endpoints are rejected
    /// (see [`ReportBuilder::finite_or_warn`]).
    pub fn row_ci(
        &mut self,
        cell: impl Display,
        metric: &str,
        value: f64,
        ci: (f64, f64),
        n: u64,
    ) -> &mut Self {
        let cell = cell.to_string();
        if !Self::finite_or_warn(&cell, metric, &[value, ci.0, ci.1]) {
            return self;
        }
        self.report.rows.push(MetricRow {
            cell,
            metric: metric.to_string(),
            value,
            ci_lo: Some(ci.0),
            ci_hi: Some(ci.1),
            n: Some(n),
        });
        self
    }

    /// Record a binomial proportion with its Wilson 95% interval.
    pub fn prop(&mut self, cell: impl Display, metric: &str, p: &Proportion) -> &mut Self {
        self.row_ci(cell, metric, p.estimate(), p.wilson95(), p.trials)
    }

    /// Record a pass/fail claim check.
    pub fn check(&mut self, name: &str, passed: bool, detail: impl Display) -> &mut Self {
        self.report.checks.push(CheckResult {
            name: name.to_string(),
            passed,
            detail: detail.to_string(),
        });
        self
    }

    /// Account `slots` simulated channel slots toward the throughput
    /// numbers.
    pub fn add_slots(&mut self, slots: u64) -> &mut Self {
        self.slots += slots;
        self
    }

    /// Account `trials` executed Monte-Carlo trials.
    pub fn add_trials(&mut self, trials: u64) -> &mut Self {
        self.trials += trials;
        self
    }

    /// Finalize: stamp wall-clock timing, throughput, and provenance, and
    /// pair the artifact with its rendered text.
    pub fn finish(mut self, text: String) -> ExpOutput {
        let wall = self.started.elapsed().as_secs_f64();
        self.report.timing = Timing {
            wall_secs: wall,
            trials: self.trials,
            secs_per_trial: if self.trials > 0 {
                wall / self.trials as f64
            } else {
                0.0
            },
            slots_simulated: self.slots,
            slots_per_sec: if self.slots > 0 && wall > 0.0 {
                self.slots as f64 / wall
            } else {
                0.0
            },
        };
        self.report.provenance =
            Provenance::capture_with_threads(dcr_sim::runner::configured_workers(u64::MAX) as u64);
        ExpOutput {
            text,
            report: self.report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpConfig;

    #[test]
    fn builder_assembles_full_report() {
        let cfg = ExpConfig::quick();
        let mut b = ReportBuilder::new("e0", "demo", &cfg);
        b.param("grid", "[1, 2, 3]")
            .row("cell_a", "exact", 7.0)
            .row_ci("cell_b", "estimated", 0.5, (0.4, 0.6), 100)
            .prop("cell_c", "proportion", &Proportion::new(30, 60))
            .check("claim", true, "held everywhere")
            .add_slots(10_000)
            .add_trials(60);
        let out = b.finish("text body".into());
        assert_eq!(out.text, "text body");
        let r = &out.report;
        assert_eq!(r.experiment, "e0");
        assert_eq!(r.seed, cfg.seed);
        assert!(r.quick);
        assert_eq!(r.params.len(), 1);
        assert_eq!(r.rows.len(), 3);
        assert!(r.all_checks_passed());
        assert_eq!(r.timing.trials, 60);
        assert_eq!(r.timing.slots_simulated, 10_000);
        assert!(r.timing.wall_secs >= 0.0);
        assert!(r.provenance.threads >= 1);
        // The proportion row carries its Wilson interval and count.
        let row = r.row("cell_c", "proportion").unwrap();
        assert_eq!(row.n, Some(60));
        assert!(row.ci_lo.unwrap() < 0.5 && row.ci_hi.unwrap() > 0.5);
    }

    // Regression for the NaN-to-null artifact corruption: a non-finite
    // metric (e.g. `SimReport::mean_transmissions()` on an empty instance)
    // must never reach the JSON artifact. Debug builds fail fast at the
    // measurement site; release builds drop the row and keep going.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite metric row"))]
    fn non_finite_row_never_reaches_the_artifact() {
        let cfg = ExpConfig::quick();
        let mut b = ReportBuilder::new("e0", "demo", &cfg);
        b.row("empty", "mean_tx", f64::NAN);
        // Only reached in release builds (debug panics above): the row was
        // dropped, so nothing non-finite can serialize as null.
        let out = b.finish("t".into());
        assert!(out.report.rows.is_empty());
        assert!(serde_json::to_string(&out.report)
            .unwrap()
            .contains("\"rows\":[]"));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite metric row"))]
    fn non_finite_ci_endpoint_never_reaches_the_artifact() {
        let cfg = ExpConfig::quick();
        let mut b = ReportBuilder::new("e0", "demo", &cfg);
        b.row_ci("cell", "m", 0.5, (f64::NEG_INFINITY, 0.6), 10);
        assert!(b.finish("t".into()).report.rows.is_empty());
    }

    #[test]
    fn finite_rows_still_pass_the_guard() {
        let cfg = ExpConfig::quick();
        let mut b = ReportBuilder::new("e0", "demo", &cfg);
        b.row("c", "m", 0.0).row_ci("c", "m2", 1.0, (0.9, 1.1), 5);
        assert_eq!(b.finish("t".into()).report.rows.len(), 2);
    }

    #[test]
    fn deterministic_view_of_built_report_is_stable() {
        let cfg = ExpConfig::quick();
        let build = || {
            let mut b = ReportBuilder::new("e0", "demo", &cfg);
            b.row("c", "m", 1.25).check("ok", true, "d");
            b.finish("t".into()).report.deterministic_view()
        };
        assert_eq!(build(), build());
    }
}
