//! **E12 — the price of clocklessness**: PUNCTUAL vs. the global-clock
//! shortcut.
//!
//! Section 4 motivates PUNCTUAL by noting that *with* a global clock,
//! every job could trim its own window and run ALIGNED directly — no
//! leader election, no round overhead. We run identical unaligned traffic
//! under CLOCKED (trim + ALIGNED, clock supplied by the engine) and under
//! PUNCTUAL (clock bootstrapped via leaders), isolating exactly what the
//! timekeeping machinery costs: delivery rate and channel accesses.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::clocked::{ClockedParams, ClockedProtocol};
use dcr_core::punctual::PunctualParams;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::rng::{SeedSeq, StreamLabel};
use dcr_sim::runner::run_trials;
use dcr_stats::Table;
use dcr_workloads::generators::{poisson, thin_to_feasible};
use dcr_workloads::Instance;

fn make_instance(cfg: &ExpConfig, window: u64) -> Instance {
    let horizon = if cfg.quick { 1u64 << 15 } else { 1u64 << 17 };
    let mut rng = SeedSeq::new(cfg.seed).rng(StreamLabel::Workload, 0xE12);
    let raw = poisson(0.01, horizon, &[window], &mut rng);
    thin_to_feasible(raw, 1.0 / 16.0)
}

struct Row {
    delivered: f64,
    mean_tx: f64,
    mean_access: f64,
}

fn measure(cfg: &ExpConfig, instance: &Instance, clocked: bool) -> Row {
    let trials = cfg.cell_trials(24);
    let results = run_trials(trials, cfg.seed ^ 0xE12E12, |_, seed| {
        let r = if clocked {
            run_instance(
                instance,
                EngineConfig::aligned(),
                None,
                seed,
                ClockedProtocol::factory(ClockedParams::laptop()),
            )
        } else {
            run_instance(
                instance,
                EngineConfig::default(),
                None,
                seed,
                PunctualProtocol::factory(PunctualParams::laptop()),
            )
        };
        (
            r.success_fraction(),
            r.mean_transmissions(),
            r.mean_accesses(),
        )
    });
    let n = results.len() as f64;
    Row {
        delivered: results.iter().map(|t| t.value.0).sum::<f64>() / n,
        mean_tx: results.iter().map(|t| t.value.1).sum::<f64>() / n,
        mean_access: results.iter().map(|t| t.value.2).sum::<f64>() / n,
    }
}

/// Run E12.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let windows: &[u64] = if cfg.quick {
        &[1 << 13]
    } else {
        &[1 << 12, 1 << 13, 1 << 14]
    };
    let mut rb = ReportBuilder::new("e12", "E12: the price of clocklessness", cfg);
    rb.param("windows", format!("{windows:?}"))
        .param("trials_per_cell", cfg.cell_trials(24));
    let mut worst_gap = f64::NEG_INFINITY;
    let mut table = Table::new(vec![
        "window",
        "clock",
        "delivered",
        "mean tx/job",
        "mean radio-on slots/job",
    ])
    .with_title(format!(
        "E12: the price of clocklessness — identical Poisson traffic, seed {}",
        cfg.seed
    ));
    for &w in windows {
        let instance = make_instance(cfg, w);
        let mut delivered = [0.0f64; 2];
        for (i, (label, clocked)) in [("global (CLOCKED)", true), ("none (PUNCTUAL)", false)]
            .into_iter()
            .enumerate()
        {
            let row = measure(cfg, &instance, clocked);
            delivered[i] = row.delivered;
            let id = format!("w={w},{}", if clocked { "clocked" } else { "punctual" });
            rb.row(&id, "delivered_fraction", row.delivered)
                .row(&id, "mean_tx_per_job", row.mean_tx)
                .row(&id, "mean_radio_on_per_job", row.mean_access)
                .add_trials(cfg.cell_trials(24));
            table.row(vec![
                format!("{w} (n={})", instance.n()),
                label.into(),
                format!("{:.3}", row.delivered),
                format!("{:.1}", row.mean_tx),
                format!("{:.0}", row.mean_access),
            ]);
        }
        worst_gap = worst_gap.max(delivered[1] - delivered[0]);
    }
    let mut out = table.render();
    out.push_str(
        "\nshape check: CLOCKED ≥ PUNCTUAL on delivery (the clock is free \
         information); PUNCTUAL pays extra transmissions for start messages, \
         beacons, and claims — the measured cost of bootstrapping time\n",
    );
    rb.check(
        "clocked_at_least_punctual",
        worst_gap <= 0.05,
        format!("max punctual-minus-clocked delivery gap {worst_gap:.3}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocked_delivers_on_unaligned_traffic() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg, 1 << 13);
        let row = measure(&cfg, &inst, true);
        assert!(row.delivered > 0.85, "delivered={}", row.delivered);
    }

    #[test]
    fn punctual_pays_more_transmissions() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg, 1 << 13);
        let clocked = measure(&cfg, &inst, true);
        let punctual = measure(&cfg, &inst, false);
        assert!(
            punctual.mean_tx > clocked.mean_tx,
            "punctual {} vs clocked {}",
            punctual.mean_tx,
            clocked.mean_tx
        );
    }
}
