//! **E14 — makespan scaling of the backoff families** (the paper's
//! related-work backdrop, refs [8, 13, 45, 52, 91]).
//!
//! Why does the paper need new algorithms at all? Because the classic
//! backoff family is makespan-suboptimal: for a batch of `n` jobs,
//! monotone windowed backoff (geometric/linear/quadratic) needs
//! `ω(n)` slots — binary exponential backoff provably `Θ(n log n)` —
//! while the non-monotone *sawtooth* finishes in `Θ(n)`. We sweep `n`
//! over two decades, measure the slot of the last delivery, and fit the
//! scaling exponent `makespan ∝ n^β` (with BEB also showing its log
//! factor as `β` slightly above 1 and a larger constant).

use crate::config::ExpConfig;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::windowed::{Schedule, WindowedBackoff};
use dcr_baselines::Sawtooth;
use dcr_sim::engine::{Engine, EngineConfig, Protocol};
use dcr_sim::job::JobSpec;
use dcr_sim::runner::run_trials;
use dcr_stats::{loglog_slope, Summary, Table};

/// Makespan of one batch run: slot index of the last delivery (or the
/// horizon if someone never finished).
fn makespan(n: u32, proto: &str, seed: u64) -> u64 {
    // Horizon generous enough that essentially every run completes.
    let horizon = u64::from(n) * 64 + 4096;
    let mut e = Engine::new(EngineConfig::default(), seed);
    for i in 0..n {
        let p: Box<dyn Protocol> = match proto {
            "sawtooth" => Box::new(Sawtooth::new()),
            "geometric (BEB)" => Box::new(WindowedBackoff::new(Schedule::beb())),
            "linear" => Box::new(WindowedBackoff::new(Schedule::Linear { first: 1, step: 1 })),
            "quadratic" => Box::new(WindowedBackoff::new(Schedule::Quadratic { first: 1 })),
            _ => unreachable!(),
        };
        e.add_job(JobSpec::new(i, 0, horizon), p);
    }
    let r = e.run();
    r.per_job()
        .map(|(_, o)| o.slot().map_or(horizon, |s| s + 1))
        .max()
        .unwrap_or(0)
}

fn sweep(cfg: &ExpConfig, n: u32, proto: &str) -> Summary {
    let trials = cfg.cell_trials(40);
    let results = run_trials(trials, cfg.seed ^ (u64::from(n) << 18), |_, seed| {
        makespan(n, proto, seed) as f64
    });
    Summary::from_iter(results.into_iter().map(|t| t.value))
}

/// Run E14.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    // Quick mode still sweeps up to n=1024: quadratic's superlinearity
    // only separates from sawtooth's Θ(n) in the last couple of octaves,
    // and a fit truncated at n=256 puts the `_slower_than_sawtooth`
    // checks inside the fit noise.
    let ns: &[u32] = if cfg.quick {
        &[16, 64, 256, 1024]
    } else {
        &[16, 32, 64, 128, 256, 512, 1024]
    };
    let protos = ["sawtooth", "geometric (BEB)", "linear", "quadratic"];
    let mut rb = ReportBuilder::new("e14", "E14: batch makespan of the backoff family", cfg);
    rb.param("ns", format!("{ns:?}"))
        .param("trials_per_cell", cfg.cell_trials(40));
    let mut out = String::new();
    let mut fits = Vec::new();
    for proto in protos {
        let mut table = Table::new(vec!["n", "mean makespan", "sd", "makespan / n"])
            .with_title(format!("E14: batch makespan, {proto}, seed {}", cfg.seed));
        let mut points = Vec::new();
        for &n in ns {
            let s = sweep(cfg, n, proto);
            points.push((f64::from(n), s.mean()));
            let id = format!("{proto},n={n}");
            rb.row(&id, "mean_makespan", s.mean())
                .row(&id, "makespan_per_job", s.mean() / f64::from(n))
                .add_trials(cfg.cell_trials(40))
                .add_slots((s.mean() as u64).saturating_mul(cfg.cell_trials(40)));
            table.row(vec![
                n.to_string(),
                format!("{:.0}", s.mean()),
                format!("{:.0}", s.std_dev()),
                format!("{:.2}", s.mean() / f64::from(n)),
            ]);
        }
        out.push_str(&table.render());
        if let Some(fit) = loglog_slope(&points, None) {
            out.push_str(&format!(
                "makespan ∝ n^{:.2} (R²={:.2})\n\n",
                fit.slope, fit.r2
            ));
            rb.row(proto, "loglog_slope", fit.slope);
            fits.push((proto, fit.slope));
        }
    }
    out.push_str(
        "shape check: sawtooth's makespan/n column is flat (Θ(n)); the monotone \
         schedules grow super-linearly — the separation that motivates the paper's \
         non-monotone machinery\n",
    );
    let sawtooth_slope = fits.iter().find(|(p, _)| *p == "sawtooth").map(|(_, s)| *s);
    if let Some(s) = sawtooth_slope {
        rb.check(
            "sawtooth_linear",
            s < 1.25,
            format!("sawtooth makespan exponent {s:.2}"),
        );
    }
    for (proto, s) in &fits {
        if *proto != "sawtooth" {
            if let Some(st) = sawtooth_slope {
                rb.check(
                    &format!(
                        "{}_slower_than_sawtooth",
                        proto.replace([' ', '(', ')'], "")
                    ),
                    *s >= st - 0.05,
                    format!("{proto} exponent {s:.2} vs sawtooth {st:.2}"),
                );
            }
        }
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_is_linear_ish() {
        let cfg = ExpConfig::quick();
        let small = sweep(&cfg, 32, "sawtooth");
        let large = sweep(&cfg, 256, "sawtooth");
        let ratio_small = small.mean() / 32.0;
        let ratio_large = large.mean() / 256.0;
        // Θ(n): the per-job cost must not blow up with n.
        assert!(
            ratio_large < 2.5 * ratio_small,
            "sawtooth per-job cost grew: {ratio_small} -> {ratio_large}"
        );
    }

    #[test]
    fn monotone_schedules_are_superlinear() {
        let cfg = ExpConfig::quick();
        for proto in ["geometric (BEB)", "linear"] {
            let small = sweep(&cfg, 32, proto);
            let large = sweep(&cfg, 256, proto);
            assert!(
                large.mean() / 256.0 > small.mean() / 32.0,
                "{proto} should have growing per-job cost"
            );
        }
    }

    #[test]
    fn makespan_positive_and_batch_completes() {
        let m = makespan(16, "sawtooth", 3);
        assert!(m >= 16, "16 deliveries need at least 16 slots, got {m}");
        assert!(m < 16 * 64 + 4096, "must complete before the horizon");
    }
}
