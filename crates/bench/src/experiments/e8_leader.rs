//! **E8 — Lemmas 16–17**: leader election.
//!
//! Two claims: (Lemma 16) the total contention in every leader-election
//! slot stays below any constant ε for slack-feasible instances — the
//! pullback probability `1/(w·polylog w)` is that small on purpose; and
//! (Lemma 17) a class with `|S| ≥ w/log³w` jobs elects a leader w.h.p.
//! during the pullback. We sweep the batch size across the density
//! threshold and measure election frequency and per-election-slot declared
//! contention from the engine's trace.

use crate::config::ExpConfig;
use crate::experiments::util::find_round_anchor;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::punctual::messages::KIND_CLAIM;
use dcr_core::punctual::{PunctualParams, ROUND_LEN};
use dcr_core::PunctualProtocol;
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::job::JobSpec;
use dcr_sim::message::Payload;
use dcr_sim::runner::run_trials;
use dcr_sim::trace::SlotOutcome;
use dcr_stats::{Proportion, Table};

const WINDOW: u64 = 1 << 14;

fn params() -> PunctualParams {
    PunctualParams::laptop()
}

/// One trial: (leader elected?, mean election-slot contention, delivered
/// fraction).
fn trial(n: u32, seed: u64) -> (bool, f64, f64) {
    let mut e = Engine::new(EngineConfig::default().with_trace(), seed);
    for i in 0..n {
        e.add_job(
            JobSpec::new(i, 0, WINDOW),
            Box::new(PunctualProtocol::new(params())),
        );
    }
    let r = e.run();
    let trace = r.trace.as_ref().expect("trace");
    let anchor = find_round_anchor(trace).unwrap_or(0);

    // Number of slots `s` in `[start, end)` with `(s - anchor) % ROUND_LEN
    // == 7`; silent-gap records can cover many rounds in one record.
    let pos7_in = |start: u64, end: u64| -> u64 {
        if end <= start {
            return 0;
        }
        let first = start + (7 + ROUND_LEN - (start - anchor) % ROUND_LEN) % ROUND_LEN;
        if first >= end {
            0
        } else {
            (end - 1 - first) / ROUND_LEN + 1
        }
    };
    let mut elected = false;
    let mut contention_sum = 0.0;
    let mut election_slots = 0u64;
    for rec in trace {
        let end = rec.slot + rec.covered_slots();
        if end <= anchor {
            continue;
        }
        if rec.is_silent() {
            // Every covered election slot counts; a fast-forwarded gap means
            // every job was asleep, i.e. zero declared contention there.
            election_slots += pos7_in(rec.slot.max(anchor), end);
            if rec.slot >= anchor && (rec.slot - anchor) % ROUND_LEN == 7 {
                contention_sum += rec.declared_contention;
            }
        } else if rec.slot >= anchor && (rec.slot - anchor) % ROUND_LEN == 7 {
            election_slots += 1;
            contention_sum += rec.declared_contention;
            if let SlotOutcome::Success { .. } = rec.outcome {
                if matches!(rec.payload, Some(Payload::Control(c)) if c.kind == KIND_CLAIM) {
                    elected = true;
                }
            }
        }
    }
    let mean_c = if election_slots == 0 {
        0.0
    } else {
        contention_sum / election_slots as f64
    };
    (elected, mean_c, r.success_fraction())
}

struct Cell {
    elected: Proportion,
    contention: f64,
    delivered: f64,
}

/// Trials per cell, floored at 40 even in quick mode: the election-rate
/// check compares a ~0.8 proportion against a 0.6 threshold, and at
/// quick's 10 trials that comparison is a coin flip on the seed
/// realization, not a check of the election logic.
fn cell_trials(cfg: &ExpConfig) -> u64 {
    cfg.cell_trials(60).max(40)
}

fn sweep(cfg: &ExpConfig, n: u32) -> Cell {
    let trials = cell_trials(cfg);
    let results = run_trials(trials, cfg.seed ^ (u64::from(n) << 16), |_, seed| {
        trial(n, seed)
    });
    let hits = results.iter().filter(|t| t.value.0).count() as u64;
    Cell {
        elected: Proportion::new(hits, trials),
        contention: results.iter().map(|t| t.value.1).sum::<f64>() / trials as f64,
        delivered: results.iter().map(|t| t.value.2).sum::<f64>() / trials as f64,
    }
}

/// Run E8.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let wr = WINDOW / ROUND_LEN;
    let threshold = (wr as f64 / (wr as f64).log2()) as u32;
    let ns: &[u32] = if cfg.quick {
        &[1, 64]
    } else {
        &[1, 4, 16, 32, 64, 96]
    };
    let mut rb = ReportBuilder::new("e8", "E8 (Lemmas 16-17): leader election", cfg);
    rb.param("window", WINDOW)
        .param("density_threshold", threshold)
        .param("ns", format!("{ns:?}"))
        .param("trials_per_cell", cell_trials(cfg));
    let mut table = Table::new(vec![
        "n (jobs)",
        "P[leader elected]",
        "mean election-slot contention",
        "delivered fraction",
    ])
    .with_title(format!(
        "E8 (Lemmas 16–17): leader election, w={WINDOW} ({wr} rounds), \
         density threshold w_r/log w_r ≈ {threshold}, seed {}",
        cfg.seed
    ));
    let mut cells = Vec::new();
    for &n in ns {
        let c = sweep(cfg, n);
        let id = format!("n={n}");
        rb.prop(&id, "p_leader_elected", &c.elected)
            .row(&id, "election_slot_contention", c.contention)
            .row(&id, "delivered_fraction", c.delivered)
            .add_trials(cell_trials(cfg))
            .add_slots(cell_trials(cfg) * WINDOW);
        table.row(vec![
            n.to_string(),
            c.elected.to_string(),
            format!("{:.3}", c.contention),
            format!("{:.3}", c.delivered),
        ]);
        cells.push((n, c));
    }
    let mut out = table.render();
    let max_contention = cells
        .iter()
        .map(|(_, c)| c.contention)
        .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "\nshape checks: election probability → 1 above the threshold; \
         election-slot contention stays ≤ ε (max observed {max_contention:.3}, Lemma 16 \
         wants an arbitrarily small constant)\n"
    ));
    rb.row("overall", "max_election_contention", max_contention)
        .check(
            "lemma16_contention_small",
            max_contention < 0.5,
            format!("max election-slot contention {max_contention:.3}"),
        );
    if let Some((_, dense)) = cells.iter().max_by_key(|(n, _)| *n) {
        rb.check(
            "lemma17_dense_class_elects",
            dense.elected.estimate() > 0.6,
            format!("dense-class election rate {}", dense.elected),
        );
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_class_elects_leader() {
        // quick mode still gets `cell_trials`' 40-trial floor, enough
        // that the 0.6 threshold is not a coin flip on the realization.
        let c = sweep(&ExpConfig::quick(), 64);
        assert!(c.elected.estimate() > 0.6, "{}", c.elected);
    }

    #[test]
    fn election_contention_stays_small() {
        let c = sweep(&ExpConfig::quick(), 64);
        assert!(c.contention < 0.5, "contention={}", c.contention);
    }

    #[test]
    fn lone_job_still_delivers() {
        let c = sweep(&ExpConfig::quick(), 1);
        assert!(c.delivered > 0.85, "delivered={}", c.delivered);
    }
}
