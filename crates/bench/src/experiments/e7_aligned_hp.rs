//! **E7 — Theorem 14**: ALIGNED delivers each job w.h.p. *in its window
//! size*.
//!
//! Claim: `Pr[job j fails] ≤ 1/w^Θ(λ)` — on log–log axes, failure
//! frequency vs window size is a line with negative slope, steeper for
//! larger λ. We run single-class batches (n jobs, window `2^ℓ`) across a
//! sweep of ℓ and two λ values and fit the decay.

use crate::config::ExpConfig;
use crate::experiments::util::run_single_class;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_sim::runner::run_trials;
use dcr_stats::{loglog_slope, Proportion, Table};

const N_JOBS: usize = 8;

/// Per-job failure frequency for a batch of `N_JOBS` in window `2^class`.
fn cell(cfg: &ExpConfig, class: u32, lambda: u64, trials: u64) -> Proportion {
    let params = AlignedParams::new(lambda, 2, class);
    let results = run_trials(
        trials,
        cfg.seed ^ (u64::from(class) << 32) ^ lambda,
        |_, seed| {
            let r = run_single_class(params, class, N_JOBS, 0.0, seed);
            (N_JOBS - r.successes) as u64
        },
    );
    let failures: u64 = results.iter().map(|t| t.value).sum();
    Proportion::new(failures, trials * N_JOBS as u64)
}

/// Stressed cell: the batch grows proportionally with the window
/// (`n = w/divisor`) and a `p_jam = 1/2` adversary attacks every success —
/// the regime where failures are frequent enough to *measure* the decay
/// exponent instead of just bounding it.
fn stressed_cell(
    cfg: &ExpConfig,
    class: u32,
    lambda: u64,
    divisor: usize,
    trials: u64,
) -> Proportion {
    let n = ((1usize << class) / divisor).max(1);
    let params = AlignedParams::new(lambda, 2, class);
    let results = run_trials(
        trials,
        cfg.seed ^ (u64::from(class) << 40) ^ (lambda << 8) ^ divisor as u64,
        |_, seed| {
            let r = run_single_class(params, class, n, 0.5, seed);
            (n - r.successes) as u64
        },
    );
    let failures: u64 = results.iter().map(|t| t.value).sum();
    Proportion::new(failures, trials * n as u64)
}

/// Run E7.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    // Smallest viable class per λ: the schedule 2λ(ℓ² + n_ℓ − 1) must fit
    // inside 2^ℓ even with the τ-inflated estimate.
    let sweeps: &[(u64, &[u32])] = if cfg.quick {
        &[(1, &[8, 10, 12]), (2, &[9, 11, 13])]
    } else {
        &[(1, &[8, 9, 10, 11, 12, 13]), (2, &[9, 10, 11, 12, 13, 14])]
    };
    let mut rb = ReportBuilder::new("e7", "E7 (Theorem 14): ALIGNED per-job failure decay", cfg);
    rb.param("n_jobs", N_JOBS)
        .param("trials_per_cell", cfg.cell_trials(500));
    let mut out = String::new();
    for (lambda, classes) in sweeps {
        let mut table = Table::new(vec!["ℓ", "w = 2^ℓ", "per-job failure rate", "upper95"])
            .with_title(format!(
                "E7 (Theorem 14): ALIGNED batch of {N_JOBS}, λ={lambda}, τ=2, seed {}",
                cfg.seed
            ));
        let mut points = Vec::new();
        for &class in *classes {
            let trials = cfg.cell_trials(500);
            let p = cell(cfg, class, *lambda, trials);
            points.push(((1u64 << class) as f64, p.estimate()));
            rb.prop(format!("lambda={lambda},l={class}"), "per_job_failure", &p)
                .add_trials(trials)
                .add_slots(trials << class);
            table.row(vec![
                class.to_string(),
                (1u64 << class).to_string(),
                p.to_string(),
                format!("{:.2e}", p.upper95()),
            ]);
        }
        out.push_str(&table.render());
        if let Some(fit) = loglog_slope(&points, Some(1e-5)) {
            out.push_str(&format!(
                "failure ∝ w^{:.2} (R²={:.2}); Theorem 14 predicts a negative exponent that \
                 steepens with λ\n\n",
                fit.slope, fit.r2
            ));
            rb.row(format!("lambda={lambda}"), "loglog_slope", fit.slope)
                .check(
                    &format!("failure_decays_lambda{lambda}"),
                    fit.slope <= 0.0,
                    format!("fitted exponent {:.2}", fit.slope),
                );
        } else {
            out.push_str("no failures observed anywhere in the sweep\n\n");
            rb.check(
                &format!("failure_decays_lambda{lambda}"),
                true,
                "no failures observed anywhere in the sweep",
            );
        }
    }

    // Stressed regime: proportional load + half-rate jamming. Theorem 14
    // holds "for all λ, for sufficiently small γ"; the first two rows sit
    // deliberately ABOVE the γ threshold for their λ (under p_jam = 1/2,
    // a phase keeps pace with the halving schedule only when (3/4)^λ is
    // small enough), so their failure GROWS with w — the negative control.
    // The (λ=4, w/64) sweep is inside the stable regime and exhibits the
    // claimed polynomial decay.
    let stress_classes: &[u32] = if cfg.quick {
        &[9, 11, 13]
    } else {
        &[9, 10, 11, 12, 13, 14]
    };
    for (lambda, divisor, regime) in [
        (1u64, 32usize, "above γ-threshold"),
        (2, 32, "above γ-threshold"),
        (4, 64, "stable"),
    ] {
        let mut table = Table::new(vec!["ℓ", "n", "per-job failure rate"]).with_title(format!(
            "E7-stress ({regime}): n = w/{divisor}, p_jam = 0.5, λ={lambda}, τ=2, seed {}",
            cfg.seed
        ));
        let mut points = Vec::new();
        for &class in stress_classes {
            let trials = cfg.cell_trials(300);
            let p = stressed_cell(cfg, class, lambda, divisor, trials);
            points.push(((1u64 << class) as f64, p.estimate()));
            rb.prop(
                format!("stress,lambda={lambda},l={class}"),
                "per_job_failure",
                &p,
            )
            .add_trials(trials)
            .add_slots(trials << class);
            table.row(vec![
                class.to_string(),
                ((1usize << class) / divisor).max(1).to_string(),
                p.to_string(),
            ]);
        }
        out.push_str(&table.render());
        if let Some(fit) = loglog_slope(&points, Some(1e-5)) {
            out.push_str(&format!(
                "stressed failure ∝ w^{:.2} (R²={:.2}) — expect positive above the \
                 threshold, negative in the stable regime\n\n",
                fit.slope, fit.r2
            ));
            rb.row(format!("stress,lambda={lambda}"), "loglog_slope", fit.slope)
                .check(
                    &format!(
                        "stress_lambda{lambda}_{}",
                        if regime == "stable" {
                            "stable_decays"
                        } else {
                            "overload_grows"
                        }
                    ),
                    if regime == "stable" {
                        fit.slope <= 0.0
                    } else {
                        fit.slope >= 0.0
                    },
                    format!("fitted exponent {:.2}", fit.slope),
                );
        }
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rate_decreases_with_window() {
        let cfg = ExpConfig::quick();
        let small = cell(&cfg, 8, 1, 120);
        let large = cell(&cfg, 12, 1, 120);
        assert!(
            large.estimate() <= small.estimate(),
            "failure should not grow with w: {small} vs {large}"
        );
    }

    #[test]
    fn comfortable_window_nearly_never_fails() {
        let p = cell(&ExpConfig::quick(), 12, 1, 100);
        assert!(p.estimate() < 0.02, "{p}");
    }

    #[test]
    fn stressed_stable_regime_decays() {
        // λ=4, n=w/64, p_jam=0.5: failure must shrink as the window grows.
        let cfg = ExpConfig::quick();
        let small = stressed_cell(&cfg, 9, 4, 64, 150);
        let large = stressed_cell(&cfg, 13, 4, 64, 150);
        assert!(
            large.estimate() < small.estimate() || small.estimate() == 0.0,
            "stable stress should decay: {small} vs {large}"
        );
    }

    #[test]
    fn stressed_overloaded_regime_grows() {
        // λ=1 above the γ threshold under jamming: failure grows with w —
        // the negative control that shows the threshold is real.
        let cfg = ExpConfig::quick();
        let small = stressed_cell(&cfg, 9, 1, 32, 100);
        let large = stressed_cell(&cfg, 13, 1, 32, 100);
        assert!(
            large.estimate() > small.estimate(),
            "overload should worsen with scale: {small} vs {large}"
        );
    }
}
