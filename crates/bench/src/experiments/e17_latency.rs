//! **E17 — latency distributions** (beyond the paper).
//!
//! The paper guarantees *delivery by the deadline*, not low latency; the
//! coordination machinery (estimation phases, round structure, trimmed
//! windows starting in the future) defers transmissions by design. This
//! experiment quantifies the latency tail each protocol produces on the
//! same feasible traffic — the practical cost a latency-sensitive adopter
//! would weigh against the deadline guarantee.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::scheduled::scheduled_protocols;
use dcr_baselines::{BinaryExponentialBackoff, Sawtooth};
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::rng::{SeedSeq, StreamLabel};
use dcr_sim::runner::run_trials;
use dcr_stats::{bootstrap_mean_ci, quantile, Table};
use dcr_workloads::generators::{poisson, thin_to_feasible};
use dcr_workloads::Instance;

const WINDOW: u64 = 1 << 13;

fn make_instance(cfg: &ExpConfig) -> Instance {
    let horizon = if cfg.quick { 1u64 << 15 } else { 1u64 << 16 };
    let mut rng = SeedSeq::new(cfg.seed).rng(StreamLabel::Workload, 0xE17);
    let raw = poisson(0.01, horizon, &[WINDOW], &mut rng);
    thin_to_feasible(raw, 1.0 / 16.0)
}

struct Cell {
    delivered: f64,
    p50: f64,
    p95: f64,
    max: f64,
    mean_lo: f64,
    mean_hi: f64,
}

fn measure(cfg: &ExpConfig, instance: &Instance, proto: &str) -> Cell {
    let trials = cfg.cell_trials(16);
    let results = run_trials(trials, cfg.seed ^ 0xE17E17, |_, seed| {
        let r = match proto {
            "punctual" => run_instance(
                instance,
                EngineConfig::default(),
                None,
                seed,
                PunctualProtocol::factory(PunctualParams::laptop()),
            ),
            "beb" => run_instance(
                instance,
                EngineConfig::default(),
                None,
                seed,
                BinaryExponentialBackoff::factory(1024),
            ),
            "sawtooth" => run_instance(
                instance,
                EngineConfig::default(),
                None,
                seed,
                Sawtooth::factory(),
            ),
            "uniform" => run_instance(instance, EngineConfig::default(), None, seed, |_| {
                Box::new(Uniform::single())
            }),
            "edf-genie" => {
                let protos = scheduled_protocols(&instance.jobs).expect("feasible");
                let mut it = protos.into_iter();
                run_instance(instance, EngineConfig::default(), None, seed, move |_| {
                    Box::new(it.next().expect("one per job"))
                })
            }
            _ => unreachable!(),
        };
        let latencies: Vec<f64> = r.latencies().into_iter().map(|l| l as f64).collect();
        (r.success_fraction(), latencies)
    });
    let mut all: Vec<f64> = Vec::new();
    let mut delivered = 0.0;
    for t in &results {
        delivered += t.value.0;
        all.extend_from_slice(&t.value.1);
    }
    let ci = bootstrap_mean_ci(&all, cfg.seed).expect("non-empty latencies");
    Cell {
        delivered: delivered / results.len() as f64,
        p50: quantile(&all, 0.5).unwrap_or(f64::NAN),
        p95: quantile(&all, 0.95).unwrap_or(f64::NAN),
        max: quantile(&all, 1.0).unwrap_or(f64::NAN),
        mean_lo: ci.lo,
        mean_hi: ci.hi,
    }
}

/// Run E17.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let instance = make_instance(cfg);
    let mut rb = ReportBuilder::new("e17", "E17: delivery latency distributions", cfg);
    rb.param("n_jobs", instance.n())
        .param("window", WINDOW)
        .param("trials_per_cell", cfg.cell_trials(16));
    let mut punctual_max = f64::NAN;
    let mut table = Table::new(vec![
        "protocol",
        "delivered",
        "latency p50",
        "p95",
        "max",
        "mean [bootstrap 95%]",
    ])
    .with_title(format!(
        "E17 (beyond the paper): delivery latency — Poisson traffic, n={}, w={WINDOW}, \
         seed {}",
        instance.n(),
        cfg.seed
    ));
    for proto in ["edf-genie", "beb", "sawtooth", "uniform", "punctual"] {
        let c = measure(cfg, &instance, proto);
        if proto == "punctual" {
            punctual_max = c.max;
        }
        rb.row(proto, "delivered_fraction", c.delivered)
            .row(proto, "latency_p50", c.p50)
            .row(proto, "latency_p95", c.p95)
            .row(proto, "latency_max", c.max)
            .row_ci(
                proto,
                "latency_mean",
                (c.mean_lo + c.mean_hi) / 2.0,
                (c.mean_lo, c.mean_hi),
                cfg.cell_trials(16),
            )
            .add_trials(cfg.cell_trials(16));
        table.row(vec![
            proto.into(),
            format!("{:.3}", c.delivered),
            format!("{:.0}", c.p50),
            format!("{:.0}", c.p95),
            format!("{:.0}", c.max),
            format!("[{:.0}, {:.0}]", c.mean_lo, c.mean_hi),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nshape check: the greedy protocols (BEB/sawtooth) deliver in single-digit \
         slots on light traffic; UNIFORM's latency is uniform over the window by \
         construction (mean ≈ w/2); PUNCTUAL's p50 also sits in the thousands — its \
         machinery spends the window on purpose, converting latency headroom into a \
         by-deadline guarantee\n",
    );
    rb.check(
        "punctual_latency_inside_window",
        punctual_max < WINDOW as f64,
        format!("punctual max latency {punctual_max:.0} vs window {WINDOW}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beb_latency_is_small_on_light_traffic() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg);
        let c = measure(&cfg, &inst, "beb");
        assert!(c.p95 < 100.0, "BEB p95 latency {}", c.p95);
    }

    #[test]
    fn punctual_latency_larger_but_within_window() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg);
        let c = measure(&cfg, &inst, "punctual");
        assert!(c.max < WINDOW as f64, "latency must stay inside the window");
        let b = measure(&cfg, &inst, "beb");
        assert!(c.p50 > b.p50, "punctual trades latency for the guarantee");
    }

    #[test]
    fn uniform_mean_latency_near_half_window() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg);
        let c = measure(&cfg, &inst, "uniform");
        let half = WINDOW as f64 / 2.0;
        assert!(
            c.mean_lo < half && half < c.mean_hi * 1.2,
            "uniform mean ≈ w/2: [{}, {}]",
            c.mean_lo,
            c.mean_hi
        );
    }
}
