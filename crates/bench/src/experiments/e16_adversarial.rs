//! **E16 — adversarial shapes** (the adversarial-queuing backdrop, paper
//! refs [6, 13, 34, 35], adapted to deadlines).
//!
//! Two sustained worst-case families from `dcr_workloads::adversarial`:
//!
//! * **rolling harmonic** — the Lemma 5 burst repeated every period: does
//!   steady-state repetition deepen the starvation of the urgent tier?
//! * **staircase** — staggered releases, one common deadline: the last
//!   arrivals have the least room, and deadline-oblivious protocols that
//!   let early arrivals monopolize the channel starve the tail.
//!
//! The EDF genie row certifies each instance is feasible; everything the
//! distributed protocols lose is protocol-induced.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::scheduled::scheduled_protocols;
use dcr_baselines::{BinaryExponentialBackoff, Sawtooth};
use dcr_core::uniform::Uniform;
use dcr_sim::engine::EngineConfig;
use dcr_sim::metrics::SimReport;
use dcr_sim::runner::run_trials;
use dcr_stats::Table;
use dcr_workloads::adversarial::{rolling_harmonic, staircase};
use dcr_workloads::Instance;

fn run_proto(instance: &Instance, proto: &str, seed: u64) -> SimReport {
    match proto {
        "uniform" => run_instance(instance, EngineConfig::default(), None, seed, |_| {
            Box::new(Uniform::single())
        }),
        "beb" => run_instance(
            instance,
            EngineConfig::default(),
            None,
            seed,
            BinaryExponentialBackoff::factory(1024),
        ),
        "sawtooth" => run_instance(
            instance,
            EngineConfig::default(),
            None,
            seed,
            Sawtooth::factory(),
        ),
        "edf-genie" => {
            let protos = scheduled_protocols(&instance.jobs).expect("feasible");
            let mut it = protos.into_iter();
            run_instance(instance, EngineConfig::default(), None, seed, move |_| {
                Box::new(it.next().expect("one per job"))
            })
        }
        _ => unreachable!(),
    }
}

/// Rolling harmonic: success of the most urgent job of each burst,
/// averaged over bursts, plus first-vs-last-burst comparison.
fn rolling_cell(cfg: &ExpConfig, proto: &str) -> (f64, f64, f64) {
    let n = 64;
    let bursts = 6;
    let instance = rolling_harmonic(n, 2, (n as u64) * 2 + 64, bursts);
    let trials = cfg.cell_trials(60);
    let results = run_trials(trials, cfg.seed ^ 0x16A, |_, seed| {
        let r = run_proto(&instance, proto, seed);
        let urgent_of_burst = |b: usize| {
            // Jobs are pushed burst-major; the most urgent of burst b is
            // index b*n.
            r.outcome((b * n) as u32).is_success() as u32 as f64
        };
        let mean_urgent = (0..bursts).map(urgent_of_burst).sum::<f64>() / bursts as f64;
        (mean_urgent, urgent_of_burst(0), urgent_of_burst(bursts - 1))
    });
    let k = results.len() as f64;
    (
        results.iter().map(|t| t.value.0).sum::<f64>() / k,
        results.iter().map(|t| t.value.1).sum::<f64>() / k,
        results.iter().map(|t| t.value.2).sum::<f64>() / k,
    )
}

/// Staircase: success rate of the first, middle and last thirds by
/// release order.
fn staircase_cell(cfg: &ExpConfig, proto: &str) -> (f64, f64, f64) {
    // Dense staircase: releases every 2 slots, common deadline with only
    // a 16-slot tail margin — ~43% unit load, last arrival has 18 slots.
    let n = 48;
    let instance = staircase(n, 2, 2 * n as u64 + 16);
    let trials = cfg.cell_trials(60);
    let results = run_trials(trials, cfg.seed ^ 0x16B, |_, seed| {
        let r = run_proto(&instance, proto, seed);
        let third = |lo: usize, hi: usize| {
            (lo..hi)
                .filter(|&i| r.outcome(i as u32).is_success())
                .count() as f64
                / (hi - lo) as f64
        };
        (
            third(0, n / 3),
            third(n / 3, 2 * n / 3),
            third(2 * n / 3, n),
        )
    });
    let k = results.len() as f64;
    (
        results.iter().map(|t| t.value.0).sum::<f64>() / k,
        results.iter().map(|t| t.value.1).sum::<f64>() / k,
        results.iter().map(|t| t.value.2).sum::<f64>() / k,
    )
}

/// Run E16.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let protos = ["edf-genie", "uniform", "beb", "sawtooth"];
    let mut rb = ReportBuilder::new("e16", "E16: adversarial workload shapes", cfg);
    rb.param("protocols", format!("{protos:?}"))
        .param("trials_per_cell", cfg.cell_trials(60));
    let mut genie_ok = true;

    let mut t1 = Table::new(vec![
        "protocol",
        "P[most urgent succeeds] (mean over bursts)",
        "first burst",
        "last burst",
    ])
    .with_title(format!(
        "E16a: rolling harmonic — 6 bursts of 64 jobs, w_j = 2j, seed {}",
        cfg.seed
    ));
    for proto in protos {
        let (mean, first, last) = rolling_cell(cfg, proto);
        if proto == "edf-genie" && (mean - 1.0).abs() > 1e-9 {
            genie_ok = false;
        }
        let id = format!("rolling,{proto}");
        rb.row(&id, "urgent_mean_over_bursts", mean)
            .row(&id, "urgent_first_burst", first)
            .row(&id, "urgent_last_burst", last)
            .add_trials(cfg.cell_trials(60));
        t1.row(vec![
            proto.into(),
            format!("{mean:.3}"),
            format!("{first:.3}"),
            format!("{last:.3}"),
        ]);
    }

    let mut t2 = Table::new(vec![
        "protocol",
        "early third delivered",
        "middle third",
        "late third (least room)",
    ])
    .with_title(format!(
        "\nE16b: dense staircase — 48 releases every 2 slots, one common deadline, seed {}",
        cfg.seed
    ));
    for proto in protos {
        let (a, b, c) = staircase_cell(cfg, proto);
        if proto == "edf-genie" && ((a - 1.0).abs() > 1e-9 || (c - 1.0).abs() > 1e-9) {
            genie_ok = false;
        }
        let id = format!("staircase,{proto}");
        rb.row(&id, "early_third", a)
            .row(&id, "middle_third", b)
            .row(&id, "late_third", c)
            .add_trials(cfg.cell_trials(60));
        t2.row(vec![
            proto.into(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{c:.3}"),
        ]);
    }

    let mut out = t1.render();
    out.push_str(&t2.render());
    out.push_str(
        "\nshape checks: genie = 1.0 everywhere (instances are feasible). Rolling \
         harmonic: the backoff protocols starve the urgent job in EVERY burst \
         (steady state, no recovery) — repetition does not heal Lemma 5. Dense \
         staircase: collision-adaptive backoff handles staggered unit load easily, \
         while UNIFORM degrades toward the tail (its per-slot contention piles up \
         against the common deadline) — each protocol has its own adversarial shape\n",
    );
    rb.check(
        "genie_perfect_on_both_shapes",
        genie_ok,
        "edf-genie delivers 1.0 on rolling harmonic and staircase",
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genie_is_perfect_on_both_shapes() {
        let cfg = ExpConfig::quick();
        let (m, _, _) = rolling_cell(&cfg, "edf-genie");
        assert!((m - 1.0).abs() < 1e-9);
        let (a, b, c) = staircase_cell(&cfg, "edf-genie");
        assert!((a - 1.0).abs() < 1e-9 && (b - 1.0).abs() < 1e-9 && (c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_starves_urgent_in_every_burst() {
        let cfg = ExpConfig::quick();
        let (mean, first, last) = rolling_cell(&cfg, "beb");
        assert!(mean < 0.2, "urgent job under BEB: {mean}");
        // Steady state: the last burst is no better than the first.
        assert!(last <= first + 0.15, "first {first} vs last {last}");
    }

    #[test]
    fn staircase_uniform_middle_not_catastrophic() {
        let cfg = ExpConfig::quick();
        let (a, _b, c) = staircase_cell(&cfg, "uniform");
        // UNIFORM hits everyone roughly alike (its windows all end at the
        // common deadline) — the shape is flat-ish rather than tail-biased.
        assert!(a > 0.2 && c > 0.1);
    }
}
