//! **E9 — Lemmas 18–19 + Corollary 20**: anarchists are few and succeed.
//!
//! Claims: (Lemma 18) at most `O(w/log³w)` jobs of window size `w` are ever
//! anarchists in any interval — when a class is dense, leader election
//! succeeds and everyone follows instead; (Corollary 20) a job that *does*
//! become an anarchist still delivers w.h.p., because at least half the
//! anarchy slots have contention ≤ 1/2 (Lemma 19).
//!
//! Measurement: data deliveries are classified by the round position they
//! occurred in (anarchy slot vs. aligned/timekeeper slots). A *forced
//! anarchy* configuration (pullback budget cut to one election slot, so
//! leader election almost never happens) exercises Corollary 20; the
//! normal configuration exercises Lemma 18.

use crate::config::ExpConfig;
use crate::experiments::util::find_round_anchor;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::punctual::{PunctualParams, ROUND_LEN};
use dcr_core::PunctualProtocol;
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::job::JobSpec;
use dcr_sim::runner::run_trials;
use dcr_sim::trace::SlotOutcome;
use dcr_stats::Table;

const WINDOW: u64 = 1 << 14;

fn normal_params() -> PunctualParams {
    PunctualParams::laptop()
}

/// Pullback cut to a single election slot: elections essentially never
/// happen, so every job releases the slingshot.
fn forced_anarchy_params() -> PunctualParams {
    let mut p = normal_params();
    p.pullback_len_logexp = 0; // λ·log⁰ = λ slots of pullback
    p.lambda = 1;
    p
}

struct Trial {
    delivered: f64,
    anarchy_deliveries: u64,
    other_deliveries: u64,
}

fn trial(n: u32, params: PunctualParams, seed: u64) -> Trial {
    let mut e = Engine::new(EngineConfig::default().with_trace(), seed);
    for i in 0..n {
        e.add_job(
            JobSpec::new(i, 0, WINDOW),
            Box::new(PunctualProtocol::new(params)),
        );
    }
    let r = e.run();
    let trace = r.trace.as_ref().expect("trace");
    let anchor = find_round_anchor(trace).unwrap_or(0);
    let mut anarchy = 0;
    let mut other = 0;
    for rec in trace {
        if let SlotOutcome::Success { was_data: true, .. } = rec.outcome {
            if rec.slot >= anchor && (rec.slot - anchor) % ROUND_LEN == 9 {
                anarchy += 1;
            } else {
                other += 1;
            }
        }
    }
    Trial {
        delivered: r.success_fraction(),
        anarchy_deliveries: anarchy,
        other_deliveries: other,
    }
}

struct Cell {
    delivered: f64,
    anarchy_share: f64,
}

fn sweep(cfg: &ExpConfig, n: u32, params: PunctualParams) -> Cell {
    let trials = cfg.cell_trials(50);
    let results = run_trials(trials, cfg.seed ^ (u64::from(n) << 24), |_, seed| {
        let t = trial(n, params, seed);
        let total = t.anarchy_deliveries + t.other_deliveries;
        let share = if total == 0 {
            0.0
        } else {
            t.anarchy_deliveries as f64 / total as f64
        };
        (t.delivered, share)
    });
    Cell {
        delivered: results.iter().map(|t| t.value.0).sum::<f64>() / trials as f64,
        anarchy_share: results.iter().map(|t| t.value.1).sum::<f64>() / trials as f64,
    }
}

/// Run E9.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let ns: &[u32] = if cfg.quick { &[4, 64] } else { &[2, 8, 32, 64] };
    let mut rb = ReportBuilder::new("e9", "E9 (Lemmas 18-19, Cor. 20): anarchist behaviour", cfg);
    rb.param("window", WINDOW)
        .param("ns", format!("{ns:?}"))
        .param("trials_per_cell", cfg.cell_trials(50));
    let mut out = String::new();

    let mut t1 = Table::new(vec![
        "n",
        "delivered",
        "share of deliveries in anarchy slots",
    ])
    .with_title(format!(
        "E9a (Lemma 18): normal PUNCTUAL, w={WINDOW}, seed {} — dense classes \
             should deliver via the leader's aligned slots, not anarchy",
        cfg.seed
    ));
    let mut normal_cells = Vec::new();
    for &n in ns {
        let c = sweep(cfg, n, normal_params());
        let id = format!("normal,n={n}");
        rb.row(&id, "delivered_fraction", c.delivered)
            .row(&id, "anarchy_share", c.anarchy_share)
            .add_trials(cfg.cell_trials(50))
            .add_slots(cfg.cell_trials(50) * WINDOW);
        t1.row(vec![
            n.to_string(),
            format!("{:.3}", c.delivered),
            format!("{:.3}", c.anarchy_share),
        ]);
        normal_cells.push(c);
    }
    out.push_str(&t1.render());

    let mut t2 = Table::new(vec!["n", "delivered", "share in anarchy slots"]).with_title(format!(
        "\nE9b (Corollary 20): pullback crippled to force anarchy — anarchists must \
             still deliver w.h.p., seed {}",
        cfg.seed
    ));
    let mut forced_cells = Vec::new();
    for &n in ns {
        let c = sweep(cfg, n, forced_anarchy_params());
        let id = format!("forced,n={n}");
        rb.row(&id, "delivered_fraction", c.delivered)
            .row(&id, "anarchy_share", c.anarchy_share)
            .add_trials(cfg.cell_trials(50))
            .add_slots(cfg.cell_trials(50) * WINDOW);
        t2.row(vec![
            n.to_string(),
            format!("{:.3}", c.delivered),
            format!("{:.3}", c.anarchy_share),
        ]);
        forced_cells.push(c);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\nshape checks: E9a anarchy share small and shrinking with n; \
         E9b delivery stays high with anarchy share ≈ 1 at small n\n",
    );
    if let Some(dense) = normal_cells.last() {
        rb.check(
            "lemma18_dense_class_avoids_anarchy",
            dense.anarchy_share < 0.5,
            format!("anarchy share at max n: {:.3}", dense.anarchy_share),
        );
    }
    if let Some(forced) = forced_cells.first() {
        rb.check(
            "cor20_forced_anarchists_deliver",
            forced.delivered > 0.8,
            format!("forced-anarchy delivery at min n: {:.3}", forced.delivered),
        );
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_anarchists_succeed() {
        // Corollary 20: even pure anarchists deliver w.h.p. at moderate
        // density.
        let c = sweep(&ExpConfig::quick(), 4, forced_anarchy_params());
        assert!(c.delivered > 0.8, "delivered={}", c.delivered);
        assert!(c.anarchy_share > 0.6, "share={}", c.anarchy_share);
    }

    #[test]
    fn dense_class_avoids_anarchy() {
        let c = sweep(&ExpConfig::quick(), 64, normal_params());
        assert!(
            c.anarchy_share < 0.5,
            "dense class should deliver via ALIGNED: share={}",
            c.anarchy_share
        );
    }
}
