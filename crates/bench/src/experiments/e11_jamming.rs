//! **E11 — Section 3 "Jamming"**: ALIGNED survives stochastic jamming with
//! `p_jam ≤ 1/2`.
//!
//! Claim: the estimation and broadcast analyses (Lemmas 8–13) all tolerate
//! an adversary that sees slot contents and jams with success probability
//! `p_jam ≤ 1/2`. We sweep `p_jam` through and past the analyzed range for
//! the all-successes adversary, and compare targeting policies
//! (control-only — the paper's "skew the estimate" adversary — vs
//! data-only) at `p_jam = 1/2`.

use crate::config::ExpConfig;
use crate::experiments::util::{run_instance, run_single_class};
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::jamming::{JamPolicy, Jammer};
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};
use dcr_workloads::generators::batch;

const CLASS: u32 = 11;
const N_JOBS: usize = 8;

fn params() -> AlignedParams {
    // λ=2 provides the margin the jamming analysis spends.
    AlignedParams::new(2, 2, CLASS)
}

fn sweep_pjam(cfg: &ExpConfig, p_jam: f64) -> Proportion {
    let trials = cfg.cell_trials(160);
    let results = run_trials(trials, cfg.seed ^ ((p_jam * 1000.0) as u64), |_, seed| {
        run_single_class(params(), CLASS, N_JOBS, p_jam, seed).successes as u64
    });
    let successes: u64 = results.iter().map(|t| t.value).sum();
    Proportion::new(successes, trials * N_JOBS as u64)
}

fn sweep_policy(cfg: &ExpConfig, policy: JamPolicy, p_jam: f64) -> Proportion {
    let instance = batch(N_JOBS, 1 << CLASS);
    let trials = cfg.cell_trials(120);
    let results = run_trials(trials, cfg.seed ^ 0xE11, |_, seed| {
        let r = run_instance(
            &instance,
            EngineConfig::aligned(),
            Some(Jammer::new(policy, p_jam)),
            seed,
            AlignedProtocol::factory(params()),
        );
        r.successes() as u64
    });
    let successes: u64 = results.iter().map(|t| t.value).sum();
    Proportion::new(successes, trials * N_JOBS as u64)
}

/// Run E11.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let pjams: &[f64] = if cfg.quick {
        &[0.0, 0.5, 0.75]
    } else {
        &[0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9]
    };
    let mut rb = ReportBuilder::new("e11", "E11: ALIGNED under stochastic jamming", cfg);
    rb.param("class", CLASS)
        .param("n_jobs", N_JOBS)
        .param("p_jam_grid", format!("{pjams:?}"));
    let mut t1 = Table::new(vec!["p_jam", "per-job delivery rate"]).with_title(format!(
        "E11a: ALIGNED (λ=2) under all-successes jamming, batch of {N_JOBS} in w=2^{CLASS}, \
         seed {}",
        cfg.seed
    ));
    let mut inside = Vec::new();
    let mut beyond = Vec::new();
    for &p in pjams {
        let prop = sweep_pjam(cfg, p);
        if p <= 0.5 {
            inside.push(prop.estimate());
        } else {
            beyond.push(prop.estimate());
        }
        rb.prop(format!("p_jam={p}"), "per_job_delivery", &prop)
            .add_trials(cfg.cell_trials(160))
            .add_slots(cfg.cell_trials(160) << CLASS);
        t1.row(vec![format!("{p:.2}"), prop.to_string()]);
    }
    let mut out = t1.render();

    let mut t2 = Table::new(vec!["policy", "per-job delivery rate"]).with_title(format!(
        "\nE11b: targeting policies at p_jam = 0.5 (engine adversary sees message contents), \
         seed {}",
        cfg.seed
    ));
    for (name, policy) in [
        ("never", JamPolicy::Never),
        ("all successes", JamPolicy::AllSuccesses),
        ("control only (skew estimates)", JamPolicy::ControlOnly),
        ("data only", JamPolicy::DataOnly),
    ] {
        let prop = sweep_policy(cfg, policy, 0.5);
        rb.prop(format!("policy={name}"), "per_job_delivery", &prop)
            .add_trials(cfg.cell_trials(120))
            .add_slots(cfg.cell_trials(120) << CLASS);
        t2.row(vec![name.to_string(), prop.to_string()]);
    }
    out.push_str(&t2.render());
    let worst_inside = inside.iter().copied().fold(1.0f64, f64::min);
    out.push_str(&format!(
        "\nshape check: delivery stays high for p_jam ≤ 0.5 (min {worst_inside:.3}) and degrades \
         beyond the analyzed regime\n"
    ));
    rb.row("overall", "worst_delivery_inside_regime", worst_inside)
        .check(
            "jamming_tolerated_inside_regime",
            worst_inside > 0.8,
            format!("worst delivery at p_jam <= 0.5: {worst_inside:.3}"),
        );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_delivers() {
        let p = sweep_pjam(&ExpConfig::quick(), 0.0);
        assert!(p.estimate() > 0.97, "{p}");
    }

    #[test]
    fn half_jamming_tolerated() {
        let p = sweep_pjam(&ExpConfig::quick(), 0.5);
        assert!(p.estimate() > 0.85, "{p}");
    }

    #[test]
    fn control_only_jamming_does_not_break_estimates() {
        // The paper's worried-about adversary: jam only control messages to
        // skew n_ℓ. The τ inflation and equalizer phases must absorb it.
        let p = sweep_policy(&ExpConfig::quick(), JamPolicy::ControlOnly, 0.5);
        assert!(p.estimate() > 0.8, "{p}");
    }
}
