//! **E2 — Lemma 4**: UNIFORM delivers a constant fraction of messages.
//!
//! Claim: on γ-slack-feasible instances with `γ < 1/6`, UNIFORM delivers
//! `Θ(n)` of the `n` messages w.h.p. — both for power-of-2-aligned windows
//! and arbitrary ones. We sweep the instance scale over two orders of
//! magnitude and check that the delivered fraction stays flat (constant in
//! `n`) and bounded well away from zero.

use crate::config::ExpConfig;
use crate::experiments::util::{mean, run_instance};
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::uniform::Uniform;
use dcr_sim::engine::EngineConfig;
use dcr_sim::rng::{SeedSeq, StreamLabel};
use dcr_sim::runner::run_trials;
use dcr_stats::{Summary, Table};
use dcr_workloads::generators::{aligned_classes, random_unaligned, thin_to_feasible, ClassSpec};
use dcr_workloads::{measured_slack, Instance};

/// γ target: instances are generated at density ≤ 1/8 < 1/6.
const INV_GAMMA: u64 = 8;

fn aligned_instance(scale: u32) -> Instance {
    // Classes 6..=9, each window getting w/(8·4) jobs: density = 4·(1/32)
    // = 1/8. Horizon grows with `scale` to scale n.
    let horizon = 1u64 << (9 + scale);
    aligned_classes(
        &[
            ClassSpec {
                class: 6,
                jobs_per_window: 2,
            },
            ClassSpec {
                class: 7,
                jobs_per_window: 4,
            },
            ClassSpec {
                class: 8,
                jobs_per_window: 8,
            },
            ClassSpec {
                class: 9,
                jobs_per_window: 16,
            },
        ],
        horizon,
        None,
    )
}

fn unaligned_instance(scale: u32, seed: u64) -> Instance {
    let horizon = 1u64 << (9 + scale);
    let mut rng = SeedSeq::new(seed).rng(StreamLabel::Workload, u64::from(scale));
    let raw = random_unaligned((horizon / 2) as usize, horizon, 64, 512, &mut rng);
    thin_to_feasible(raw, 1.0 / INV_GAMMA as f64)
}

fn sweep(
    cfg: &ExpConfig,
    table: &mut Table,
    rb: &mut ReportBuilder,
    kind: &str,
    make: impl Fn(u32) -> Instance,
) -> Vec<f64> {
    let scales: &[u32] = if cfg.quick { &[0, 2] } else { &[0, 1, 2, 3, 4] };
    let mut means = Vec::with_capacity(scales.len());
    for &scale in scales {
        let instance = make(scale);
        let n = instance.n();
        let trials = cfg.cell_trials(80);
        let outcomes = run_trials(trials, cfg.seed ^ u64::from(scale), |_, seed| {
            // Pure one-shot UNIFORM population: the vectorized kernel is
            // bit-identical to the exact path (DESIGN.md §3f) and keeps
            // the large-n cells off the per-job dispatch loop.
            let r = run_instance(
                &instance,
                EngineConfig::default().vectorized(),
                None,
                seed,
                |_| Box::new(Uniform::single()),
            );
            (r.success_fraction(), r.slots_run)
        });
        let slots: u64 = outcomes.iter().map(|t| t.value.1).sum();
        let fractions: Vec<f64> = outcomes.into_iter().map(|t| t.value.0).collect();
        let s = Summary::from_iter(fractions.iter().copied());
        let cell = format!("{kind},n={n}");
        rb.row(&cell, "mean_fraction", s.mean())
            .row(&cell, "sd", s.std_dev())
            .row(&cell, "min_fraction", s.min())
            .add_trials(trials)
            .add_slots(slots);
        means.push(s.mean());
        table.row(vec![
            kind.to_string(),
            n.to_string(),
            format!("{:.3}", s.mean()),
            format!("{:.3}", s.std_dev()),
            format!("{:.3}", s.min()),
        ]);
    }
    means
}

/// Run E2.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rb = ReportBuilder::new(
        "e2",
        "E2 (Lemma 4): UNIFORM success fraction on dense instances",
        cfg,
    );
    rb.param("inv_gamma", INV_GAMMA)
        .param("trials_per_cell", cfg.cell_trials(80));
    let mut table =
        Table::new(vec!["windows", "n", "mean fraction", "sd", "min"]).with_title(format!(
            "E2 (Lemma 4): UNIFORM success fraction on 1/{INV_GAMMA}-dense instances, seed {}",
            cfg.seed
        ));
    let aligned_means = sweep(cfg, &mut table, &mut rb, "aligned", aligned_instance);
    let arbitrary_means = sweep(cfg, &mut table, &mut rb, "arbitrary", |s| {
        unaligned_instance(s, cfg.seed)
    });

    // Report measured slack of the smallest instances as a sanity check.
    let slack_aligned = measured_slack(&aligned_instance(0).jobs);
    let slack_random = measured_slack(&unaligned_instance(0, cfg.seed).jobs);
    let mut out = table.render();
    out.push_str(&format!(
        "\nmeasured slack 1/γ: aligned {:?}, arbitrary {:?} (claim needs γ < 1/6)\n\
         shape check: fraction ≈ constant in n, bounded away from 0\n",
        slack_aligned, slack_random
    ));
    let worst = aligned_means
        .iter()
        .chain(&arbitrary_means)
        .copied()
        .fold(f64::INFINITY, f64::min);
    let spread = aligned_means
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        - aligned_means.iter().copied().fold(f64::INFINITY, f64::min);
    rb.check(
        "fraction_bounded_away_from_zero",
        worst > 0.25,
        format!("worst mean fraction {worst:.3}"),
    )
    .check(
        "fraction_flat_in_n",
        spread < 0.15,
        format!("aligned mean spread {spread:.3}"),
    );
    rb.finish(out)
}

/// Mean success fraction of UNIFORM on the scale-0 aligned instance (used
/// by tests and EXPERIMENTS.md narrative).
pub fn baseline_fraction(cfg: &ExpConfig) -> f64 {
    let instance = aligned_instance(0);
    mean(
        run_trials(cfg.cell_trials(40), cfg.seed, |_, seed| {
            run_instance(
                &instance,
                EngineConfig::default().vectorized(),
                None,
                seed,
                |_| Box::new(Uniform::single()),
            )
            .success_fraction()
        })
        .into_iter()
        .map(|t| t.value),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fraction_delivered() {
        let f = baseline_fraction(&ExpConfig::quick());
        // Θ(n) with the revealing-argument constant: comfortably > 0.5 at
        // density 1/8 (collision probability per job ≤ ~3/8).
        assert!(f > 0.5, "fraction={f}");
    }

    #[test]
    fn fraction_flat_across_scales() {
        let cfg = ExpConfig::quick();
        let small = aligned_instance(0);
        let large = aligned_instance(2);
        let frac = |inst: &Instance| {
            mean(
                run_trials(20, cfg.seed, |_, seed| {
                    run_instance(
                        inst,
                        EngineConfig::default().vectorized(),
                        None,
                        seed,
                        |_| Box::new(Uniform::single()),
                    )
                    .success_fraction()
                })
                .into_iter()
                .map(|t| t.value),
            )
        };
        let (fs, fl) = (frac(&small), frac(&large));
        assert!((fs - fl).abs() < 0.1, "not flat: {fs} vs {fl}");
    }

    #[test]
    fn generated_instances_are_feasible_enough() {
        // The aligned generator must meet the γ < 1/6 requirement.
        let slack = measured_slack(&aligned_instance(0).jobs).unwrap();
        assert!(slack >= 7, "slack 1/γ = {slack}");
    }
}
