//! **E4 — Lemmas 8–10**: size-estimation accuracy.
//!
//! Claim (Lemma 8, with the paper's `τ = 64`): if the estimation protocol
//! completes, then w.h.p. in `w` the estimate satisfies
//! `2n̂ ≤ n_ℓ ≤ τ²n̂`, including under stochastic jamming with
//! `p_jam ≤ 1/2`. We sweep the true class size `n̂` over decades and three
//! jamming levels, and report how often the estimate lands in the paper's
//! band (and in the tighter "within ×8 of 2n̂" band that the broadcast
//! phase actually cares about).

use crate::config::ExpConfig;
use crate::experiments::util::run_single_class;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};

/// Estimation-only parameters: the paper's τ = 64 needs λℓ² ≤ w, nothing
/// more, because we only examine the estimate.
fn params(class: u32, tau: u64) -> AlignedParams {
    AlignedParams::new(1, tau, class)
}

struct Cell {
    in_paper_band: Proportion,
    overestimate: Proportion,
    mean_ratio: f64,
}

fn sweep(cfg: &ExpConfig, class: u32, n_hat: usize, p_jam: f64, tau: u64) -> Cell {
    let trials = cfg.cell_trials(240);
    let p = params(class, tau);
    let results = run_trials(
        trials,
        cfg.seed ^ ((n_hat as u64) << 20) ^ ((p_jam * 100.0) as u64),
        |_, seed| {
            let r = run_single_class(p, class, n_hat, p_jam, seed);
            r.estimate.unwrap_or(0)
        },
    );
    let mut in_band = 0u64;
    let mut over = 0u64;
    let mut ratio_sum = 0.0;
    for t in &results {
        let est = t.value;
        if est >= 2 * n_hat as u64 && est <= tau * tau * n_hat as u64 {
            in_band += 1;
        }
        if est >= 2 * n_hat as u64 {
            over += 1;
        }
        ratio_sum += est as f64 / n_hat as f64;
    }
    Cell {
        in_paper_band: Proportion::new(in_band, trials),
        overestimate: Proportion::new(over, trials),
        mean_ratio: ratio_sum / trials as f64,
    }
}

/// Run E4.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let tau = 64; // the paper's constant for Lemma 8
    let class = 12; // estimation alone: λℓ² = 144 ≪ 4096
    let n_hats: &[usize] = if cfg.quick {
        &[1, 8, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let jams = [0.0, 0.25, 0.5];
    let mut rb = ReportBuilder::new("e4", "E4 (Lemma 8): size-estimation accuracy", cfg);
    rb.param("tau", tau)
        .param("class", class)
        .param("n_hats", format!("{n_hats:?}"))
        .param("jam_levels", format!("{jams:?}"))
        .param("trials_per_cell", cfg.cell_trials(240));

    let mut table = Table::new(vec![
        "n̂",
        "p_jam",
        "P[2n̂ ≤ est ≤ τ²n̂]",
        "P[est ≥ 2n̂]",
        "mean est/n̂",
    ])
    .with_title(format!(
        "E4 (Lemma 8): size estimation, class ℓ={class}, τ={tau}, λ=1, seed {}",
        cfg.seed
    ));
    let mut worst_band: f64 = 1.0;
    for &n_hat in n_hats {
        for &p_jam in &jams {
            let cell = sweep(cfg, class, n_hat, p_jam, tau);
            worst_band = worst_band.min(cell.in_paper_band.estimate());
            let id = format!("n={n_hat},p_jam={p_jam}");
            rb.prop(&id, "p_in_paper_band", &cell.in_paper_band)
                .prop(&id, "p_overestimate", &cell.overestimate)
                .row(&id, "mean_ratio", cell.mean_ratio)
                .add_trials(cfg.cell_trials(240));
            table.row(vec![
                n_hat.to_string(),
                format!("{p_jam:.2}"),
                cell.in_paper_band.to_string(),
                format!("{:.3}", cell.overestimate.estimate()),
                format!("{:.1}", cell.mean_ratio),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nworst in-band rate: {worst_band:.3} (Lemma 8 claims 1 − 1/w^Θ(λ))\n"
    ));
    rb.row("overall", "worst_in_band_rate", worst_band).check(
        "lemma8_band",
        worst_band > 0.8,
        format!("worst in-band rate {worst_band:.3}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_land_in_paper_band_without_jamming() {
        let cell = sweep(&ExpConfig::quick(), 12, 8, 0.0, 64);
        assert!(
            cell.in_paper_band.estimate() > 0.9,
            "{}",
            cell.in_paper_band
        );
    }

    #[test]
    fn estimates_survive_half_jamming() {
        let cell = sweep(&ExpConfig::quick(), 12, 8, 0.5, 64);
        assert!(
            cell.in_paper_band.estimate() > 0.8,
            "{}",
            cell.in_paper_band
        );
    }

    #[test]
    fn estimate_is_biased_upward() {
        // The τ inflation makes underestimates rare (that is its purpose).
        let cell = sweep(&ExpConfig::quick(), 12, 16, 0.0, 64);
        assert!(cell.overestimate.estimate() > 0.95, "{}", cell.overestimate);
        assert!(cell.mean_ratio > 2.0);
    }

    #[test]
    fn empty_class_run_is_trivial() {
        // With zero jobs there is nobody to report an estimate; the run
        // must terminate immediately and cleanly.
        let r = run_single_class(params(10, 64), 10, 0, 0.0, 5);
        assert_eq!(r.estimate, None);
        assert_eq!(r.successes, 0);
        assert_eq!(r.slots_used, 1);
    }
}
