//! **E19 — probe-layer fidelity**: estimation accuracy and leader-election
//! latency, measured through the streaming probe layer instead of by
//! reaching into protocol internals.
//!
//! Two claims, both re-checks of earlier experiments through the new
//! observation channel:
//!
//! * (Lemma 8, cf. E4) the `SizeEstimate` event every ALIGNED job emits
//!   when its class's estimation concludes satisfies `2n ≤ n_est ≤ τ²n`,
//!   and the engine-enriched `n_true` equals the instance's class size;
//! * (Lemma 17, cf. E8) a dense class elects a leader, and the
//!   `LeaderElected` event lands within the pullback budget — the paper's
//!   `O(λ log⁷ w)` election slots, concretely `sync + (budget + c)·R`
//!   slots for round length `R`.
//!
//! With `--probe DIR` the run also writes `e19_perfetto.json`, a Chrome
//! trace-event file of one probed ALIGNED run (CI loads it and asserts it
//! parses and carries at least one `SizeEstimate` instant).

use crate::config::ExpConfig;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::punctual::params::ROUND_LEN;
use dcr_core::{AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol};
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::job::JobSpec;
use dcr_sim::probe::{ProbeEvent, ProbeSpec, SinkSpec};
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};

/// The paper's τ for Lemma 8 (matches E4).
const TAU: u64 = 64;
/// Class for the estimation half: λℓ² = 144 ≪ 4096 (matches E4).
const CLASS: u32 = 12;
/// Window for the leader-election half (matches E8).
const WINDOW: u64 = 1 << 14;

/// One probed ALIGNED run; returns the first `SizeEstimate` event's
/// `(n_est, n_true)`, or `None` if the class never reported (window ended
/// mid-estimation).
fn estimation_trial(n: u32, seed: u64) -> Option<(u64, u64)> {
    let params = AlignedParams::new(1, TAU, CLASS);
    let w = 1u64 << CLASS;
    let config = EngineConfig::aligned().with_probe(ProbeSpec::new().with(SinkSpec::Events));
    let mut e = Engine::new(config, seed);
    for i in 0..n {
        e.add_job(
            JobSpec::new(i, 0, w),
            Box::new(AlignedProtocol::new(params)),
        );
    }
    let r = e.run();
    let probes = r.probes.as_ref().expect("probe configured");
    probes
        .events()
        .expect("events sink configured")
        .iter()
        .find_map(|rec| match rec.event {
            ProbeEvent::SizeEstimate { n_est, n_true, .. } => Some((n_est, n_true)),
            _ => None,
        })
}

/// One probed PUNCTUAL run; returns the earliest `LeaderElected` slot.
fn leader_trial(n: u32, seed: u64) -> Option<u64> {
    let config = EngineConfig::default().with_probe(ProbeSpec::new().with(SinkSpec::Events));
    let mut e = Engine::new(config, seed);
    for i in 0..n {
        e.add_job(
            JobSpec::new(i, 0, WINDOW),
            Box::new(PunctualProtocol::new(PunctualParams::laptop())),
        );
    }
    let r = e.run();
    let probes = r.probes.as_ref().expect("probe configured");
    probes
        .events()
        .expect("events sink configured")
        .iter()
        .filter(|rec| matches!(rec.event, ProbeEvent::LeaderElected))
        .map(|rec| rec.slot)
        .min()
}

struct EstCell {
    in_band: Proportion,
    truth_ok: Proportion,
    reported: Proportion,
}

fn est_sweep(cfg: &ExpConfig, n: u32) -> EstCell {
    let trials = cfg.cell_trials(120);
    let results = run_trials(trials, cfg.seed ^ (u64::from(n) << 24), |_, seed| {
        estimation_trial(n, seed)
    });
    let mut in_band = 0u64;
    let mut truth_ok = 0u64;
    let mut reported = 0u64;
    for t in &results {
        let Some((n_est, n_true)) = t.value else {
            continue;
        };
        reported += 1;
        if n_est >= 2 * u64::from(n) && n_est <= TAU * TAU * u64::from(n) {
            in_band += 1;
        }
        if n_true == u64::from(n) {
            truth_ok += 1;
        }
    }
    EstCell {
        in_band: Proportion::new(in_band, reported.max(1)),
        truth_ok: Proportion::new(truth_ok, reported.max(1)),
        reported: Proportion::new(reported, trials),
    }
}

struct LeaderCell {
    elected: Proportion,
    within_bound: Proportion,
    mean_slot: f64,
}

/// Empirical election deadline: synchronization, then the full pullback
/// claim budget plus a few rounds of takeover slack.
fn election_bound() -> u64 {
    let p = PunctualParams::laptop();
    p.sync_listen_slots + (p.pullback_election_slots(WINDOW) + 6) * ROUND_LEN
}

/// Trials for the leader sweep, floored at 40 even in quick mode: the
/// election-rate check compares a ~0.8 proportion against a 0.6
/// threshold, and at quick's 10 trials that comparison is a coin flip
/// on the seed realization, not a check of the election logic.
fn leader_trials(cfg: &ExpConfig) -> u64 {
    cfg.cell_trials(40).max(40)
}

fn leader_sweep(cfg: &ExpConfig, n: u32) -> LeaderCell {
    let trials = leader_trials(cfg);
    let results = run_trials(trials, cfg.seed ^ (u64::from(n) << 16), |_, seed| {
        leader_trial(n, seed)
    });
    let bound = election_bound();
    let mut elected = 0u64;
    let mut within = 0u64;
    let mut slot_sum = 0.0;
    for t in &results {
        let Some(slot) = t.value else { continue };
        elected += 1;
        if slot <= bound {
            within += 1;
        }
        slot_sum += slot as f64;
    }
    LeaderCell {
        elected: Proportion::new(elected, trials),
        within_bound: Proportion::new(within, elected.max(1)),
        mean_slot: if elected == 0 {
            f64::NAN
        } else {
            slot_sum / elected as f64
        },
    }
}

/// Write one probed ALIGNED run's Perfetto trace to `dir/e19_perfetto.json`.
fn write_perfetto(cfg: &ExpConfig, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    let params = AlignedParams::new(1, TAU, CLASS);
    let w = 1u64 << CLASS;
    let config = EngineConfig::aligned().with_probe(
        ProbeSpec::new()
            .with(SinkSpec::ChromeTrace)
            .with(SinkSpec::Events),
    );
    let mut e = Engine::new(config, cfg.seed);
    for i in 0..8 {
        e.add_job(
            JobSpec::new(i, 0, w),
            Box::new(AlignedProtocol::new(params)),
        );
    }
    let r = e.run();
    let json = r
        .probes
        .as_ref()
        .and_then(|p| p.chrome_trace())
        .expect("chrome trace configured");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("e19_perfetto.json");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Run E19.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let ns: &[u32] = if cfg.quick { &[1, 64] } else { &[1, 8, 64] };
    let mut rb = ReportBuilder::new("e19", "E19: probe-layer estimation fidelity", cfg);
    rb.param("tau", TAU)
        .param("class", CLASS)
        .param("leader_window", WINDOW)
        .param("election_bound_slots", election_bound())
        .param("ns", format!("{ns:?}"));

    let mut table = Table::new(vec![
        "n (jobs)",
        "P[reported]",
        "P[2n ≤ n_est ≤ τ²n]",
        "P[n_true exact]",
    ])
    .with_title(format!(
        "E19a (Lemma 8 via SizeEstimate events): class ℓ={CLASS}, τ={TAU}, seed {}",
        cfg.seed
    ));
    let mut worst_band: f64 = 1.0;
    let mut worst_truth: f64 = 1.0;
    for &n in ns {
        let c = est_sweep(cfg, n);
        worst_band = worst_band.min(c.in_band.estimate());
        worst_truth = worst_truth.min(c.truth_ok.estimate());
        let id = format!("n={n}");
        rb.prop(&id, "p_in_band", &c.in_band)
            .prop(&id, "p_truth_exact", &c.truth_ok)
            .prop(&id, "p_reported", &c.reported)
            .add_trials(cfg.cell_trials(120))
            .add_slots(cfg.cell_trials(120) * (1 << CLASS));
        table.row(vec![
            n.to_string(),
            format!("{:.3}", c.reported.estimate()),
            c.in_band.to_string(),
            format!("{:.3}", c.truth_ok.estimate()),
        ]);
    }
    let mut out = table.render();

    let dense_n = 64;
    let leaders = leader_sweep(cfg, dense_n);
    out.push_str(&format!(
        "\nE19b (Lemma 17 via LeaderElected events): n={dense_n}, w={WINDOW}: \
         elected {}, within {}-slot bound {}, mean election slot {:.0}\n",
        leaders.elected,
        election_bound(),
        leaders.within_bound,
        leaders.mean_slot
    ));
    rb.prop("leader", "p_elected", &leaders.elected)
        .prop("leader", "p_within_bound", &leaders.within_bound)
        .row("leader", "mean_election_slot", leaders.mean_slot)
        .add_trials(leader_trials(cfg))
        .add_slots(leader_trials(cfg) * WINDOW);

    rb.check(
        "lemma8_band_via_probe",
        worst_band > 0.8,
        format!("worst in-band rate {worst_band:.3}"),
    )
    .check(
        "ground_truth_enrichment_exact",
        worst_truth > 0.99,
        format!("worst n_true-exact rate {worst_truth:.3}"),
    )
    .check(
        "lemma17_dense_class_elects",
        leaders.elected.estimate() > 0.6,
        format!("election rate {}", leaders.elected),
    )
    .check(
        "election_within_pullback_budget",
        leaders.within_bound.estimate() > 0.9,
        format!("within-bound rate {}", leaders.within_bound),
    );

    if let Some(dir) = &cfg.probe_dir {
        match write_perfetto(cfg, dir) {
            Ok(path) => out.push_str(&format!("\nwrote Perfetto trace to {}\n", path.display())),
            Err(e) => out.push_str(&format!("\nfailed to write Perfetto trace: {e}\n")),
        }
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_report_and_land_in_band() {
        let c = est_sweep(&ExpConfig::quick(), 8);
        assert!(c.reported.estimate() > 0.9, "{}", c.reported);
        assert!(c.in_band.estimate() > 0.8, "{}", c.in_band);
    }

    #[test]
    fn engine_enriches_ground_truth() {
        let c = est_sweep(&ExpConfig::quick(), 8);
        assert!(c.truth_ok.estimate() > 0.99, "{}", c.truth_ok);
    }

    #[test]
    fn dense_class_elects_within_bound() {
        // quick mode still gets `leader_trials`' 40-trial floor, enough
        // that the 0.6 threshold is not a coin flip on the realization.
        let c = leader_sweep(&ExpConfig::quick(), 64);
        assert!(c.elected.estimate() > 0.6, "{}", c.elected);
        assert!(c.within_bound.estimate() > 0.9, "{}", c.within_bound);
    }

    #[test]
    fn perfetto_artifact_contains_size_estimates() {
        let dir = std::env::temp_dir().join("dcr_e19_probe_test");
        let path = write_perfetto(&ExpConfig::quick(), &dir).expect("write");
        let json = std::fs::read_to_string(&path).expect("read back");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
        assert!(json.contains(r#""name":"SizeEstimate""#));
        std::fs::remove_dir_all(&dir).ok();
    }
}
