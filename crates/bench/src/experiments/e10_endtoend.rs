//! **E10 — end-to-end shootout**: PUNCTUAL vs. the classic protocols on
//! dynamic, unaligned, γ-slack-feasible traffic.
//!
//! The paper's motivating comparison: deadline-oblivious backoff (BEB,
//! sawtooth, ALOHA, UNIFORM) against the deadline-aware PUNCTUAL, with an
//! offline EDF genie as the upper bound. E10a runs mixed Poisson traffic;
//! E10b runs a scaled harmonic burst and scores the most urgent quartile.
//! (See the in-report note on which separations are measurable at laptop
//! constants; the paper's headline separation is asymptotic.)

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::scheduled::scheduled_protocols;
use dcr_baselines::{BinaryExponentialBackoff, FixedProbability, Sawtooth};
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::metrics::SimReport;
use dcr_sim::rng::{SeedSeq, StreamLabel};
use dcr_sim::runner::run_trials;
use dcr_stats::Table;
use dcr_workloads::generators::{poisson, thin_to_feasible};
use dcr_workloads::Instance;

const SMALL_W: u64 = 1 << 12;
const LARGE_W: u64 = 1 << 14;

fn punctual_params() -> PunctualParams {
    PunctualParams::laptop()
}

/// Poisson traffic thinned to 1/16-slack feasibility.
fn make_instance(cfg: &ExpConfig) -> Instance {
    let horizon = if cfg.quick { 1u64 << 15 } else { 1u64 << 17 };
    let mut rng = SeedSeq::new(cfg.seed).rng(StreamLabel::Workload, 0xE10);
    let raw = poisson(0.02, horizon, &[SMALL_W, LARGE_W], &mut rng);
    thin_to_feasible(raw, 1.0 / 16.0)
}

struct Row {
    overall: f64,
    small: f64,
    large: f64,
}

fn run_one(_cfg: &ExpConfig, instance: &Instance, proto: &str, seed: u64) -> SimReport {
    match proto {
        "punctual" => run_instance(
            instance,
            EngineConfig::default(),
            None,
            seed,
            PunctualProtocol::factory(punctual_params()),
        ),
        "beb" => run_instance(
            instance,
            EngineConfig::default(),
            None,
            seed,
            BinaryExponentialBackoff::factory(1024),
        ),
        "sawtooth" => run_instance(
            instance,
            EngineConfig::default(),
            None,
            seed,
            Sawtooth::factory(),
        ),
        "aloha(3/w)" => run_instance(
            instance,
            EngineConfig::default(),
            None,
            seed,
            FixedProbability::per_window(3.0),
        ),
        "uniform" => run_instance(instance, EngineConfig::default(), None, seed, |_| {
            Box::new(Uniform::single())
        }),
        "edf-genie" => {
            let protos = scheduled_protocols(&instance.jobs).expect("instance is feasible");
            let mut it = protos.into_iter();
            run_instance(instance, EngineConfig::default(), None, seed, move |_| {
                Box::new(it.next().expect("one protocol per job"))
            })
        }
        _ => unreachable!(),
    }
}

fn measure(cfg: &ExpConfig, instance: &Instance, proto: &str) -> Row {
    let trials = cfg.cell_trials(24);
    let results = run_trials(trials, cfg.seed ^ 0xE10E10, |_, seed| {
        let r = run_one(cfg, instance, proto, seed);
        (
            r.success_fraction(),
            r.success_fraction_for_window(SMALL_W).unwrap_or(1.0),
            r.success_fraction_for_window(LARGE_W).unwrap_or(1.0),
        )
    });
    let n = results.len() as f64;
    Row {
        overall: results.iter().map(|t| t.value.0).sum::<f64>() / n,
        small: results.iter().map(|t| t.value.1).sum::<f64>() / n,
        large: results.iter().map(|t| t.value.2).sum::<f64>() / n,
    }
}

/// The fairness workload inside PUNCTUAL's operating envelope: the
/// Lemma 5 harmonic shape scaled up — `n` jobs released together, job `j`
/// with window `j·4096` — so the most urgent job has 4096 slots and the
/// most patient has `n·4096`.
fn fairness_instance(n: usize) -> Instance {
    dcr_workloads::generators::harmonic(n, 1 << 12)
}

/// Success rate of the most urgent quartile on the fairness instance.
fn urgent_quartile(cfg: &ExpConfig, instance: &Instance, proto: &str) -> f64 {
    let trials = cfg.cell_trials(24);
    let q = (instance.n() / 4).max(1);
    let results = run_trials(trials, cfg.seed ^ 0xFA1A, |_, seed| {
        let r = run_one(cfg, instance, proto, seed);
        (0..q).filter(|&i| r.outcome(i as u32).is_success()).count() as f64 / q as f64
    });
    results.iter().map(|t| t.value).sum::<f64>() / results.len() as f64
}

/// Run E10.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let instance = make_instance(cfg);
    let mut rb = ReportBuilder::new("e10", "E10: end-to-end protocol shootout", cfg);
    rb.param("n_jobs", instance.n())
        .param("small_window", SMALL_W)
        .param("large_window", LARGE_W)
        .param("trials_per_cell", cfg.cell_trials(24));
    let mut table = Table::new(vec![
        "protocol",
        "overall delivered",
        "small-window (urgent)",
        "large-window",
    ])
    .with_title(format!(
        "E10a: end-to-end on Poisson traffic (n={}, windows {SMALL_W}/{LARGE_W}, \
         1/16-slack), seed {}",
        instance.n(),
        cfg.seed
    ));
    let mut rows = Vec::new();
    for proto in [
        "edf-genie",
        "punctual",
        "sawtooth",
        "beb",
        "aloha(3/w)",
        "uniform",
    ] {
        let row = measure(cfg, &instance, proto);
        rb.row(proto, "overall_delivered", row.overall)
            .row(proto, "small_window_delivered", row.small)
            .row(proto, "large_window_delivered", row.large)
            .add_trials(cfg.cell_trials(24));
        table.row(vec![
            proto.to_string(),
            format!("{:.3}", row.overall),
            format!("{:.3}", row.small),
            format!("{:.3}", row.large),
        ]);
        rows.push((proto, row));
    }
    let mut out = table.render();
    out.push_str(
        "\nshape checks: genie = 1.0; on lightly loaded feasible traffic every \
         reasonable protocol is near-perfect — the separation is fairness, below\n",
    );

    // E10b: the fairness shootout (scaled harmonic instance).
    let n = if cfg.quick { 16 } else { 24 };
    let fair = fairness_instance(n);
    let mut t2 = Table::new(vec!["protocol", "urgent-quartile delivered"]).with_title(format!(
        "\nE10b: fairness — harmonic burst, n={n} jobs, w_j = j·4096, most urgent \
         quartile, seed {}",
        cfg.seed
    ));
    let mut punctual_urgent = 0.0;
    for proto in [
        "edf-genie",
        "punctual",
        "sawtooth",
        "beb",
        "aloha(3/w)",
        "uniform",
    ] {
        let u = urgent_quartile(cfg, &fair, proto);
        if proto == "punctual" {
            punctual_urgent = u;
        }
        rb.row(format!("fairness,{proto}"), "urgent_quartile", u)
            .add_trials(cfg.cell_trials(24));
        t2.row(vec![proto.to_string(), format!("{u:.3}")]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\nshape check: PUNCTUAL must hold the urgent quartile near 1.0 (its per-job \
         guarantee). NOTE an honest scale effect: windows large enough for PUNCTUAL's \
         machinery are also large enough that the baselines rarely starve here — the \
         contention that kills them needs tiny windows (E3, where their most-urgent \
         delivery is 0.000) or adversarial sustained load beyond feasible instances. \
         The paper's separation is asymptotic; at laptop constants the measurable \
         wins are E3's fairness gradient and the E12 clock ablation.\n",
    );
    let genie = rows
        .iter()
        .find(|(p, _)| *p == "edf-genie")
        .map(|(_, r)| r.overall)
        .unwrap_or(0.0);
    rb.check(
        "genie_delivers_everything",
        (genie - 1.0).abs() < 1e-9,
        format!("edf-genie overall {genie:.3}"),
    )
    .check(
        "punctual_holds_urgent_quartile",
        punctual_urgent > 0.8,
        format!("punctual urgent quartile {punctual_urgent:.3}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genie_delivers_everything() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg);
        let row = measure(&cfg, &inst, "edf-genie");
        assert!((row.overall - 1.0).abs() < 1e-9, "{}", row.overall);
    }

    #[test]
    fn instance_mixes_both_window_sizes() {
        let inst = make_instance(&ExpConfig::quick());
        let h = inst.window_histogram();
        assert!(h.get(&SMALL_W).copied().unwrap_or(0) > 0);
        assert!(h.get(&LARGE_W).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn punctual_competitive_with_uniform_overall() {
        let cfg = ExpConfig::quick();
        let inst = make_instance(&cfg);
        let p = measure(&cfg, &inst, "punctual");
        let u = measure(&cfg, &inst, "uniform");
        assert!(
            p.overall >= u.overall - 0.05,
            "punctual {} vs uniform {}",
            p.overall,
            u.overall
        );
    }

    #[test]
    fn punctual_holds_urgent_quartile_on_fairness_instance() {
        let cfg = ExpConfig::quick();
        let fair = fairness_instance(16);
        let u = urgent_quartile(&cfg, &fair, "punctual");
        assert!(u > 0.8, "urgent quartile {u}");
    }
}
