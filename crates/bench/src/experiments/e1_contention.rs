//! **E1 — Lemma 2 / Corollary 3**: contention vs. per-slot success
//! probability.
//!
//! Claim: when every individual probability is ≤ 1/2,
//! `C·e^{−2C} ≤ p_suc ≤ 2C·e^{−C}`. We hold the channel at contention `C`
//! with `n` persistent probes at `p = C/n` and measure the fraction of
//! successful slots; the measured value must land inside the sandwich,
//! peak near `C ≈ 1`, and die exponentially for large `C`.

use crate::config::ExpConfig;
use crate::experiments::util::PersistentP;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::contention::success_prob_bounds;
use dcr_sim::engine::{Engine, EngineConfig};
use dcr_sim::job::JobSpec;
use dcr_stats::table::fnum;
use dcr_stats::{Proportion, Table};

const PROBES: u32 = 50;

/// Measure per-slot success probability at contention `c`.
fn measure(c: f64, slots: u64, seed: u64) -> Proportion {
    let p = (c / f64::from(PROBES)).min(0.5);
    let mut e = Engine::new(EngineConfig::default(), seed);
    for i in 0..PROBES {
        e.add_job(JobSpec::new(i, 0, slots), Box::new(PersistentP(p)));
    }
    let r = e.run();
    Proportion::new(r.counts.success, r.slots_run)
}

/// Run E1.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let slots = if cfg.quick { 4_000 } else { 40_000 };
    let grid = [0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];
    let mut rb = ReportBuilder::new("e1", "E1 (Lemma 2): contention vs success probability", cfg);
    rb.param("probes", PROBES)
        .param("slots", slots)
        .param("contention_grid", format!("{grid:?}"));

    let mut table = Table::new(vec![
        "C",
        "lower C·e^-2C",
        "measured p_suc",
        "upper 2C·e^-C",
        "in bounds",
    ])
    .with_title(format!(
        "E1 (Lemma 2): contention vs success probability — {PROBES} probes, {slots} slots, seed {}",
        cfg.seed
    ));

    let mut violations = 0;
    for (i, &c) in grid.iter().enumerate() {
        let prop = measure(c, slots, cfg.seed.wrapping_add(i as u64));
        let (lo, hi) = success_prob_bounds(c);
        let (ci_lo, ci_hi) = prop.wilson95();
        // Statistical check: the *interval* must overlap the bound band.
        let ok = ci_hi >= lo && ci_lo <= hi;
        if !ok {
            violations += 1;
        }
        rb.prop(format!("C={c}"), "p_success", &prop)
            .row(format!("C={c}"), "bound_lo", lo)
            .row(format!("C={c}"), "bound_hi", hi)
            .add_slots(slots);
        table.row(vec![
            fnum(c),
            fnum(lo),
            format!("{:.4} [{:.4},{:.4}]", prop.estimate(), ci_lo, ci_hi),
            fnum(hi),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }

    let mut out = table.render();
    out.push_str(&format!(
        "\nbound violations: {violations}/{} (expected 0)\n\
         shape check: peak near C=1, exponential collapse for C >= 4\n",
        grid.len()
    ));
    rb.check(
        "lemma2_sandwich",
        violations == 0,
        format!("violations {violations}/{}", grid.len()),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_on_quick_run() {
        let out = run(&ExpConfig::quick());
        assert!(
            out.text.contains("bound violations: 0/"),
            "Lemma 2 sandwich violated:\n{}",
            out.text
        );
        // The structured artifact carries the same verdict and one CI row
        // per grid point.
        assert!(out.report.all_checks_passed());
        assert_eq!(
            out.report
                .rows
                .iter()
                .filter(|r| r.metric == "p_success")
                .count(),
            11
        );
    }

    #[test]
    fn high_contention_collapses() {
        let p = measure(8.0, 5_000, 11);
        assert!(p.estimate() < 0.02, "p_suc at C=8 should be tiny: {p}");
    }

    #[test]
    fn unit_contention_near_inverse_e() {
        let p = measure(1.0, 20_000, 13);
        assert!(
            (p.estimate() - 0.37).abs() < 0.05,
            "C=1 should give ~1/e: {p}"
        );
    }
}
