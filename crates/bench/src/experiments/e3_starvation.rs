//! **E3 — Lemma 5**: UNIFORM starves small-window jobs.
//!
//! Claim: on the harmonic instance (all `n` jobs released at slot 0, job
//! `j` with window `j/γ`), the early jobs face contention `≈ ln n` in
//! every slot of their windows and succeed with probability only
//! `O(1/n^Θ(1))` — "ironically, the high-priority messages … are most at
//! risk of starving". We sweep `n` and report the success probability of
//! the most urgent job and of the most urgent decile, for UNIFORM and for
//! the classic backoff baselines (which have the same pathology).

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::{BinaryExponentialBackoff, Sawtooth};
use dcr_core::uniform::Uniform;
use dcr_sim::engine::{EngineConfig, Protocol};
use dcr_sim::runner::run_trials;
use dcr_stats::{loglog_slope, Proportion, Table};
use dcr_workloads::generators::harmonic;

// γ = 1/2: contention at the head of the harmonic instance is H(n)·γ ≈
// ln(n)/2, which makes the polynomial starvation visible at n ≤ 1024. (At
// smaller γ the same decay exists but needs astronomically large n — the
// Θ(1) exponent in Lemma 5 scales with γ.)
const INV_GAMMA: u64 = 2;

/// Per-trial outcome: (first job succeeded, fraction of first decile
/// succeeded, overall fraction).
fn trial<F>(n: usize, seed: u64, factory: F) -> (bool, f64, f64)
where
    F: FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol>,
{
    let instance = harmonic(n, INV_GAMMA);
    // Vectorized is bit-identical to exact (DESIGN.md §3f); UNIFORM k=1
    // rides the one-shot calendar, k=3 falls back to the exact path.
    let r = run_instance(
        &instance,
        EngineConfig::default().vectorized(),
        None,
        seed,
        factory,
    );
    let decile = (n / 10).max(1);
    let decile_ok = (0..decile)
        .filter(|&i| r.outcome(i as u32).is_success())
        .count() as f64
        / decile as f64;
    (r.outcome(0).is_success(), decile_ok, r.success_fraction())
}

struct Cell {
    first: Proportion,
    decile: f64,
    overall: f64,
}

fn sweep(cfg: &ExpConfig, n: usize, proto: &str) -> Cell {
    let trials = cfg.cell_trials(200);
    let results = run_trials(trials, cfg.seed ^ (n as u64) << 8, |_, seed| match proto {
        "uniform" => trial(n, seed, |_| Box::new(Uniform::single())),
        "uniform3" => trial(n, seed, |_| Box::new(Uniform::new(3))),
        "beb" => trial(n, seed, |_| Box::new(BinaryExponentialBackoff::new())),
        "sawtooth" => trial(n, seed, |_| Box::new(Sawtooth::new())),
        _ => unreachable!(),
    });
    let hits = results.iter().filter(|t| t.value.0).count() as u64;
    let decile = results.iter().map(|t| t.value.1).sum::<f64>() / results.len() as f64;
    let overall = results.iter().map(|t| t.value.2).sum::<f64>() / results.len() as f64;
    Cell {
        first: Proportion::new(hits, trials),
        decile,
        overall,
    }
}

/// Run E3.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let ns: &[usize] = if cfg.quick {
        &[16, 64, 256]
    } else {
        &[16, 32, 64, 128, 256, 512, 1024]
    };
    let mut rb = ReportBuilder::new("e3", "E3 (Lemma 5): UNIFORM starves urgent jobs", cfg);
    rb.param("inv_gamma", INV_GAMMA)
        .param("ns", format!("{ns:?}"))
        .param("trials_per_cell", cfg.cell_trials(200));
    let mut out = String::new();
    let mut uniform_points = Vec::new();
    for proto in ["uniform", "uniform3", "beb", "sawtooth"] {
        let mut table = Table::new(vec![
            "n",
            "P[most urgent job succeeds]",
            "urgent decile",
            "overall",
        ])
        .with_title(format!(
            "E3 (Lemma 5): {proto} on harmonic instance w_j = {INV_GAMMA}j, seed {}",
            cfg.seed
        ));
        for &n in ns {
            let cell = sweep(cfg, n, proto);
            if proto == "uniform" {
                uniform_points.push((n as f64, cell.first.estimate()));
            }
            let id = format!("{proto},n={n}");
            rb.prop(&id, "p_first_success", &cell.first)
                .row(&id, "urgent_decile", cell.decile)
                .row(&id, "overall_fraction", cell.overall)
                .add_trials(cfg.cell_trials(200));
            table.row(vec![
                n.to_string(),
                cell.first.to_string(),
                format!("{:.3}", cell.decile),
                format!("{:.3}", cell.overall),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    if let Some(fit) = loglog_slope(&uniform_points, Some(1e-3)) {
        out.push_str(&format!(
            "UNIFORM most-urgent-job success ∝ n^{:.2} (R²={:.2}) — Lemma 5 predicts a \
             negative power of n\n",
            fit.slope, fit.r2
        ));
        rb.row("uniform", "loglog_slope", fit.slope)
            .row("uniform", "loglog_r2", fit.r2)
            .check(
                "starvation_is_polynomial",
                fit.slope < 0.0,
                format!("fitted exponent {:.2}", fit.slope),
            );
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_starves_most_urgent_job() {
        let cfg = ExpConfig::quick();
        let small = sweep(&cfg, 16, "uniform");
        let large = sweep(&cfg, 256, "uniform");
        assert!(
            large.first.estimate() < small.first.estimate(),
            "starvation should worsen with n: {} vs {}",
            small.first,
            large.first
        );
        // At n=256 the most urgent job has contention ≈ ln(256)/8 per slot
        // over only 8 slots; success should already be rare.
        assert!(large.first.estimate() < 0.5, "{}", large.first);
    }

    #[test]
    fn overall_fraction_stays_constant_while_urgent_starves() {
        // Lemma 4 and Lemma 5 at once: a constant overall fraction with a
        // starving head. (γ = 1/2 here is outside Lemma 4's γ < 1/6, so
        // the overall constant is smaller than E2's — but still Θ(n).)
        let cell = sweep(&ExpConfig::quick(), 256, "uniform");
        assert!(cell.overall > 0.3, "overall={}", cell.overall);
        assert!(cell.decile < cell.overall, "decile should lag overall");
    }
}
