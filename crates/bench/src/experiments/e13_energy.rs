//! **E13 — channel-access (energy) cost**: what each protocol pays per
//! delivered message.
//!
//! The contention-resolution literature the paper builds on (its refs
//! [17, 29, 59]) treats transmissions and listening slots as the energy
//! currency. The deadline guarantees of ALIGNED/PUNCTUAL are bought with
//! coordination traffic; this table quantifies the exchange rate against
//! the deadline-oblivious baselines on one common batch.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::{BinaryExponentialBackoff, FixedProbability, Sawtooth};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::runner::run_trials;
use dcr_stats::Table;
use dcr_workloads::generators::batch;

const N_JOBS: usize = 16;
const WINDOW: u64 = 1 << 13;

struct Row {
    delivered: f64,
    tx_per_job: f64,
    radio_on: f64,
}

fn measure(cfg: &ExpConfig, proto: &str) -> Row {
    let instance = batch(N_JOBS, WINDOW);
    let trials = cfg.cell_trials(40);
    let results = run_trials(trials, cfg.seed ^ 0xE13, |_, seed| {
        let r = match proto {
            "aligned" => run_instance(
                &instance,
                EngineConfig::aligned(),
                None,
                seed,
                AlignedProtocol::factory(AlignedParams::new(1, 2, 13)),
            ),
            "punctual" => run_instance(
                &instance,
                EngineConfig::default(),
                None,
                seed,
                PunctualProtocol::factory(PunctualParams::laptop()),
            ),
            "beb" => run_instance(
                &instance,
                EngineConfig::default(),
                None,
                seed,
                BinaryExponentialBackoff::factory(1024),
            ),
            "sawtooth" => run_instance(
                &instance,
                EngineConfig::default(),
                None,
                seed,
                Sawtooth::factory(),
            ),
            "aloha(3/w)" => run_instance(
                &instance,
                EngineConfig::default(),
                None,
                seed,
                FixedProbability::per_window(3.0),
            ),
            "uniform" => run_instance(&instance, EngineConfig::default(), None, seed, |_| {
                Box::new(Uniform::single())
            }),
            _ => unreachable!(),
        };
        (
            r.success_fraction(),
            r.mean_transmissions(),
            r.mean_accesses(),
        )
    });
    let n = results.len() as f64;
    Row {
        delivered: results.iter().map(|t| t.value.0).sum::<f64>() / n,
        tx_per_job: results.iter().map(|t| t.value.1).sum::<f64>() / n,
        radio_on: results.iter().map(|t| t.value.2).sum::<f64>() / n,
    }
}

/// Run E13.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rb = ReportBuilder::new("e13", "E13: channel-access (energy) cost", cfg);
    rb.param("n_jobs", N_JOBS)
        .param("window", WINDOW)
        .param("trials_per_cell", cfg.cell_trials(40));
    let mut table = Table::new(vec![
        "protocol",
        "delivered",
        "tx per job",
        "radio-on slots per job",
    ])
    .with_title(format!(
        "E13: energy — batch of {N_JOBS} jobs, window {WINDOW}, seed {}",
        cfg.seed
    ));
    let mut uniform_tx = f64::NAN;
    for proto in [
        "aligned",
        "punctual",
        "sawtooth",
        "beb",
        "aloha(3/w)",
        "uniform",
    ] {
        let row = measure(cfg, proto);
        if proto == "uniform" {
            uniform_tx = row.tx_per_job;
        }
        rb.row(proto, "delivered_fraction", row.delivered)
            .row(proto, "tx_per_job", row.tx_per_job)
            .row(proto, "radio_on_per_job", row.radio_on)
            .add_trials(cfg.cell_trials(40))
            .add_slots(cfg.cell_trials(40) * WINDOW);
        table.row(vec![
            proto.to_string(),
            format!("{:.3}", row.delivered),
            format!("{:.1}", row.tx_per_job),
            format!("{:.0}", row.radio_on),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nshape check: the deadline-aware protocols trade extra control \
         transmissions (estimation pings; starts/beacons/claims for PUNCTUAL) \
         and always-on listening for their per-job guarantee; UNIFORM is the \
         energy floor (1 tx, ~0 listen) and the fairness disaster of E3\n",
    );
    rb.check(
        "uniform_is_energy_floor",
        uniform_tx <= 1.0 + 1e-9,
        format!("uniform tx/job {uniform_tx:.3}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_energy_floor() {
        let cfg = ExpConfig::quick();
        let uniform = measure(&cfg, "uniform");
        let aligned = measure(&cfg, "aligned");
        assert!(uniform.tx_per_job < aligned.tx_per_job);
        assert!(uniform.tx_per_job <= 1.0 + 1e-9);
    }

    #[test]
    fn aligned_delivers_batch_reliably() {
        let row = measure(&ExpConfig::quick(), "aligned");
        assert!(row.delivered > 0.95, "delivered={}", row.delivered);
    }

    #[test]
    fn punctual_radio_cost_includes_round_overhead() {
        // PUNCTUAL transmits starts every round: its tx count dwarfs the
        // others' (that is the honest cost of clockless coordination).
        let cfg = ExpConfig::quick();
        let punctual = measure(&cfg, "punctual");
        let beb = measure(&cfg, "beb");
        assert!(punctual.tx_per_job > beb.tx_per_job);
    }
}
