//! **E5 — Lemma 6**: the active-step count is exactly
//! `2λ(ℓ² + n_ℓ − 1)`.
//!
//! This is a deterministic claim about the schedule length, which is what
//! lets every job replay every class's schedule from public information
//! (Lemma 7). We verify it two ways: symbolically against
//! [`AlignedParams::total_active`], and behaviourally — a driven class must
//! consume exactly that many *active* steps, i.e. the estimation length
//! plus the expanded broadcast layout.

use crate::config::ExpConfig;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::broadcast::BroadcastLayout;
use dcr_core::aligned::params::AlignedParams;
use dcr_stats::Table;

/// Run E5.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let lambdas: &[u64] = if cfg.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut rb = ReportBuilder::new("e5", "E5 (Lemma 6): active-step arithmetic", cfg);
    rb.param("lambdas", format!("{lambdas:?}"))
        .param("classes", "[1, 3, 6, 10, 16]")
        .param("n_exponents", "[0, 2, 5, 10]");
    let mut table = Table::new(vec![
        "λ",
        "ℓ",
        "n_ℓ",
        "est steps",
        "bcast steps (layout)",
        "total",
        "2λ(ℓ²+n_ℓ−1)",
        "match",
    ])
    .with_title("E5 (Lemma 6): active-step arithmetic");
    let mut mismatches = 0;
    for &lambda in lambdas {
        for class in [1u32, 3, 6, 10, 16] {
            for exp in [0u32, 2, 5, 10] {
                let n = 1u64 << exp;
                let p = AlignedParams::new(lambda, 2, 1);
                let layout = BroadcastLayout::new(&p, class, n);
                let total = p.est_len(class) + layout.total();
                let formula = 2 * lambda * (u64::from(class) * u64::from(class) + n - 1);
                let ok = total == formula && total == p.total_active(class, n);
                if !ok {
                    mismatches += 1;
                }
                let cell = format!("lambda={lambda},l={class},n={n}");
                rb.row(&cell, "total_active", total as f64)
                    .row(&cell, "formula", formula as f64);
                table.row(vec![
                    lambda.to_string(),
                    class.to_string(),
                    n.to_string(),
                    p.est_len(class).to_string(),
                    layout.total().to_string(),
                    total.to_string(),
                    formula.to_string(),
                    if ok { "yes".into() } else { "NO".into() },
                ]);
            }
        }
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nmismatches: {mismatches} (Lemma 6 requires 0)\n"
    ));
    rb.check(
        "lemma6_formula",
        mismatches == 0,
        format!("{mismatches} mismatches"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_everywhere() {
        let out = run(&ExpConfig::quick());
        assert!(out.text.contains("mismatches: 0"), "{}", out.text);
        assert!(out.report.all_checks_passed());
        // Every (λ, ℓ, n) cell contributes a total and a formula row.
        assert_eq!(out.report.rows.len(), 2 * 2 * 5 * 4);
    }
}
