//! **E20 — million-job scale**: the aggregate cohort paths re-measure the
//! paper's success-vs-slack shapes at population sizes the exact engine
//! cannot reach.
//!
//! The claims under test are the ones E2/E7 established at laptop scale:
//!
//! * (Lemma 4 shape) at fixed slack a constant fraction of a batch
//!   delivers, *flat in `n`* — here re-measured from `n = 10⁴` up to
//!   `n = 10⁶` under `Fidelity::Cohort`, where ALIGNED advances one exact
//!   per-class binomial per slot and PUNCTUAL advances the duty-masked
//!   group machine as an aggregate;
//! * (Theorem 14 shape) the delivered fraction is *monotone in slack* —
//!   swept over `1/γ ∈ {2, 4, 8, 16}`, approaching 1 once the window is
//!   comfortably feasible.
//!
//! **Statistical policy.** A batch class shares one size estimate (and,
//! for PUNCTUAL, one leader/anarchy fate), so per-job outcomes within a
//! trial are heavily clustered: a catastrophic estimate fails the whole
//! class at once, at every n in this sweep. All intervals here are
//! therefore **trial-level**: cells report the mean per-trial delivered
//! fraction ± 2 standard errors over trials, and the exact-path anchor
//! (E20c) checks both the trial-level means and the z = 4 **Wilson
//! intervals** of the good-trial rate — the fraction of trials delivering
//! ≥ 50%, a genuine binomial over independent trials. The tighter
//! distributional equivalence claims live in `tests/cohort_equivalence.rs`
//! (cluster-robust jammer grid) and `tests/partition_invariance.rs`
//! (replayability and shard invariance of the aggregate path).

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::punctual::params::ROUND_LEN;
use dcr_core::{AlignedParams, AlignedProtocol, PunctualParams, PunctualProtocol};
use dcr_sim::engine::EngineConfig;
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};
use dcr_workloads::generators::batch;

/// λ for both protocols (matches the equivalence suites).
const LAMBDA: u64 = 1;
/// τ for the embedded size estimation.
const TAU: u64 = 2;
/// A trial counts as *good* if it delivers at least this fraction — the
/// binomial event behind the anchor's Wilson cross-check.
const GOOD_TRIAL: f64 = 0.5;

/// Smallest power-of-two window of at least `slots` slots.
fn pow2_window(slots: u64) -> u64 {
    slots.next_power_of_two()
}

/// The ALIGNED batch window for `n` jobs at slack `1/γ = inv_gamma`:
/// density `n / w ≤ γ`.
fn aligned_window(n: u64, inv_gamma: u64) -> u64 {
    pow2_window(n * inv_gamma)
}

/// The PUNCTUAL batch window. Two structural factors sit on top of the
/// feasible-density budget: only one slot in [`ROUND_LEN`] feeds the
/// embedded ALIGNED run, and that run must fit a full power-of-two class
/// window *starting at a class boundary of the leader's rho-clock* — in
/// the worst case the wait for the boundary burns a whole class window
/// before the batch begins, hence the extra factor of two.
fn punctual_window(n: u64, inv_gamma: u64) -> u64 {
    pow2_window(pow2_window(n * inv_gamma) * 2 * ROUND_LEN)
}

/// One protocol arm of the sweep.
#[derive(Clone, Copy, PartialEq)]
enum Proto {
    Aligned,
    Punctual,
}

impl Proto {
    fn name(self) -> &'static str {
        match self {
            Proto::Aligned => "aligned",
            Proto::Punctual => "punctual",
        }
    }

    fn window(self, n: u64, inv_gamma: u64) -> u64 {
        match self {
            Proto::Aligned => aligned_window(n, inv_gamma),
            Proto::Punctual => punctual_window(n, inv_gamma),
        }
    }

    fn config(self, aggregate: bool) -> EngineConfig {
        let base = match self {
            Proto::Aligned => EngineConfig::aligned(),
            Proto::Punctual => EngineConfig::default(),
        };
        if aggregate {
            base.cohort()
        } else {
            base
        }
    }
}

/// One measured cell: per-trial delivered fractions plus total simulated
/// slots.
struct Cell {
    fractions: Vec<f64>,
    slots: u64,
}

impl Cell {
    fn mean(&self) -> f64 {
        self.fractions.iter().sum::<f64>() / self.fractions.len() as f64
    }

    /// Standard error of the mean over trials (0 for a single trial).
    fn se(&self) -> f64 {
        let k = self.fractions.len();
        if k < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.fractions.iter().map(|f| (f - m).powi(2)).sum::<f64>() / (k as f64 - 1.0);
        (var / k as f64).sqrt()
    }

    /// Good-trial rate as a binomial over independent trials.
    fn good_trials(&self) -> Proportion {
        let good = self.fractions.iter().filter(|&&f| f >= GOOD_TRIAL).count() as u64;
        Proportion::new(good, self.fractions.len() as u64)
    }
}

/// Run one `(protocol, fidelity, n, slack)` cell for `trials` trials of an
/// `n`-job batch.
fn run_cell(
    proto: Proto,
    aggregate: bool,
    n: u64,
    inv_gamma: u64,
    trials: u64,
    master_seed: u64,
) -> Cell {
    let w = proto.window(n, inv_gamma);
    let instance = batch(n as usize, w);
    let class = w.trailing_zeros();
    let results = run_trials(trials, master_seed, |_, seed| {
        let r = run_instance(
            &instance,
            proto.config(aggregate),
            None,
            seed,
            |_| -> Box<dyn dcr_sim::engine::Protocol> {
                match proto {
                    Proto::Aligned => {
                        Box::new(AlignedProtocol::new(AlignedParams::new(LAMBDA, TAU, class)))
                    }
                    Proto::Punctual => Box::new(PunctualProtocol::new(PunctualParams::laptop())),
                }
            },
        );
        (r.success_fraction(), r.slots_run)
    });
    Cell {
        fractions: results.iter().map(|t| t.value.0).collect(),
        slots: results.iter().map(|t| t.value.1).sum(),
    }
}

/// n grid for the scale sweep (E20b).
fn scale_ns(cfg: &ExpConfig) -> Vec<u64> {
    if cfg.quick {
        vec![1_000, 10_000, 100_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

/// Largest n at which the *exact* engine is still affordable for the
/// cross-check; PUNCTUAL's exact path polls every synchronized job every
/// start slot, so its overlap point sits an order of magnitude lower.
fn overlap_n(cfg: &ExpConfig, proto: Proto) -> u64 {
    match (proto, cfg.quick) {
        (Proto::Aligned, true) => 1_000,
        (Proto::Aligned, false) => 10_000,
        (Proto::Punctual, true) => 300,
        (Proto::Punctual, false) => 1_000,
    }
}

/// Trials for a cell, throttled by the per-trial slot cost.
fn cell_trials(cfg: &ExpConfig, proto: Proto, n: u64) -> u64 {
    match n {
        0..=10_000 => cfg.cell_trials(24),
        10_001..=100_000 => cfg.cell_trials(24).min(4),
        // The million-job cells. ALIGNED's aggregate is cheap enough to
        // replicate — and needs it: a whole-class estimate catastrophe
        // fails ~1 trial in 6 at *every* n here, so a single trial is
        // too noisy for the flatness check. PUNCTUAL's 2^28-slot window
        // (~30 s/trial) stays single-trial.
        _ => match proto {
            Proto::Aligned => 6,
            Proto::Punctual => 1,
        },
    }
}

/// Record one cell in the artifact: mean ± 2 trial-level SE when the cell
/// has replication, a bare value for single-trial scale cells.
fn record(rb: &mut ReportBuilder, id: &str, cell: &Cell) {
    let (m, se) = (cell.mean(), cell.se());
    if cell.fractions.len() > 1 {
        rb.row_ci(
            id,
            "delivered",
            m,
            ((m - 2.0 * se).max(0.0), (m + 2.0 * se).min(1.0)),
            cell.fractions.len() as u64,
        );
    } else {
        rb.row(id, "delivered", m);
    }
    rb.add_trials(cell.fractions.len() as u64)
        .add_slots(cell.slots);
}

/// Run E20.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rb = ReportBuilder::new(
        "e20",
        "E20: aggregate-fidelity success-vs-slack at million-job scale",
        cfg,
    );
    let slacks: &[u64] = &[2, 4, 8, 16];
    rb.param("lambda", LAMBDA)
        .param("tau", TAU)
        .param("good_trial_threshold", GOOD_TRIAL)
        .param("slack_grid", format!("{slacks:?}"))
        .param("scale_ns", format!("{:?}", scale_ns(cfg)));

    // E20a — success vs slack at the largest multi-trial n.
    let slack_n: u64 = if cfg.quick { 10_000 } else { 100_000 };
    let mut t1 =
        Table::new(vec!["protocol", "1/γ", "window", "delivered (±2se)"]).with_title(format!(
            "E20a (Theorem 14 shape): delivered fraction vs slack, n = {slack_n}, \
             aggregate fidelity, seed {}",
            cfg.seed
        ));
    let mut monotone_ok = true;
    let mut top_slack = f64::INFINITY;
    for proto in [Proto::Aligned, Proto::Punctual] {
        let mut prev = 0.0f64;
        for (i, &g) in slacks.iter().enumerate() {
            let trials = cell_trials(cfg, proto, slack_n).min(6);
            let c = run_cell(proto, true, slack_n, g, trials, cfg.seed ^ (g << 8));
            record(&mut rb, &format!("slack,{},g={g}", proto.name()), &c);
            t1.row(vec![
                proto.name().to_string(),
                g.to_string(),
                proto.window(slack_n, g).to_string(),
                format!("{:.3} ±{:.3}", c.mean(), 2.0 * c.se()),
            ]);
            // Monotone up to trial-level noise: a step may dip by at most
            // two combined standard errors (floor 0.05).
            let tol = (2.0 * (c.se() + 0.02)).max(0.05);
            if i > 0 && c.mean() < prev - tol {
                monotone_ok = false;
            }
            prev = c.mean();
        }
        top_slack = top_slack.min(prev);
    }
    let mut out = t1.render();

    // E20b — scale sweep at fixed slack: Lemma 4's constant fraction must
    // stay flat while n spans two orders of magnitude.
    let inv_gamma = 8u64;
    let mut t2 = Table::new(vec![
        "protocol",
        "n",
        "window",
        "trials",
        "delivered (±2se)",
    ])
    .with_title(format!(
        "\nE20b (Lemma 4 shape): delivered fraction vs n at 1/γ = {inv_gamma}, \
             aggregate fidelity, seed {}",
        cfg.seed
    ));
    let mut spreads = Vec::new();
    for proto in [Proto::Aligned, Proto::Punctual] {
        let mut means = Vec::new();
        for &n in &scale_ns(cfg) {
            let trials = cell_trials(cfg, proto, n);
            let c = run_cell(proto, true, n, inv_gamma, trials, cfg.seed ^ n);
            record(&mut rb, &format!("scale,{},n={n}", proto.name()), &c);
            t2.row(vec![
                proto.name().to_string(),
                n.to_string(),
                proto.window(n, inv_gamma).to_string(),
                trials.to_string(),
                format!("{:.3} ±{:.3}", c.mean(), 2.0 * c.se()),
            ]);
            means.push(c.mean());
        }
        let spread = means.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().copied().fold(f64::INFINITY, f64::min);
        spreads.push((proto, spread));
    }
    out.push_str(&t2.render());

    // E20c — fidelity anchor: exact vs aggregate at the largest
    // overlapping n. Two comparisons per protocol: trial-level means
    // within 4 combined SEs, and z = 4 Wilson overlap of the good-trial
    // rates (independent Bernoulli trials, so Wilson is honest).
    let mut t3 = Table::new(vec![
        "protocol",
        "n",
        "exact mean",
        "agg mean",
        "exact good (Wilson z=4)",
        "agg good (Wilson z=4)",
    ])
    .with_title(format!(
        "\nE20c: exact-path cross-check at overlapping n, seed {}",
        cfg.seed
    ));
    let mut anchors_ok = true;
    for proto in [Proto::Aligned, Proto::Punctual] {
        let n = overlap_n(cfg, proto);
        let trials = cell_trials(cfg, proto, n).min(12);
        let ce = run_cell(proto, false, n, inv_gamma, trials, cfg.seed ^ 0xE20A);
        let ca = run_cell(proto, true, n, inv_gamma, trials, cfg.seed ^ 0xE20B);
        let mean_tol = (4.0 * (ce.se() + ca.se())).max(0.06);
        let means_ok = (ce.mean() - ca.mean()).abs() <= mean_tol;
        let (ge, ga) = (ce.good_trials(), ca.good_trials());
        let (elo, ehi) = ge.wilson(4.0);
        let (alo, ahi) = ga.wilson(4.0);
        let wilson_ok = elo <= ahi && alo <= ehi;
        anchors_ok &= means_ok && wilson_ok;
        let id = format!("anchor,{}", proto.name());
        record(&mut rb, &format!("{id},exact"), &ce);
        record(&mut rb, &format!("{id},aggregate"), &ca);
        rb.prop(&id, "exact_good_trials", &ge)
            .prop(&id, "aggregate_good_trials", &ga);
        t3.row(vec![
            proto.name().to_string(),
            n.to_string(),
            format!("{:.3} ±{:.3}", ce.mean(), 2.0 * ce.se()),
            format!("{:.3} ±{:.3}", ca.mean(), 2.0 * ca.se()),
            format!("[{elo:.3}, {ehi:.3}]"),
            format!("[{alo:.3}, {ahi:.3}]"),
        ]);
    }
    out.push_str(&t3.render());
    out.push_str(
        "\nshape checks: delivered fraction monotone in slack and flat in n; the \
         aggregate path is anchored to the exact engine at the overlap points. \
         All intervals are trial-level — a batch class shares one estimate, so \
         per-job outcomes cluster by trial at every n here.\n",
    );

    rb.check(
        "slack_shape_monotone",
        monotone_ok,
        "delivered fraction non-decreasing in slack (trial-level noise allowance)",
    )
    .check(
        "ample_slack_delivers",
        top_slack > 0.85,
        format!("delivered at 1/γ = 16: {top_slack:.3}"),
    );
    for (proto, spread) in &spreads {
        // 0.2 allowance: the small-n end of the sweep still sees rare
        // whole-class estimate catastrophes that lift the trial-level
        // spread; they vanish as n grows, which is itself part of the
        // shape being measured.
        rb.check(
            &format!("fraction_flat_in_n_{}", proto.name()),
            *spread < 0.2,
            format!("{} mean spread over scale sweep {spread:.3}", proto.name()),
        );
    }
    rb.check(
        "aggregate_anchored_to_exact",
        anchors_ok,
        "trial-level means within 4 SE and good-trial Wilson z=4 intervals overlap",
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_aggregate_cell_delivers_at_ample_slack() {
        let c = run_cell(Proto::Aligned, true, 2_000, 16, 4, 0xE20);
        assert!(c.mean() > 0.9, "{}", c.mean());
    }

    #[test]
    fn punctual_aggregate_cell_delivers_at_ample_slack() {
        let c = run_cell(Proto::Punctual, true, 500, 16, 4, 0xE21);
        assert!(c.mean() > 0.8, "{}", c.mean());
    }

    #[test]
    fn exact_and_aggregate_anchor_cells_agree() {
        let ce = run_cell(Proto::Aligned, false, 1_000, 8, 10, 0xE22);
        let ca = run_cell(Proto::Aligned, true, 1_000, 8, 10, 0xE23);
        let tol = (4.0 * (ce.se() + ca.se())).max(0.06);
        assert!(
            (ce.mean() - ca.mean()).abs() <= tol,
            "exact {:.3}±{:.3} vs aggregate {:.3}±{:.3}",
            ce.mean(),
            ce.se(),
            ca.mean(),
            ca.se()
        );
        let (elo, ehi) = ce.good_trials().wilson(4.0);
        let (alo, ahi) = ca.good_trials().wilson(4.0);
        assert!(elo <= ahi && alo <= ehi, "good-trial rates diverge");
    }

    #[test]
    fn windows_scale_with_round_structure() {
        assert_eq!(aligned_window(1_000, 8), 8192);
        // Round structure ×10 plus the class-boundary factor ×2 on top of
        // the pow2 density window.
        assert!(punctual_window(1_000, 8) >= 2 * ROUND_LEN * 8192);
    }
}
