//! **E6 — Lemmas 11–12**: truncation becomes unlikely as γ shrinks.
//!
//! Claim: for small enough γ (equivalently: a large enough smallest window
//! `w₀ = 1/γ`, i.e. `min_class = log2(1/γ)`), every window's algorithm
//! runs to completion w.h.p. — the deterministic estimation overhead
//! `λ·Σ_{ℓ≥min} ℓ²/2^ℓ` plus the estimate-driven broadcast time fit inside
//! the window. We fix the *shape* of a nested multi-class instance and
//! shift it across `min_class`, measuring how often the largest class is
//! truncated (its jobs give up).

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};
use dcr_workloads::generators::{aligned_classes, ClassSpec};
use dcr_workloads::Instance;

/// Nested instance: three consecutive classes starting at `base`, one job
/// per window in the two smaller classes, two in the largest; horizon = 2
/// large windows.
fn instance(base: u32) -> Instance {
    aligned_classes(
        &[
            ClassSpec {
                class: base,
                jobs_per_window: 1,
            },
            ClassSpec {
                class: base + 1,
                jobs_per_window: 1,
            },
            ClassSpec {
                class: base + 2,
                jobs_per_window: 2,
            },
        ],
        1u64 << (base + 3),
        None,
    )
}

struct Cell {
    top_all_delivered: Proportion,
    overall: f64,
    overhead: f64,
}

fn sweep(cfg: &ExpConfig, base: u32) -> Cell {
    let params = AlignedParams::new(1, 2, base);
    let inst = instance(base);
    let top_w = 1u64 << (base + 2);
    let trials = cfg.cell_trials(120);
    let results = run_trials(trials, cfg.seed ^ u64::from(base), |_, seed| {
        let r = run_instance(
            &inst,
            EngineConfig::aligned(),
            None,
            seed,
            AlignedProtocol::factory(params),
        );
        (
            r.success_fraction_for_window(top_w).unwrap_or(0.0) >= 1.0,
            r.success_fraction(),
        )
    });
    let hits = results.iter().filter(|t| t.value.0).count() as u64;
    let overall = results.iter().map(|t| t.value.1).sum::<f64>() / trials as f64;
    Cell {
        top_all_delivered: Proportion::new(hits, trials),
        overall,
        overhead: params.overhead_fraction(),
    }
}

/// Run E6.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let bases: &[u32] = if cfg.quick {
        &[6, 8, 10]
    } else {
        &[5, 6, 7, 8, 9, 10]
    };
    let mut rb = ReportBuilder::new("e6", "E6 (Lemma 12): truncation vs gamma", cfg);
    rb.param("min_classes", format!("{bases:?}"))
        .param("trials_per_cell", cfg.cell_trials(120));
    let mut table = Table::new(vec![
        "min_class (= log2 1/γ)",
        "est overhead λΣℓ²/2^ℓ",
        "P[top class fully delivered]",
        "overall fraction",
    ])
    .with_title(format!(
        "E6 (Lemma 12): truncation vs γ — nested 3-class instances, λ=1, seed {}",
        cfg.seed
    ));
    let mut cells = Vec::new();
    for &base in bases {
        let cell = sweep(cfg, base);
        let id = format!("min_class={base}");
        rb.prop(&id, "p_top_fully_delivered", &cell.top_all_delivered)
            .row(&id, "overall_fraction", cell.overall)
            .row(&id, "est_overhead", cell.overhead)
            .add_trials(cfg.cell_trials(120));
        table.row(vec![
            base.to_string(),
            format!("{:.2}", cell.overhead),
            cell.top_all_delivered.to_string(),
            format!("{:.3}", cell.overall),
        ]);
        cells.push(cell);
    }
    let mut out = table.render();
    let first = cells
        .first()
        .map(|c| c.top_all_delivered.estimate())
        .unwrap_or(0.0);
    let last = cells
        .last()
        .map(|c| c.top_all_delivered.estimate())
        .unwrap_or(0.0);
    out.push_str(&format!(
        "\nshape check: completion rate rises toward 1 as γ shrinks ({first:.2} → {last:.2});\n\
         the crossover sits where the deterministic overhead column drops below ~0.6\n"
    ));
    rb.check(
        "completion_rises_as_gamma_shrinks",
        last >= first,
        format!("{first:.2} -> {last:.2}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_gamma_eliminates_truncation() {
        let cell = sweep(&ExpConfig::quick(), 10);
        assert!(
            cell.top_all_delivered.estimate() > 0.9,
            "{}",
            cell.top_all_delivered
        );
    }

    #[test]
    fn large_gamma_truncates() {
        // base 5: overhead Σ_{ℓ≥5} ℓ²/2^ℓ ≈ 2.06 > 1 — the top class can
        // essentially never fit.
        let cell = sweep(&ExpConfig::quick(), 5);
        assert!(
            cell.top_all_delivered.estimate() < 0.5,
            "{}",
            cell.top_all_delivered
        );
    }

    #[test]
    fn overhead_is_monotone_in_min_class() {
        let a = AlignedParams::new(1, 2, 5).overhead_fraction();
        let b = AlignedParams::new(1, 2, 10).overhead_fraction();
        assert!(a > b);
    }
}
