//! **A2 — ablation**: sensitivity to λ and τ.
//!
//! The paper folds every reliability constant into λ and fixes τ = 64 in
//! Lemma 8 without optimizing either. This sweep quantifies the
//! reliability-vs-overhead trade: larger λ/τ buy lower failure rates at
//! the cost of more active slots (2λ(ℓ² + n_ℓ − 1) with n_ℓ ∝ τ).

use crate::config::ExpConfig;
use crate::experiments::util::run_single_class;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};

const CLASS: u32 = 12;
/// Batch size chosen so the trade-off has teeth: with τ = 64 the inflated
/// estimate (`64·2^j ≈ 128·n̂`) stretches the broadcast schedule to a
/// large fraction of the 4096-slot window. Jobs still deliver (they
/// finish early inside the oversized schedule), but the slots the class
/// *claims* — which nested classes must wait out — balloon; that waste is
/// the mechanism behind E6's truncation at large γ.
const N_JOBS: usize = 24;

struct Cell {
    failure: Proportion,
    mean_slots: f64,
}

fn sweep(cfg: &ExpConfig, lambda: u64, tau: u64) -> Cell {
    let trials = cfg.cell_trials(160);
    let params = AlignedParams::new(lambda, tau, CLASS);
    let results = run_trials(trials, cfg.seed ^ (lambda << 8) ^ tau, |_, seed| {
        let r = run_single_class(params, CLASS, N_JOBS, 0.0, seed);
        ((N_JOBS - r.successes) as u64, r.slots_used)
    });
    let failures: u64 = results.iter().map(|t| t.value.0).sum();
    let mean_slots = results.iter().map(|t| t.value.1 as f64).sum::<f64>() / results.len() as f64;
    Cell {
        failure: Proportion::new(failures, trials * N_JOBS as u64),
        mean_slots,
    }
}

/// Run A2.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let lambdas: &[u64] = if cfg.quick { &[1, 2] } else { &[1, 2, 4] };
    let taus: &[u64] = if cfg.quick { &[2, 8] } else { &[2, 4, 8, 64] };
    let mut rb = ReportBuilder::new("a2", "A2 (ablation): lambda/tau sensitivity", cfg);
    rb.param("class", CLASS)
        .param("n_jobs", N_JOBS)
        .param("lambdas", format!("{lambdas:?}"))
        .param("taus", format!("{taus:?}"))
        .param("trials_per_cell", cfg.cell_trials(160));
    let mut slots_monotone = true;
    let mut prev_slots_for_lambda1: Option<f64> = None;
    let mut table = Table::new(vec![
        "λ",
        "τ",
        "per-job failure rate",
        "mean slots used",
        "slots / window",
    ])
    .with_title(format!(
        "A2 (ablation): λ/τ sensitivity — batch of {N_JOBS} in w=2^{CLASS}, seed {}",
        cfg.seed
    ));
    let w = (1u64 << CLASS) as f64;
    for &lambda in lambdas {
        for &tau in taus {
            let c = sweep(cfg, lambda, tau);
            if lambda == 1 {
                if let Some(prev) = prev_slots_for_lambda1 {
                    if c.mean_slots < prev {
                        slots_monotone = false;
                    }
                }
                prev_slots_for_lambda1 = Some(c.mean_slots);
            }
            let id = format!("lambda={lambda},tau={tau}");
            rb.prop(&id, "per_job_failure", &c.failure)
                .row(&id, "mean_slots_used", c.mean_slots)
                .row(&id, "slots_per_window", c.mean_slots / w)
                .add_trials(cfg.cell_trials(160))
                .add_slots((c.mean_slots as u64).saturating_mul(cfg.cell_trials(160)));
            table.row(vec![
                lambda.to_string(),
                tau.to_string(),
                c.failure.to_string(),
                format!("{:.0}", c.mean_slots),
                format!("{:.2}", c.mean_slots / w),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nshape check: failure falls (and slot usage rises) with λ and τ; \
         the paper's τ=64 is far into the diminishing-returns regime\n",
    );
    rb.check(
        "slot_cost_rises_with_tau",
        slots_monotone,
        "mean slots used is non-decreasing in tau at lambda=1",
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_tau_costs_more_slots() {
        let cfg = ExpConfig::quick();
        let small = sweep(&cfg, 1, 2);
        let big = sweep(&cfg, 1, 8);
        assert!(big.mean_slots > small.mean_slots);
    }

    #[test]
    fn cheap_config_reliable_at_this_scale() {
        // At w=2^12 with 24 jobs, the τ=2 config fits comfortably.
        let c = sweep(&ExpConfig::quick(), 1, 2);
        assert!(c.failure.estimate() < 0.05, "{}", c.failure);
    }

    #[test]
    fn paper_tau_wastes_channel_time() {
        // Within a single class, τ-overshoot does not kill jobs (they
        // deliver early in the oversized schedule) — it burns channel time
        // that nested classes would need. τ=64 must cost several times the
        // slots of τ=2 at identical reliability; E6/A1 show where that
        // waste turns into truncation.
        let cfg = ExpConfig::quick();
        let cheap = sweep(&cfg, 1, 2);
        let paper = sweep(&cfg, 1, 64);
        assert!(
            paper.mean_slots > 2.5 * cheap.mean_slots,
            "τ=64 slots {} vs τ=2 slots {}",
            paper.mean_slots,
            cheap.mean_slots
        );
        assert!(paper.failure.estimate() < 0.05, "{}", paper.failure);
    }
}
