//! **F1 — Figure 1**: pecking-order scheduling of aligned windows.
//!
//! The paper's Figure 1 shows three window sizes sharing the channel:
//! estimation steps (yellow squares, here `E`), broadcast steps (blue
//! circles, here `B`), idle/deferred time (`·`), with smaller windows
//! always preempting larger ones. We regenerate it from a real ALIGNED
//! execution: run the protocol, then replay a global
//! [`dcr_core::aligned::tracker::Tracker`] over the recorded channel
//! feedback to label every slot with its owning class and step kind.

use crate::config::ExpConfig;
use crate::experiments::util::{feedback_of, run_instance};
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_core::aligned::tracker::{StepKind, Tracker};
use dcr_sim::engine::EngineConfig;
use dcr_stats::Table;
use dcr_workloads::generators::{aligned_classes, ClassSpec};

/// Classes displayed (small, medium, large).
const CLASSES: [u32; 3] = [9, 10, 11];
/// Slots compressed into one output character.
const CHARS_PER_CELL: u64 = 16;

/// Run F1 and render the schedule.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rb = ReportBuilder::new("fig1", "F1 (Figure 1): pecking-order schedule", cfg);
    let params = AlignedParams::new(1, 2, CLASSES[0]);
    let horizon = 1u64 << (CLASSES[2] + 1); // two large windows
    rb.param("classes", format!("{CLASSES:?}"))
        .param("horizon", horizon)
        .param("chars_per_cell", CHARS_PER_CELL);
    let instance = aligned_classes(
        &[
            ClassSpec {
                class: CLASSES[0],
                jobs_per_window: 1,
            },
            ClassSpec {
                class: CLASSES[1],
                jobs_per_window: 2,
            },
            ClassSpec {
                class: CLASSES[2],
                jobs_per_window: 3,
            },
        ],
        horizon,
        None,
    );
    let report = run_instance(
        &instance,
        EngineConfig::aligned().with_trace(),
        None,
        cfg.seed,
        AlignedProtocol::factory(params),
    );
    let trace = report.trace.as_ref().expect("trace enabled");

    // Replay a global tracker over the public history to label each slot.
    // Run-length-encoded silent gaps expand to one silent slot each: the
    // channel really was silent for every slot a gap record covers.
    let mut tracker = Tracker::new(params, CLASSES[2], 0);
    // (class index, kind char) per slot; ' ' = idle.
    let mut labels: Vec<Option<(u32, char)>> = Vec::with_capacity(trace.len());
    for rec in trace {
        for slot in rec.slot..rec.slot + rec.covered_slots() {
            let step = tracker.begin_slot(slot);
            labels.push(step.map(|s| {
                let c = match s.kind {
                    StepKind::Estimation { .. } => 'E',
                    StepKind::Broadcast(_) => 'B',
                };
                (s.class, c)
            }));
            tracker.end_slot(slot, &feedback_of(rec));
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "F1 (Figure 1): pecking-order schedule, classes {:?}, horizon {horizon} slots\n\
         one char = {CHARS_PER_CELL} slots; E = estimation, B = broadcast, · = deferred/idle\n\n",
        CLASSES
    ));
    for &class in CLASSES.iter() {
        let mut row = format!("w=2^{class:<2} |");
        let mut cell_start = 0u64;
        while (cell_start as usize) < labels.len() {
            let cell_end = (cell_start + CHARS_PER_CELL).min(labels.len() as u64);
            let mut est = 0;
            let mut bc = 0;
            for l in &labels[cell_start as usize..cell_end as usize] {
                match l {
                    Some((c, 'E')) if *c == class => est += 1,
                    Some((c, 'B')) if *c == class => bc += 1,
                    _ => {}
                }
            }
            row.push(if est >= bc && est > 0 {
                'E'
            } else if bc > 0 {
                'B'
            } else {
                '·'
            });
            cell_start = cell_end;
        }
        out.push_str(&row);
        out.push('\n');
    }

    // Summary: active steps per class in its first window, like the figure
    // caption ("the first large window is active for 7 timesteps").
    let mut table = Table::new(vec![
        "class",
        "window",
        "est steps",
        "estimate n_l",
        "bcast steps",
        "success rate",
    ])
    .with_title("\nPer-class summary (first window of each class):");
    for &class in CLASSES.iter() {
        let w = 1u64 << class;
        let est_steps = params.est_len(class);
        // Re-derive the first-window estimate from the replay labels.
        let mut replay = Tracker::new(params, class, 0);
        let mut estimate = None;
        'replay: for rec in trace {
            for slot in rec.slot..rec.slot + rec.covered_slots() {
                if slot >= w {
                    break 'replay;
                }
                let _ = replay.begin_slot(slot);
                replay.end_slot(slot, &feedback_of(rec));
                if estimate.is_none() {
                    estimate = replay.estimate_of(class);
                }
            }
        }
        let est = estimate.unwrap_or(0);
        let rate = report.success_fraction_for_window(w).unwrap_or(f64::NAN);
        rb.row(format!("class={class}"), "estimate_n_l", est as f64)
            .row(
                format!("class={class}"),
                "est_steps",
                params.est_len(class) as f64,
            )
            .row(format!("class={class}"), "success_rate", rate);
        table.row(vec![
            class.to_string(),
            w.to_string(),
            est_steps.to_string(),
            est.to_string(),
            params.broadcast_len(class, est).to_string(),
            format!("{rate:.2}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\noverall delivery: {}/{} jobs; seed {}\n",
        report.successes(),
        instance.n(),
        cfg.seed
    ));
    rb.row("overall", "jobs_delivered", report.successes() as f64)
        .row("overall", "jobs_total", instance.n() as f64)
        .check(
            "all_jobs_delivered",
            report.successes() == instance.n(),
            format!("{}/{} delivered", report.successes(), instance.n()),
        )
        .add_slots(report.slots_run);
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows_and_summary() {
        let out = run(&ExpConfig::quick()).text;
        assert!(out.contains("w=2^9"));
        assert!(out.contains("w=2^11"));
        assert!(out.contains("Per-class summary"));
        // The small class must show estimation activity.
        let small_row = out.lines().find(|l| l.starts_with("w=2^9")).unwrap();
        assert!(small_row.contains('E'), "{small_row}");
    }

    #[test]
    fn structured_report_mirrors_summary() {
        let out = run(&ExpConfig::quick());
        let r = &out.report;
        assert_eq!(r.experiment, "fig1");
        for class in CLASSES {
            assert!(r.row(&format!("class={class}"), "success_rate").is_some());
        }
        assert!(r.timing.slots_simulated > 0);
    }
}
