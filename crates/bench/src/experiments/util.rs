//! Shared helpers for the experiment modules.

use dcr_sim::engine::{Action, Engine, EngineConfig, JobCtx, Protocol};
use dcr_sim::jamming::Jammer;
use dcr_sim::message::{ControlMsg, Payload};
use dcr_sim::metrics::SimReport;
use dcr_sim::slot::Feedback;
use dcr_sim::trace::{SlotOutcome, SlotRecord};
use dcr_workloads::Instance;
use rand::{Rng, RngCore};

/// A station that transmits a **control** message with fixed probability
/// `p` in every slot, forever. Because it never sends a data payload the
/// engine never retires it, which makes it the right tool for holding the
/// channel at a precise contention level (experiment E1).
#[derive(Debug, Clone, Copy)]
pub struct PersistentP(pub f64);

/// `ControlMsg::kind` used by [`PersistentP`] probes.
pub const CTRL_PROBE: u16 = 99;

impl Protocol for PersistentP {
    fn act(&mut self, _ctx: &JobCtx, rng: &mut dyn RngCore) -> Action {
        if rng.gen_bool(self.0) {
            Action::Transmit(Payload::Control(ControlMsg::of_kind(CTRL_PROBE)))
        } else {
            Action::Listen
        }
    }

    fn tx_probability(&self, _ctx: &JobCtx) -> Option<f64> {
        Some(self.0)
    }
}

/// Run `instance` with per-job protocols from `factory`.
pub fn run_instance<F>(
    instance: &Instance,
    config: EngineConfig,
    jammer: Option<Jammer>,
    seed: u64,
    factory: F,
) -> SimReport
where
    F: FnMut(&dcr_sim::job::JobSpec) -> Box<dyn Protocol>,
{
    let mut engine = Engine::new(config, seed);
    if let Some(j) = jammer {
        engine.set_jammer(j);
    }
    engine.add_jobs(&instance.jobs, factory);
    engine.run()
}

/// Reconstruct the [`Feedback`] a listener saw from a trace record.
pub fn feedback_of(rec: &SlotRecord) -> Feedback {
    match rec.outcome {
        SlotOutcome::Silent | SlotOutcome::SilentGap { .. } => Feedback::Silent,
        SlotOutcome::Success { src, .. } => Feedback::Success {
            src,
            payload: rec.payload.expect("success records carry payloads"),
        },
        SlotOutcome::Collision { .. } | SlotOutcome::Jammed { .. } => Feedback::Noise,
    }
}

/// Find the PUNCTUAL round anchor in a trace: the first busy-busy-silent
/// run (start pair plus its guard slot — the same disambiguation the
/// protocol's synchronizer uses, since anarchy slots can extend a busy run
/// leftward). Returns the slot index of the round start.
pub fn find_round_anchor(trace: &[SlotRecord]) -> Option<u64> {
    let busy = |r: &SlotRecord| !r.is_silent();
    for win in trace.windows(3) {
        if busy(&win[0])
            && busy(&win[1])
            && !busy(&win[2])
            && win[1].slot == win[0].slot + 1
            && win[2].slot == win[1].slot + 1
        {
            return Some(win[0].slot);
        }
    }
    None
}

/// Result of a manually driven single-class ALIGNED run.
#[derive(Debug, Clone, Copy)]
pub struct ClassRun {
    /// The estimate the class computed (`None` if truncated mid-estimation).
    pub estimate: Option<u64>,
    /// Jobs that delivered their data message.
    pub successes: usize,
    /// Jobs that gave up (schedule completed or window ended without them).
    pub gave_up: usize,
    /// Slots consumed until every job finished (or the window ended).
    pub slots_used: u64,
}

/// Drive `n` [`dcr_core::aligned::protocol::AlignedJob`] machines of class
/// `class` through one window `[0, 2^class)` with a stochastic jammer that
/// kills each would-be success with probability `p_jam` (the Section 3
/// adversary with an always-attempt policy). Bypassing the engine lets
/// experiments read protocol internals (the estimate) directly.
pub fn run_single_class(
    params: dcr_core::aligned::params::AlignedParams,
    class: u32,
    n: usize,
    p_jam: f64,
    seed: u64,
) -> ClassRun {
    use dcr_core::aligned::protocol::{AlignedAction, AlignedJob};
    use dcr_sim::rng::{SeedSeq, StreamLabel};

    let seeds = SeedSeq::new(seed);
    let mut rngs: Vec<_> = (0..n)
        .map(|i| seeds.rng(StreamLabel::Job, i as u64))
        .collect();
    let mut jam_rng = seeds.rng(StreamLabel::Jammer, 0);
    let mut jobs: Vec<AlignedJob> = (0..n)
        .map(|i| AlignedJob::new(params, i as u32, class, 0))
        .collect();

    let w = 1u64 << class;
    let mut slots_used = w;
    for vt in 0..w {
        let mut txs: Vec<(usize, Payload)> = Vec::new();
        for (i, job) in jobs.iter_mut().enumerate() {
            if job.finished() {
                continue;
            }
            match job.decide(vt, &mut rngs[i]) {
                AlignedAction::Idle | AlignedAction::Doze => {}
                AlignedAction::Control => txs.push((i, job.control_payload())),
                AlignedAction::Data => txs.push((i, job.data_payload())),
            }
        }
        let fb = match txs.len() {
            0 => Feedback::Silent,
            1 if p_jam > 0.0 && jam_rng.gen_bool(p_jam) => Feedback::Noise,
            1 => Feedback::Success {
                src: txs[0].0 as u32,
                payload: txs[0].1,
            },
            _ => Feedback::Noise,
        };
        let mut all_done = true;
        for job in jobs.iter_mut() {
            if !job.finished() {
                job.observe(vt, &fb);
            }
            all_done &= job.finished();
        }
        if all_done {
            slots_used = vt + 1;
            break;
        }
    }
    ClassRun {
        estimate: jobs.first().and_then(|j| j.estimate()),
        successes: jobs.iter().filter(|j| j.succeeded()).count(),
        gave_up: jobs.iter().filter(|j| j.gave_up()).count(),
        slots_used,
    }
}

/// Mean of an iterator of f64 (NaN when empty).
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcr_sim::job::JobSpec;

    #[test]
    fn persistent_probe_holds_contention() {
        let mut e = Engine::new(EngineConfig::default().with_trace(), 3);
        for i in 0..10 {
            e.add_job(JobSpec::new(i, 0, 500), Box::new(PersistentP(0.1)));
        }
        let r = e.run();
        // Nobody ever succeeds with data; jobs live the whole window.
        assert_eq!(r.successes(), 0);
        assert_eq!(r.slots_run, 500);
        // Contention declared every slot ≈ 1.0.
        let t = r.trace.as_ref().unwrap();
        assert!((t[100].declared_contention - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anchor_detection() {
        let mk = |slot, busy| SlotRecord {
            slot,
            outcome: if busy {
                SlotOutcome::Collision { n_tx: 2 }
            } else {
                SlotOutcome::Silent
            },
            live_jobs: 0,
            declared_contention: 0.0,
            payload: None,
        };
        let trace = vec![
            mk(0, false),
            mk(1, true),
            mk(2, false),
            mk(3, true),
            mk(4, true),
            mk(5, false),
        ];
        assert_eq!(find_round_anchor(&trace), Some(3));
        let silent = vec![mk(0, false), mk(1, false)];
        assert_eq!(find_round_anchor(&silent), None);
    }

    #[test]
    fn mean_helper() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(mean(std::iter::empty()).is_nan());
    }
}
