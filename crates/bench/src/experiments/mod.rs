//! One module per experiment; ids match `DESIGN.md` §4.

pub mod a1_no_deferral;
pub mod a2_params;
pub mod e10_endtoend;
pub mod e11_jamming;
pub mod e12_clock;
pub mod e13_energy;
pub mod e14_makespan;
pub mod e15_punctual_jamming;
pub mod e16_adversarial;
pub mod e17_latency;
pub mod e18_breakdown;
pub mod e19_estimation_fidelity;
pub mod e1_contention;
pub mod e20_scale;
pub mod e2_uniform;
pub mod e3_starvation;
pub mod e4_estimation;
pub mod e5_active_steps;
pub mod e6_truncation;
pub mod e7_aligned_hp;
pub mod e8_leader;
pub mod e9_anarchist;
pub mod fig1;
pub mod util;
