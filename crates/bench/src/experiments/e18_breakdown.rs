//! **E18 — breakdown sweep**: where each protocol's jamming tolerance
//! ends, and what stateful adversaries buy over stateless ones.
//!
//! Theorem 14's robustness claim is a *threshold* statement: ALIGNED
//! tolerates stochastic jamming for `p_jam ≤ 1/2`, and the analysis spends
//! its λ margin to get there. This experiment maps the whole curve instead
//! of two points: per-job delivery as `p_jam` sweeps from 0 to 1 for
//! ALIGNED, PUNCTUAL, UNIFORM, and the backoff baselines (E18a); delivery
//! under Gilbert–Elliott bursty channel faults as the burst length grows
//! at fixed outage duty (E18b); and a panel of stateful adversaries —
//! reactive estimation-skew, finite-budget blitz — at the paper's
//! threshold `p_jam = 1/2` (E18c), using the adversary counters surfaced
//! in `SimReport::jam_stats` to report attack *cost* next to attack
//! *damage*.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_baselines::{BinaryExponentialBackoff, Sawtooth};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_core::punctual::PunctualParams;
use dcr_core::uniform::Uniform;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::jamming::{AdversarySpec, JamPolicy};
use dcr_sim::runner::run_trials;
use dcr_stats::{Proportion, Table};
use dcr_workloads::adversarial::{burst_outage_attack, estimation_skew_attack, AttackScenario};
use dcr_workloads::generators::batch;
use dcr_workloads::Instance;

const CLASS: u32 = 13;
const N_JOBS: usize = 8;

/// λ=2 buys the margin the jamming analysis spends (same as E11).
fn aligned_params() -> AlignedParams {
    AlignedParams::new(2, 2, CLASS)
}

/// One measured cell: delivery proportion plus aggregate adversary cost.
struct Cell {
    delivered: Proportion,
    /// Mean jam attempts per trial (the attack's cost).
    mean_attempted: f64,
    /// Aggregate attempt/success totals (for efficacy checks).
    attempted: u64,
    succeeded: u64,
    trials: u64,
}

fn measure(
    cfg: &ExpConfig,
    instance: &Instance,
    proto: &str,
    adversary: AdversarySpec,
    p_jam: f64,
    salt: u64,
) -> Cell {
    let trials = cfg.cell_trials(48);
    let results = run_trials(trials, cfg.seed ^ 0xE18 ^ salt, |_, seed| {
        let jammer = Some(adversary.jammer(p_jam));
        let r = match proto {
            "aligned" => run_instance(
                instance,
                EngineConfig::aligned(),
                jammer,
                seed,
                AlignedProtocol::factory(aligned_params()),
            ),
            "punctual" => run_instance(
                instance,
                EngineConfig::default(),
                jammer,
                seed,
                PunctualProtocol::factory(PunctualParams::laptop()),
            ),
            "uniform" => run_instance(instance, EngineConfig::default(), jammer, seed, |_| {
                Box::new(Uniform::single())
            }),
            "beb" => run_instance(
                instance,
                EngineConfig::default(),
                jammer,
                seed,
                BinaryExponentialBackoff::factory(1024),
            ),
            "sawtooth" => run_instance(
                instance,
                EngineConfig::default(),
                jammer,
                seed,
                Sawtooth::factory(),
            ),
            _ => unreachable!("unknown protocol {proto}"),
        };
        (
            r.successes() as u64,
            r.jam_stats.attempted,
            r.jam_stats.succeeded,
        )
    });
    let successes: u64 = results.iter().map(|t| t.value.0).sum();
    let attempted: u64 = results.iter().map(|t| t.value.1).sum();
    let succeeded: u64 = results.iter().map(|t| t.value.2).sum();
    Cell {
        delivered: Proportion::new(successes, trials * instance.n() as u64),
        mean_attempted: attempted as f64 / trials as f64,
        attempted,
        succeeded,
        trials,
    }
}

/// Run E18.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let pjams: &[f64] = if cfg.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0]
    };
    let burst_lens: &[f64] = if cfg.quick {
        &[2.0, 128.0]
    } else {
        &[2.0, 8.0, 32.0, 128.0]
    };
    let protos = ["aligned", "punctual", "uniform", "beb", "sawtooth"];
    let instance = batch(N_JOBS, 1 << CLASS);
    let window = 1u64 << CLASS;
    let all = AdversarySpec::Policy(JamPolicy::AllSuccesses);

    let mut rb = ReportBuilder::new(
        "e18",
        "E18: breakdown sweep — adversary strength vs delivery",
        cfg,
    );
    rb.param("class", CLASS)
        .param("n_jobs", N_JOBS)
        .param("lambda", 2)
        .param("p_jam_grid", format!("{pjams:?}"))
        .param("burst_len_grid", format!("{burst_lens:?}"))
        .param("trials_per_cell", cfg.cell_trials(48));

    // ── E18a: stochastic p_jam sweep, all protocols ──────────────────────
    let mut t1 = Table::new(vec!["protocol", "p_jam", "per-job delivery"]).with_title(format!(
        "E18a: all-successes jamming swept through the breakdown point, \
         batch of {N_JOBS} in w=2^{CLASS}, seed {}",
        cfg.seed
    ));
    let mut aligned_at_half = f64::NAN;
    let mut aligned_at_one = f64::NAN;
    let mut efficacy: Option<(u64, u64)> = None;
    for proto in protos {
        for (i, &p) in pjams.iter().enumerate() {
            let cell = measure(cfg, &instance, proto, all, p, (i as u64) << 8);
            rb.prop(
                format!("{proto},p_jam={p}"),
                "per_job_delivery",
                &cell.delivered,
            )
            .add_trials(cell.trials)
            .add_slots(cell.trials * window);
            t1.row(vec![
                proto.to_string(),
                format!("{p:.2}"),
                cell.delivered.to_string(),
            ]);
            if proto == "aligned" {
                if p == 0.5 {
                    aligned_at_half = cell.delivered.estimate();
                    efficacy = Some((cell.attempted, cell.succeeded));
                }
                if p == 1.0 {
                    aligned_at_one = cell.delivered.estimate();
                }
            }
        }
    }
    let mut out = t1.render();

    // ── E18b: Gilbert–Elliott bursts at fixed 50% outage duty ────────────
    let mut t2 = Table::new(vec!["burst len", "per-job delivery"]).with_title(format!(
        "\nE18b: ALIGNED under Gilbert–Elliott outages (duty 0.5, p_jam = 1), \
         scattered noise vs long blackouts, seed {}",
        cfg.seed
    ));
    let mut burst_deliveries = Vec::new();
    for (i, &len) in burst_lens.iter().enumerate() {
        let scen = burst_outage_attack(CLASS, N_JOBS, 0.5, len, 1.0);
        let cell = measure(
            cfg,
            &scen.instance,
            "aligned",
            scen.adversary,
            scen.p_jam,
            0xB0 ^ ((i as u64) << 16),
        );
        rb.prop(
            format!("aligned,burst_len={len}"),
            "per_job_delivery",
            &cell.delivered,
        )
        .add_trials(cell.trials)
        .add_slots(cell.trials * window);
        burst_deliveries.push(cell.delivered.estimate());
        t2.row(vec![format!("{len:.0}"), cell.delivered.to_string()]);
    }
    out.push_str(&t2.render());

    // ── E18c: stateful adversaries at the threshold ──────────────────────
    let budget = 6 * N_JOBS as u64;
    let scenarios: Vec<AttackScenario> = vec![
        AttackScenario {
            name: "stochastic".into(),
            instance: instance.clone(),
            adversary: all,
            p_jam: 0.5,
        },
        estimation_skew_attack(CLASS, N_JOBS, 4, 0.5),
        estimation_skew_attack(CLASS, N_JOBS, 16, 0.5),
        AttackScenario {
            name: format!("budget(B={budget})"),
            instance: instance.clone(),
            adversary: AdversarySpec::Budgeted {
                budget,
                data_only: false,
            },
            p_jam: 0.5,
        },
        AttackScenario {
            name: format!("budget(B={budget},data)"),
            instance: instance.clone(),
            adversary: AdversarySpec::Budgeted {
                budget,
                data_only: true,
            },
            p_jam: 0.5,
        },
    ];
    let mut t3 = Table::new(vec!["adversary", "per-job delivery", "jam attempts/trial"])
        .with_title(format!(
            "\nE18c: stateful adversaries vs ALIGNED at p_jam = 0.5, seed {}",
            cfg.seed
        ));
    let mut budget_ok = true;
    for (i, scen) in scenarios.iter().enumerate() {
        let cell = measure(
            cfg,
            &scen.instance,
            "aligned",
            scen.adversary,
            scen.p_jam,
            0xC0 ^ ((i as u64) << 24),
        );
        rb.prop(
            format!("aligned,adv={}", scen.name),
            "per_job_delivery",
            &cell.delivered,
        )
        .row(
            format!("aligned,adv={}", scen.name),
            "mean_jam_attempts",
            cell.mean_attempted,
        )
        .add_trials(cell.trials)
        .add_slots(cell.trials * window);
        if let AdversarySpec::Budgeted { budget, .. } = scen.adversary {
            budget_ok &= cell.mean_attempted <= budget as f64 + 1e-9;
        }
        t3.row(vec![
            scen.name.clone(),
            cell.delivered.to_string(),
            format!("{:.1}", cell.mean_attempted),
        ]);
    }
    out.push_str(&t3.render());

    // ── Claim checks ─────────────────────────────────────────────────────
    let drop_past_half = aligned_at_half - aligned_at_one;
    out.push_str(&format!(
        "\nshape check: ALIGNED holds ≥0.9 delivery through p_jam = 0.5 \
         ({aligned_at_half:.3}) and collapses by p_jam = 1 ({aligned_at_one:.3}); \
         scattered bursts are absorbed while long blackouts bite\n"
    ));
    rb.row("aligned", "delivery_at_half", aligned_at_half)
        .row("aligned", "delivery_at_one", aligned_at_one)
        .row("aligned", "drop_past_half", drop_past_half)
        .check(
            "aligned_survives_half_jamming",
            aligned_at_half >= 0.9,
            format!("ALIGNED per-job delivery at p_jam = 0.5: {aligned_at_half:.3}"),
        )
        .check(
            "aligned_degrades_past_half",
            aligned_at_one < 0.5 && drop_past_half > 0.3,
            format!(
                "delivery falls {drop_past_half:.3} from p_jam 0.5 to 1.0 \
                 (ends at {aligned_at_one:.3})"
            ),
        )
        .check(
            "budget_respected",
            budget_ok,
            format!("budgeted adversaries never exceed B = {budget} attempts"),
        );
    let scattered = *burst_deliveries.first().unwrap_or(&f64::NAN);
    let blackout = *burst_deliveries.last().unwrap_or(&f64::NAN);
    rb.row("aligned", "delivery_scattered_bursts", scattered)
        .row("aligned", "delivery_long_blackouts", blackout)
        .check(
            "scattered_outages_absorbed",
            scattered >= 0.9,
            format!(
                "short bursts (L={}) at 50% duty look like stochastic jamming: \
                 delivery {scattered:.3}",
                burst_lens[0]
            ),
        )
        .check(
            "long_blackouts_bite",
            blackout <= scattered - 0.05,
            format!(
                "same outage duty in L={} blackouts: delivery {blackout:.3} vs \
                 {scattered:.3} scattered",
                burst_lens[burst_lens.len() - 1]
            ),
        );
    if let Some((attempted, succeeded)) = efficacy {
        let ratio = succeeded as f64 / attempted.max(1) as f64;
        rb.row("aligned,p_jam=0.5", "jam_efficacy", ratio).check(
            "jam_efficacy_matches_p_jam",
            attempted > 0 && (ratio - 0.5).abs() < 0.08,
            format!("succeeded/attempted = {succeeded}/{attempted} = {ratio:.3} vs p_jam 0.5"),
        );
    }
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_survives_the_analyzed_regime() {
        let cfg = ExpConfig::quick();
        let inst = batch(N_JOBS, 1 << CLASS);
        let all = AdversarySpec::Policy(JamPolicy::AllSuccesses);
        let cell = measure(&cfg, &inst, "aligned", all, 0.5, 0);
        assert!(cell.delivered.estimate() >= 0.9, "{}", cell.delivered);
    }

    #[test]
    fn everyone_collapses_at_certain_jamming() {
        // p_jam = 1 with an all-successes adversary kills every delivery
        // regardless of protocol: the breakdown endpoint is exact.
        let cfg = ExpConfig::quick();
        let inst = batch(N_JOBS, 1 << CLASS);
        let all = AdversarySpec::Policy(JamPolicy::AllSuccesses);
        for proto in ["aligned", "uniform"] {
            let cell = measure(&cfg, &inst, proto, all, 1.0, 1);
            assert_eq!(cell.delivered.estimate(), 0.0, "{proto}");
        }
    }

    #[test]
    fn uniform_has_no_margin_at_half() {
        // UNIFORM transmits once; at p_jam = 0.5 half its deliveries die.
        // The contrast with ALIGNED's retry margin is the point of E18a.
        let cfg = ExpConfig::quick();
        let inst = batch(N_JOBS, 1 << CLASS);
        let all = AdversarySpec::Policy(JamPolicy::AllSuccesses);
        let uniform = measure(&cfg, &inst, "uniform", all, 0.5, 2);
        assert!(uniform.delivered.estimate() < 0.8, "{}", uniform.delivered);
    }

    #[test]
    fn budgeted_attack_cost_is_capped() {
        let cfg = ExpConfig::quick();
        let inst = batch(N_JOBS, 1 << CLASS);
        let spec = AdversarySpec::Budgeted {
            budget: 5,
            data_only: false,
        };
        let cell = measure(&cfg, &inst, "aligned", spec, 1.0, 3);
        assert!(cell.mean_attempted <= 5.0 + 1e-9, "{}", cell.mean_attempted);
        assert!(cell.attempted > 0);
    }

    #[test]
    fn quick_run_produces_passing_artifact() {
        let out = run(&ExpConfig::quick());
        assert!(out.report.all_checks_passed(), "{}", out.text);
        assert!(out.report.rows.len() > 20);
    }
}
