//! **E15 — PUNCTUAL under jamming** (beyond the paper).
//!
//! The paper analyzes jamming only for ALIGNED (Section 3); PUNCTUAL's
//! round machinery is *not* claimed robust, and the a-priori worry is that
//! noise forged into guard slots corrupts round synchronization. The
//! measurement says otherwise: per-round repetition of starts, beacons and
//! claims, the silence-based sync rule, and the anarchy fallback make
//! PUNCTUAL tolerate even heavy random jamming at this scale — an
//! unclaimed robustness property worth knowing. The CLOCKED column is the
//! control: same traffic, clock granted, Section-3 robustness applies.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::clocked::{ClockedParams, ClockedProtocol};
use dcr_core::punctual::PunctualParams;
use dcr_core::PunctualProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::jamming::{JamPolicy, Jammer};
use dcr_sim::runner::run_trials;
use dcr_stats::Table;
use dcr_workloads::generators::batch;

const N_JOBS: usize = 8;
const WINDOW: u64 = 1 << 13;

fn delivery(cfg: &ExpConfig, policy: JamPolicy, p_jam: f64, clocked: bool) -> f64 {
    let instance = batch(N_JOBS, WINDOW);
    let trials = cfg.cell_trials(60);
    let results = run_trials(
        trials,
        cfg.seed ^ 0xE15 ^ ((p_jam * 1000.0) as u64),
        |_, seed| {
            let jammer = Some(Jammer::new(policy, p_jam));
            let r = if clocked {
                run_instance(
                    &instance,
                    EngineConfig::aligned(),
                    jammer,
                    seed,
                    ClockedProtocol::factory(ClockedParams::laptop()),
                )
            } else {
                run_instance(
                    &instance,
                    EngineConfig::default(),
                    jammer,
                    seed,
                    PunctualProtocol::factory(PunctualParams::laptop()),
                )
            };
            r.success_fraction()
        },
    );
    results.iter().map(|t| t.value).sum::<f64>() / results.len() as f64
}

/// Run E15.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let pjams: &[f64] = if cfg.quick {
        &[0.0, 0.9]
    } else {
        &[0.0, 0.5, 0.9]
    };
    let mut rb = ReportBuilder::new("e15", "E15: PUNCTUAL under jamming (beyond the paper)", cfg);
    rb.param("n_jobs", N_JOBS)
        .param("window", WINDOW)
        .param("p_jam_grid", format!("{pjams:?}"))
        .param("trials_per_cell", cfg.cell_trials(60));
    let mut clean_punctual = f64::NAN;
    let mut table = Table::new(vec![
        "adversary",
        "p_jam",
        "PUNCTUAL delivered",
        "CLOCKED delivered (control)",
    ])
    .with_title(format!(
        "E15 (beyond the paper): jamming vs the clockless machinery — batch of \
         {N_JOBS}, w={WINDOW}, seed {}",
        cfg.seed
    ));
    for (name, policy) in [
        ("successes only", JamPolicy::AllSuccesses),
        ("random 30% of slots", JamPolicy::Random { attempt: 0.3 }),
        ("random 80% of slots", JamPolicy::Random { attempt: 0.8 }),
    ] {
        for &p_jam in pjams {
            if p_jam == 0.0 && name != "successes only" {
                continue; // p_jam = 0 rows are identical across policies
            }
            let p = delivery(cfg, policy, p_jam, false);
            let c = delivery(cfg, policy, p_jam, true);
            if p_jam == 0.0 {
                clean_punctual = p;
            }
            let id = format!("{name},p_jam={p_jam}");
            rb.row(&id, "punctual_delivered", p)
                .row(&id, "clocked_delivered", c)
                .add_trials(2 * cfg.cell_trials(60))
                .add_slots(2 * cfg.cell_trials(60) * WINDOW);
            table.row(vec![
                name.into(),
                format!("{p_jam:.2}"),
                format!("{p:.3}"),
                format!("{c:.3}"),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nshape check: the Section-3 control (CLOCKED) holds per E11. PUNCTUAL turns \
         out to be sturdier than the paper claims (it claims nothing here): repeated \
         per-round beacons/claims and the anarchy fallback absorb moderate jamming, \
         and the sync rule tolerates forged busy slots because it waits for genuine \
         silence. The breaking point only appears when most slots are noise — at \
         which point every protocol's channel is gone. A pleasant negative-negative \
         result.\n",
    );
    rb.check(
        "clean_channel_baseline",
        clean_punctual > 0.9,
        format!("clean-channel punctual delivery {clean_punctual:.3}"),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_baseline() {
        let cfg = ExpConfig::quick();
        let p = delivery(&cfg, JamPolicy::AllSuccesses, 0.0, false);
        assert!(p > 0.9, "clean-channel punctual delivery {p}");
    }

    #[test]
    fn clocked_control_survives_success_jamming() {
        let cfg = ExpConfig::quick();
        let c = delivery(&cfg, JamPolicy::AllSuccesses, 0.5, true);
        assert!(c > 0.8, "clocked control should tolerate p_jam=0.5: {c}");
    }

    #[test]
    fn punctual_degrades_under_random_jamming() {
        // The honest negative result: random-slot jamming hurts PUNCTUAL
        // more than the clocked control.
        let cfg = ExpConfig::quick();
        let p = delivery(&cfg, JamPolicy::Random { attempt: 0.3 }, 0.5, false);
        let c = delivery(&cfg, JamPolicy::Random { attempt: 0.3 }, 0.5, true);
        assert!(
            p <= c + 0.05,
            "punctual {p} should not beat the clocked control {c} under jamming"
        );
    }
}
