//! **A1 — ablation**: disable pecking-order deferral.
//!
//! DESIGN.md calls out the "always defer to smaller windows" rule as the
//! load-bearing design choice of ALIGNED. The ablation gives every job a
//! tracker whose `min_class` equals its *own* class, so larger-window jobs
//! ignore smaller classes entirely and treat every slot as their own —
//! exactly what a centralized pecking order would forbid. The cross-class
//! collisions should hit the small (urgent) classes hardest.

use crate::config::ExpConfig;
use crate::experiments::util::run_instance;
use crate::report::{ExpOutput, ReportBuilder};
use dcr_core::aligned::params::AlignedParams;
use dcr_core::aligned::protocol::AlignedProtocol;
use dcr_sim::engine::EngineConfig;
use dcr_sim::runner::run_trials;
use dcr_stats::Table;
use dcr_workloads::generators::{aligned_classes, ClassSpec};
use dcr_workloads::Instance;

const BASE: u32 = 9;

fn instance() -> Instance {
    aligned_classes(
        &[
            ClassSpec {
                class: BASE,
                jobs_per_window: 12,
            },
            ClassSpec {
                class: BASE + 2,
                jobs_per_window: 32,
            },
        ],
        1u64 << (BASE + 3),
        None,
    )
}

struct Cell {
    small: f64,
    large: f64,
    overall: f64,
}

fn measure(cfg: &ExpConfig, deferral: bool) -> Cell {
    let inst = instance();
    let trials = cfg.cell_trials(60);
    let results = run_trials(trials, cfg.seed ^ 0xA1, |_, seed| {
        let r = run_instance(&inst, EngineConfig::aligned(), None, seed, |spec| {
            let min_class = if deferral {
                BASE
            } else {
                // Ablated: each job's tracker starts at its own class, so
                // it never yields to (or even sees) smaller windows.
                spec.window().trailing_zeros()
            };
            Box::new(AlignedProtocol::new(AlignedParams::new(1, 2, min_class)))
        });
        (
            r.success_fraction_for_window(1 << BASE).unwrap_or(0.0),
            r.success_fraction_for_window(1 << (BASE + 2))
                .unwrap_or(0.0),
            r.success_fraction(),
        )
    });
    let n = results.len() as f64;
    Cell {
        small: results.iter().map(|t| t.value.0).sum::<f64>() / n,
        large: results.iter().map(|t| t.value.1).sum::<f64>() / n,
        overall: results.iter().map(|t| t.value.2).sum::<f64>() / n,
    }
}

/// Run A1.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rb = ReportBuilder::new("a1", "A1 (ablation): pecking-order deferral", cfg);
    rb.param("base_class", BASE)
        .param("trials_per_cell", cfg.cell_trials(60));
    let with = measure(cfg, true);
    let without = measure(cfg, false);
    for (variant, cell) in [("with_deferral", &with), ("no_deferral", &without)] {
        rb.row(variant, "small_class_delivered", cell.small)
            .row(variant, "large_class_delivered", cell.large)
            .row(variant, "overall_delivered", cell.overall)
            .add_trials(cfg.cell_trials(60));
    }
    let mut table = Table::new(vec![
        "variant",
        "small-class delivered",
        "large-class delivered",
        "overall",
    ])
    .with_title(format!(
        "A1 (ablation): pecking-order deferral on classes {{{BASE}, {}}}, seed {}",
        BASE + 2,
        cfg.seed
    ));
    table.row(vec![
        "with deferral (paper)".into(),
        format!("{:.3}", with.small),
        format!("{:.3}", with.large),
        format!("{:.3}", with.overall),
    ]);
    table.row(vec![
        "no deferral (ablated)".into(),
        format!("{:.3}", without.small),
        format!("{:.3}", without.large),
        format!("{:.3}", without.overall),
    ]);
    let mut out = table.render();
    out.push_str(
        "\nshape check: removing deferral causes cross-class collisions; delivery \
         drops, with the damage concentrated wherever the overlap lands\n",
    );
    rb.check(
        "deferral_helps",
        with.overall > without.overall,
        format!(
            "overall with {:.3} vs ablated {:.3}",
            with.overall, without.overall
        ),
    );
    rb.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferral_helps() {
        let cfg = ExpConfig::quick();
        let with = measure(&cfg, true);
        let without = measure(&cfg, false);
        assert!(
            with.overall > without.overall,
            "deferral {} vs ablated {}",
            with.overall,
            without.overall
        );
    }

    #[test]
    fn paper_variant_delivers_everything_mostly() {
        let with = measure(&ExpConfig::quick(), true);
        assert!(with.overall > 0.9, "overall={}", with.overall);
    }
}
